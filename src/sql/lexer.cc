#include "sql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <unordered_map>

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {

namespace {

const std::unordered_map<std::string, TokenKind>& KeywordMap() {
  static const auto* map = new std::unordered_map<std::string, TokenKind>{
      {"base", TokenKind::kBase},       {"select", TokenKind::kSelect},
      {"distinct", TokenKind::kDistinct}, {"from", TokenKind::kFrom},
      {"where", TokenKind::kWhere},     {"md", TokenKind::kMd},
      {"using", TokenKind::kUsing},     {"compute", TokenKind::kCompute},
      {"as", TokenKind::kAs},           {"count", TokenKind::kCount},
      {"sum", TokenKind::kSum},         {"avg", TokenKind::kAvg},
      {"min", TokenKind::kMin},         {"max", TokenKind::kMax},
      {"var", TokenKind::kVar},         {"stddev", TokenKind::kStdDev},
      {"and", TokenKind::kAnd},         {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},
  };
  return *map;
}

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      Token token;
      token.line = line_;
      token.column = column_;
      if (AtEnd()) {
        token.kind = TokenKind::kEnd;
        tokens.push_back(std::move(token));
        return tokens;
      }
      char c = Peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        LexIdentifier(&token);
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        SKALLA_RETURN_NOT_OK(LexNumber(&token));
      } else if (c == '\'') {
        SKALLA_RETURN_NOT_OK(LexString(&token));
      } else {
        SKALLA_RETURN_NOT_OK(LexOperator(&token));
      }
      tokens.push_back(std::move(token));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char PeekNext() const {
    return pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
  }

  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && PeekNext() == '-') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  void LexIdentifier(Token* token) {
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '#')) {
      Advance();
    }
    token->text = std::string(text_.substr(start, pos_ - start));
    auto it = KeywordMap().find(ToLower(token->text));
    token->kind =
        it == KeywordMap().end() ? TokenKind::kIdentifier : it->second;
  }

  Status LexNumber(Token* token) {
    size_t start = pos_;
    bool is_float = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
    if (!AtEnd() && Peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(PeekNext()))) {
      is_float = true;
      Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    }
    std::string spelled(text_.substr(start, pos_ - start));
    if (is_float) {
      token->kind = TokenKind::kFloat;
      token->float_value = std::strtod(spelled.c_str(), nullptr);
    } else {
      token->kind = TokenKind::kInteger;
      errno = 0;
      token->int_value = std::strtoll(spelled.c_str(), nullptr, 10);
      if (errno == ERANGE) {
        return Status::ParseError(
            StrCat("integer literal out of range at line ", token->line,
                   ": ", spelled));
      }
    }
    token->text = std::move(spelled);
    return Status::OK();
  }

  Status LexString(Token* token) {
    Advance();  // Opening quote.
    std::string out;
    while (true) {
      if (AtEnd()) {
        return Status::ParseError(
            StrCat("unterminated string literal at line ", token->line));
      }
      char c = Peek();
      if (c == '\'') {
        Advance();
        if (!AtEnd() && Peek() == '\'') {  // Doubled quote escape.
          out.push_back('\'');
          Advance();
          continue;
        }
        break;
      }
      out.push_back(c);
      Advance();
    }
    token->kind = TokenKind::kString;
    token->text = std::move(out);
    return Status::OK();
  }

  Status LexOperator(Token* token) {
    char c = Peek();
    Advance();
    switch (c) {
      case ',':
        token->kind = TokenKind::kComma;
        return Status::OK();
      case ';':
        token->kind = TokenKind::kSemicolon;
        return Status::OK();
      case '.':
        token->kind = TokenKind::kDot;
        return Status::OK();
      case '(':
        token->kind = TokenKind::kLParen;
        return Status::OK();
      case ')':
        token->kind = TokenKind::kRParen;
        return Status::OK();
      case '*':
        token->kind = TokenKind::kStar;
        return Status::OK();
      case '+':
        token->kind = TokenKind::kPlus;
        return Status::OK();
      case '-':
        token->kind = TokenKind::kMinus;
        return Status::OK();
      case '/':
        token->kind = TokenKind::kSlash;
        return Status::OK();
      case '%':
        token->kind = TokenKind::kPercent;
        return Status::OK();
      case '=':
        token->kind = TokenKind::kEq;
        return Status::OK();
      case '<':
        if (!AtEnd() && Peek() == '=') {
          Advance();
          token->kind = TokenKind::kLe;
        } else if (!AtEnd() && Peek() == '>') {
          Advance();
          token->kind = TokenKind::kNe;
        } else {
          token->kind = TokenKind::kLt;
        }
        return Status::OK();
      case '>':
        if (!AtEnd() && Peek() == '=') {
          Advance();
          token->kind = TokenKind::kGe;
        } else {
          token->kind = TokenKind::kGt;
        }
        return Status::OK();
      case '!':
        if (!AtEnd() && Peek() == '=') {
          Advance();
          token->kind = TokenKind::kNe;
          return Status::OK();
        }
        break;
      default:
        break;
    }
    return Status::ParseError(StrCat("unexpected character '", c,
                                     "' at line ", token->line, " column ",
                                     token->column));
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  return LexerImpl(text).Run();
}

}  // namespace skalla
