// Lexer for the Skalla OLAP query language.

#ifndef SKALLA_SQL_LEXER_H_
#define SKALLA_SQL_LEXER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace skalla {

/// Tokenizes `text`. Keywords are case-insensitive; identifiers keep their
/// spelling. `--` starts a comment running to end of line. The returned
/// vector always ends with a kEnd token.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace skalla

#endif  // SKALLA_SQL_LEXER_H_
