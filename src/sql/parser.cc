#include "sql/parser.h"

#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "sql/lexer.h"

namespace skalla {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens, bool allow_unqualified_refs)
      : tokens_(std::move(tokens)),
        allow_unqualified_refs_(allow_unqualified_refs) {}

  Result<GmdjExpr> ParseQuery() {
    GmdjExpr expr;
    SKALLA_ASSIGN_OR_RETURN(expr.base, ParseBaseClause());
    while (!Check(TokenKind::kEnd)) {
      SKALLA_ASSIGN_OR_RETURN(GmdjOp op, ParseMdClause());
      expr.ops.push_back(std::move(op));
    }
    if (expr.ops.empty()) {
      return Error(Current(), "query needs at least one MD clause");
    }
    return expr;
  }

  Result<ExprPtr> ParseBareExpression() {
    SKALLA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    SKALLA_RETURN_NOT_OK(Expect(TokenKind::kEnd).status());
    return e;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  const Token& Previous() const { return tokens_[pos_ - 1]; }

  bool Check(TokenKind kind) const { return Current().kind == kind; }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }

  Status Error(const Token& at, std::string_view message) const {
    return Status::ParseError(StrCat("line ", at.line, " column ", at.column,
                                     ": ", message, " (found ",
                                     at.Describe(), ")"));
  }

  Result<Token> Expect(TokenKind kind) {
    if (!Check(kind)) {
      return Error(Current(),
                   StrCat("expected ", TokenKindToString(kind)));
    }
    Token token = Current();
    ++pos_;
    return token;
  }

  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (!Check(TokenKind::kIdentifier)) {
      return Error(Current(), StrCat("expected ", what));
    }
    std::string name = Current().text;
    ++pos_;
    return name;
  }

  // base_clause := BASE SELECT [DISTINCT] cols FROM table [WHERE expr] ';'
  Result<BaseQuery> ParseBaseClause() {
    SKALLA_RETURN_NOT_OK(Expect(TokenKind::kBase).status());
    SKALLA_RETURN_NOT_OK(Expect(TokenKind::kSelect).status());
    BaseQuery base;
    base.distinct = Match(TokenKind::kDistinct);
    do {
      SKALLA_ASSIGN_OR_RETURN(std::string column,
                              ExpectIdentifier("a column name"));
      base.columns.push_back(std::move(column));
    } while (Match(TokenKind::kComma));
    SKALLA_RETURN_NOT_OK(Expect(TokenKind::kFrom).status());
    SKALLA_ASSIGN_OR_RETURN(base.table, ExpectIdentifier("a table name"));
    if (Match(TokenKind::kWhere)) {
      // Base WHERE is over the detail relation: unqualified columns and
      // r.<col> both resolve to the detail side.
      bool saved = allow_unqualified_refs_;
      allow_unqualified_refs_ = true;
      auto where = ParseExpr();
      allow_unqualified_refs_ = saved;
      SKALLA_RETURN_NOT_OK(where.status());
      ExprPtr where_expr = std::move(where).ValueOrDie();
      if (where_expr->ReferencesSide(ExprSide::kBase)) {
        return Error(Previous(),
                     "the base WHERE clause may not reference b.<col>");
      }
      base.where = std::move(where_expr);
    }
    SKALLA_RETURN_NOT_OK(Expect(TokenKind::kSemicolon).status());
    return base;
  }

  // md_clause := MD USING table block+ ';'
  Result<GmdjOp> ParseMdClause() {
    SKALLA_RETURN_NOT_OK(Expect(TokenKind::kMd).status());
    SKALLA_RETURN_NOT_OK(Expect(TokenKind::kUsing).status());
    GmdjOp op;
    SKALLA_ASSIGN_OR_RETURN(op.detail_table,
                            ExpectIdentifier("a table name"));
    if (!Check(TokenKind::kCompute)) {
      return Error(Current(), "expected COMPUTE");
    }
    while (Check(TokenKind::kCompute)) {
      SKALLA_ASSIGN_OR_RETURN(GmdjBlock block, ParseBlock());
      op.blocks.push_back(std::move(block));
    }
    SKALLA_RETURN_NOT_OK(Expect(TokenKind::kSemicolon).status());
    return op;
  }

  // block := COMPUTE agg (',' agg)* WHERE expr
  Result<GmdjBlock> ParseBlock() {
    SKALLA_RETURN_NOT_OK(Expect(TokenKind::kCompute).status());
    GmdjBlock block;
    do {
      SKALLA_ASSIGN_OR_RETURN(AggSpec spec, ParseAgg());
      block.aggs.push_back(std::move(spec));
    } while (Match(TokenKind::kComma));
    SKALLA_RETURN_NOT_OK(Expect(TokenKind::kWhere).status());
    SKALLA_ASSIGN_OR_RETURN(block.theta, ParseExpr());
    return block;
  }

  // agg := COUNT '(' ('*'|ident) ')' AS ident
  //      | (SUM|AVG|MIN|MAX) '(' ident ')' AS ident
  Result<AggSpec> ParseAgg() {
    AggSpec spec;
    if (Match(TokenKind::kCount)) {
      SKALLA_RETURN_NOT_OK(Expect(TokenKind::kLParen).status());
      if (Match(TokenKind::kStar)) {
        spec.kind = AggKind::kCountStar;
      } else {
        spec.kind = AggKind::kCount;
        SKALLA_ASSIGN_OR_RETURN(spec.input,
                                ExpectIdentifier("a column or '*'"));
      }
      SKALLA_RETURN_NOT_OK(Expect(TokenKind::kRParen).status());
    } else if (Match(TokenKind::kSum) || Match(TokenKind::kAvg) ||
               Match(TokenKind::kMin) || Match(TokenKind::kMax) ||
               Match(TokenKind::kVar) || Match(TokenKind::kStdDev)) {
      switch (Previous().kind) {
        case TokenKind::kSum:
          spec.kind = AggKind::kSum;
          break;
        case TokenKind::kAvg:
          spec.kind = AggKind::kAvg;
          break;
        case TokenKind::kMin:
          spec.kind = AggKind::kMin;
          break;
        case TokenKind::kVar:
          spec.kind = AggKind::kVarPop;
          break;
        case TokenKind::kStdDev:
          spec.kind = AggKind::kStdDevPop;
          break;
        default:
          spec.kind = AggKind::kMax;
          break;
      }
      SKALLA_RETURN_NOT_OK(Expect(TokenKind::kLParen).status());
      SKALLA_ASSIGN_OR_RETURN(spec.input, ExpectIdentifier("a column name"));
      SKALLA_RETURN_NOT_OK(Expect(TokenKind::kRParen).status());
    } else {
      return Error(Current(),
                   "expected an aggregate "
                   "(COUNT/SUM/AVG/MIN/MAX/VAR/STDDEV)");
    }
    SKALLA_RETURN_NOT_OK(Expect(TokenKind::kAs).status());
    SKALLA_ASSIGN_OR_RETURN(spec.output,
                            ExpectIdentifier("an output column name"));
    return spec;
  }

  // --- Expressions, usual precedence climbing ----------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SKALLA_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (Match(TokenKind::kOr)) {
      SKALLA_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Expr::Binary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    SKALLA_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (Match(TokenKind::kAnd)) {
      SKALLA_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = Expr::Binary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (Match(TokenKind::kNot)) {
      SKALLA_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SKALLA_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    BinaryOp op;
    if (Match(TokenKind::kEq)) {
      op = BinaryOp::kEq;
    } else if (Match(TokenKind::kNe)) {
      op = BinaryOp::kNe;
    } else if (Match(TokenKind::kLe)) {
      op = BinaryOp::kLe;
    } else if (Match(TokenKind::kLt)) {
      op = BinaryOp::kLt;
    } else if (Match(TokenKind::kGe)) {
      op = BinaryOp::kGe;
    } else if (Match(TokenKind::kGt)) {
      op = BinaryOp::kGt;
    } else {
      return left;
    }
    SKALLA_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return Expr::Binary(op, std::move(left), std::move(right));
  }

  Result<ExprPtr> ParseAdditive() {
    SKALLA_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Match(TokenKind::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Match(TokenKind::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        return left;
      }
      SKALLA_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    SKALLA_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Match(TokenKind::kStar)) {
        op = BinaryOp::kMul;
      } else if (Match(TokenKind::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Match(TokenKind::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        return left;
      }
      SKALLA_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Match(TokenKind::kMinus)) {
      SKALLA_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    if (Match(TokenKind::kInteger)) {
      return Expr::Literal(Value(Previous().int_value));
    }
    if (Match(TokenKind::kFloat)) {
      return Expr::Literal(Value(Previous().float_value));
    }
    if (Match(TokenKind::kString)) {
      return Expr::Literal(Value(Previous().text));
    }
    if (Match(TokenKind::kLParen)) {
      SKALLA_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      SKALLA_RETURN_NOT_OK(Expect(TokenKind::kRParen).status());
      return inner;
    }
    if (Check(TokenKind::kIdentifier)) {
      Token ident = Current();
      ++pos_;
      // Qualified reference: b.<col> or r.<col>.
      if ((ident.text == "b" || ident.text == "B" || ident.text == "r" ||
           ident.text == "R") &&
          Match(TokenKind::kDot)) {
        SKALLA_ASSIGN_OR_RETURN(std::string column,
                                ExpectIdentifier("a column name"));
        ExprSide side = (ident.text == "b" || ident.text == "B")
                            ? ExprSide::kBase
                            : ExprSide::kDetail;
        return Expr::ColumnRef(side, std::move(column));
      }
      if (Check(TokenKind::kDot)) {
        return Error(Current(),
                     StrCat("unknown tuple qualifier '", ident.text,
                            "'; use b.<col> or r.<col>"));
      }
      if (!allow_unqualified_refs_) {
        return Error(ident,
                     StrCat("unqualified column '", ident.text,
                            "' — in MD conditions write b.", ident.text,
                            " (base) or r.", ident.text, " (detail)"));
      }
      return Expr::ColumnRef(ExprSide::kDetail, ident.text);
    }
    return Error(Current(), "expected an expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool allow_unqualified_refs_;
};

}  // namespace

Result<GmdjExpr> ParseQuery(std::string_view text) {
  SKALLA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(std::move(tokens), /*allow_unqualified_refs=*/false)
      .ParseQuery();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  SKALLA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(std::move(tokens), /*allow_unqualified_refs=*/false)
      .ParseBareExpression();
}

}  // namespace skalla
