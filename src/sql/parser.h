// Parser for the Skalla OLAP query language: the textual front end of the
// Egil query generator. A query defines a base-values projection followed
// by a chain of GMDJ operators. The paper's Example 1 reads:
//
//   BASE SELECT DISTINCT SourceAS, DestAS FROM flow;
//   MD USING flow
//      COMPUTE COUNT(*) AS cnt1, SUM(NumBytes) AS sum1
//      WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS;
//   MD USING flow
//      COMPUTE COUNT(*) AS cnt2
//      WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS
//        AND r.NumBytes >= b.sum1 / b.cnt1;
//
// Grammar (keywords case-insensitive, `--` comments):
//
//   query       := base_clause md_clause* EOF
//   base_clause := BASE SELECT [DISTINCT] ident (',' ident)* FROM ident
//                  [WHERE expr] ';'
//   md_clause   := MD USING ident block+ ';'
//   block       := COMPUTE agg (',' agg)* WHERE expr
//   agg         := COUNT '(' ('*' | ident) ')' AS ident
//                | (SUM|AVG|MIN|MAX) '(' ident ')' AS ident
//   expr        := or | ...   (usual precedence: OR < AND < NOT <
//                  comparison < additive < multiplicative < unary)
//   primary     := number | 'string' | ref | '(' expr ')'
//   ref         := ('b'|'B') '.' ident   -- base-values column
//                | ('r'|'R') '.' ident   -- detail column
//                | ident                 -- detail column (base WHERE only)

#ifndef SKALLA_SQL_PARSER_H_
#define SKALLA_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "core/gmdj.h"

namespace skalla {

/// Parses a full query into a GMDJ expression. Errors carry line/column
/// positions.
Result<GmdjExpr> ParseQuery(std::string_view text);

/// Parses just a condition/scalar expression (b./r. qualified refs), for
/// tests and tools.
Result<ExprPtr> ParseExpression(std::string_view text);

}  // namespace skalla

#endif  // SKALLA_SQL_PARSER_H_
