#include "sql/to_sql.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {

namespace {

Result<std::string> RenderValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return std::string("NULL");
    case ValueType::kInt64:
      return StrCat(v.int64());
    case ValueType::kFloat64:
      return StrPrintf("%.17g", v.float64());
    case ValueType::kString: {
      std::string out = "'";
      for (char c : v.str()) {
        if (c == '\'') out += "''";
        else out.push_back(c);
      }
      out += "'";
      return out;
    }
  }
  return Status::Internal("unknown value type");
}

Result<std::string> RenderExpr(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kLiteral:
      return RenderValue(e->literal());
    case ExprKind::kColumnRef:
      return StrCat(e->side() == ExprSide::kBase ? "b." : "r.",
                    e->column_name());
    case ExprKind::kUnary: {
      SKALLA_ASSIGN_OR_RETURN(std::string inner, RenderExpr(e->operand()));
      if (e->unary_op() == UnaryOp::kNot) {
        return StrCat("(NOT ", inner, ")");
      }
      return StrCat("(-", inner, ")");
    }
    case ExprKind::kBinary: {
      SKALLA_ASSIGN_OR_RETURN(std::string left, RenderExpr(e->left()));
      SKALLA_ASSIGN_OR_RETURN(std::string right, RenderExpr(e->right()));
      // % needs MOD() in portable SQL.
      if (e->binary_op() == BinaryOp::kMod) {
        return StrCat("MOD(", left, ", ", right, ")");
      }
      return StrCat("(", left, " ", BinaryOpToString(e->binary_op()), " ",
                    right, ")");
    }
    case ExprKind::kInSet:
      return Status::NotImplemented(
          "optimizer-internal IN-set predicates have no SQL rendering");
  }
  return Status::Internal("unknown expression kind");
}

Result<std::string> RenderAgg(const AggSpec& spec) {
  switch (spec.kind) {
    case AggKind::kCountStar:
      return std::string("COUNT(*)");
    case AggKind::kCount:
      return StrCat("COUNT(r.", spec.input, ")");
    case AggKind::kSum:
      return StrCat("SUM(r.", spec.input, ")");
    case AggKind::kAvg:
      return StrCat("AVG(r.", spec.input, ")");
    case AggKind::kMin:
      return StrCat("MIN(r.", spec.input, ")");
    case AggKind::kMax:
      return StrCat("MAX(r.", spec.input, ")");
    case AggKind::kVarPop:
      return StrCat("VAR_POP(r.", spec.input, ")");
    case AggKind::kStdDevPop:
      return StrCat("STDDEV_POP(r.", spec.input, ")");
    case AggKind::kSumSq:
      return StrCat("SUM(r.", spec.input, " * r.", spec.input, ")");
  }
  return Status::Internal("unknown aggregate kind");
}

}  // namespace

Result<std::string> ExprToSql(const ExprPtr& expr) {
  return RenderExpr(expr);
}

Result<std::string> GmdjToSql(const GmdjExpr& expr) {
  if (expr.base.columns.empty()) {
    return Status::InvalidArgument(
        "SQL reduction requires at least one base column");
  }
  // Innermost: the base-values query over the detail relation (alias r,
  // so a WHERE clause's detail references render consistently).
  std::vector<std::string> base_cols;
  for (const std::string& column : expr.base.columns) {
    base_cols.push_back(StrCat("r.", column, " AS ", column));
  }
  std::string sql = StrCat("SELECT ", expr.base.distinct ? "DISTINCT " : "",
                           Join(base_cols, ", "), " FROM ", expr.base.table,
                           " r");
  if (expr.base.where != nullptr) {
    SKALLA_ASSIGN_OR_RETURN(std::string where,
                            RenderExpr(expr.base.where));
    sql += StrCat(" WHERE ", where);
  }

  // Each GMDJ operator wraps the previous SELECT as relation b and adds
  // one correlated scalar subquery per aggregate.
  for (const GmdjOp& op : expr.ops) {
    std::vector<std::string> projections{"b.*"};
    for (const GmdjBlock& block : op.blocks) {
      if (block.theta == nullptr) {
        return Status::InvalidArgument("GMDJ block has no condition");
      }
      SKALLA_ASSIGN_OR_RETURN(std::string theta, RenderExpr(block.theta));
      for (const AggSpec& spec : block.aggs) {
        SKALLA_ASSIGN_OR_RETURN(std::string agg, RenderAgg(spec));
        projections.push_back(StrCat("(SELECT ", agg, " FROM ",
                                     op.detail_table, " r WHERE ", theta,
                                     ") AS ", spec.output));
      }
    }
    sql = StrCat("SELECT ", Join(projections, ",\n       "), "\nFROM (",
                 sql, ") b");
  }
  return sql;
}

}  // namespace skalla
