// Reduction of GMDJ expressions to standard SQL (Akinde & Böhlen,
// "Generalized MD-joins: Evaluation and reduction to SQL" — the paper's
// reference [2]). Each GMDJ operator becomes a SELECT over the previous
// base-values relation (aliased b) extended with one correlated scalar
// subquery per aggregate (detail relation aliased r). Useful for
// interoperating with ordinary SQL warehouses and for documenting what a
// GMDJ expression means.

#ifndef SKALLA_SQL_TO_SQL_H_
#define SKALLA_SQL_TO_SQL_H_

#include <string>

#include "common/result.h"
#include "core/gmdj.h"

namespace skalla {

/// Renders `expr` as a single standard-SQL statement. Fails for
/// constructs without a SQL spelling at this reduction level (e.g.
/// optimizer-internal IN-set predicates).
Result<std::string> GmdjToSql(const GmdjExpr& expr);

/// Renders a condition/scalar expression in SQL syntax with b/r aliases.
Result<std::string> ExprToSql(const ExprPtr& expr);

}  // namespace skalla

#endif  // SKALLA_SQL_TO_SQL_H_
