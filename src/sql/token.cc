#include "sql/token.h"

#include "common/string_util.h"

namespace skalla {

std::string_view TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kFloat:
      return "float";
    case TokenKind::kString:
      return "string";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'<>'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kBase:
      return "BASE";
    case TokenKind::kSelect:
      return "SELECT";
    case TokenKind::kDistinct:
      return "DISTINCT";
    case TokenKind::kFrom:
      return "FROM";
    case TokenKind::kWhere:
      return "WHERE";
    case TokenKind::kMd:
      return "MD";
    case TokenKind::kUsing:
      return "USING";
    case TokenKind::kCompute:
      return "COMPUTE";
    case TokenKind::kAs:
      return "AS";
    case TokenKind::kCount:
      return "COUNT";
    case TokenKind::kSum:
      return "SUM";
    case TokenKind::kAvg:
      return "AVG";
    case TokenKind::kMin:
      return "MIN";
    case TokenKind::kMax:
      return "MAX";
    case TokenKind::kVar:
      return "VAR";
    case TokenKind::kStdDev:
      return "STDDEV";
    case TokenKind::kAnd:
      return "AND";
    case TokenKind::kOr:
      return "OR";
    case TokenKind::kNot:
      return "NOT";
  }
  return "?";
}

std::string Token::Describe() const {
  if (kind == TokenKind::kIdentifier || kind == TokenKind::kString) {
    return StrCat(TokenKindToString(kind), " '", text, "'");
  }
  if (kind == TokenKind::kInteger) return StrCat("integer ", int_value);
  if (kind == TokenKind::kFloat) return StrCat("float ", float_value);
  return std::string(TokenKindToString(kind));
}

}  // namespace skalla
