// Tokens of the Skalla OLAP query language (see sql/parser.h for the
// grammar).

#ifndef SKALLA_SQL_TOKEN_H_
#define SKALLA_SQL_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace skalla {

enum class TokenKind : uint8_t {
  kEnd = 0,
  kIdentifier,   // foo, Flow, NumBytes
  kInteger,      // 42
  kFloat,        // 2.5
  kString,       // 'text'
  // Punctuation / operators.
  kComma,        // ,
  kSemicolon,    // ;
  kDot,          // .
  kLParen,       // (
  kRParen,       // )
  kStar,         // *
  kPlus,         // +
  kMinus,        // -
  kSlash,        // /
  kPercent,      // %
  kEq,           // =
  kNe,           // <>
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  // Keywords (case-insensitive).
  kBase,
  kSelect,
  kDistinct,
  kFrom,
  kWhere,
  kMd,
  kUsing,
  kCompute,
  kAs,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kVar,
  kStdDev,
  kAnd,
  kOr,
  kNot,
};

std::string_view TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // Raw text (identifier spelling, string contents).
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t line = 1;
  size_t column = 1;

  std::string Describe() const;
};

}  // namespace skalla

#endif  // SKALLA_SQL_TOKEN_H_
