#include "storage/buffer_manager.h"

#include <atomic>

#include "obs/obs.h"

namespace skalla {

Result<PinnedChunk> BufferManager::Pin(uint64_t owner, size_t chunk_index,
                                       const Loader& loader) {
  const Key key{owner, chunk_index};
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // we load it below
    Entry& entry = it->second;
    if (!entry.loading) {
      ++entry.pins;
      entry.lru = ++lru_tick_;
      ++hits_;
      SKALLA_COUNTER_ADD("skalla.storage.buffer.hit", 1);
      return MakeHandle(key, entry.chunk);
    }
    // Another pinner is loading this chunk; wait for it and re-check
    // (the entry disappears if the load failed).
    load_cv_.wait(lock);
  }

  entries_[key].loading = true;
  lock.unlock();
  Result<ChunkPtr> loaded = loader();
  lock.lock();
  if (!loaded.ok()) {
    entries_.erase(key);
    load_cv_.notify_all();
    return loaded.status();
  }
  Entry& entry = entries_[key];
  entry.chunk = std::move(*loaded);
  entry.bytes = entry.chunk->byte_size();
  entry.pins = 1;
  entry.lru = ++lru_tick_;
  entry.loading = false;
  resident_bytes_ += entry.bytes;
  ++misses_;
  SKALLA_COUNTER_ADD("skalla.storage.buffer.miss", 1);
  ChunkPtr chunk = entry.chunk;
  EvictLocked();
  SetResidentGaugeLocked();
  load_cv_.notify_all();
  return MakeHandle(key, std::move(chunk));
}

PinnedChunk BufferManager::MakeHandle(Key key, ChunkPtr chunk) {
  // The closure holds shared ownership of the manager, so a handle that
  // outlives every provider still unpins safely.
  auto self = shared_from_this();
  return PinnedChunk(std::move(chunk),
                     [self, key] { self->Unpin(key); });
}

void BufferManager::Unpin(Key key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  if (entry.pins > 0) --entry.pins;
  if (entry.pins == 0 && entry.dropped) {
    resident_bytes_ -= entry.bytes;
    entries_.erase(it);
    SetResidentGaugeLocked();
    return;
  }
  if (entry.pins == 0) {
    EvictLocked();
    SetResidentGaugeLocked();
  }
}

void BufferManager::DropOwner(uint64_t owner) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.lower_bound(Key{owner, 0});
  while (it != entries_.end() && it->first.first == owner) {
    Entry& entry = it->second;
    if (entry.pins == 0 && !entry.loading) {
      resident_bytes_ -= entry.bytes;
      it = entries_.erase(it);
    } else {
      entry.dropped = true;
      ++it;
    }
  }
  SetResidentGaugeLocked();
}

void BufferManager::EvictLocked() {
  if (budget_bytes_ == 0) return;
  while (resident_bytes_ > budget_bytes_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.pins != 0 || it->second.loading) continue;
      if (victim == entries_.end() || it->second.lru < victim->second.lru) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything pinned: overcommit
    resident_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++evictions_;
    SKALLA_COUNTER_ADD("skalla.storage.buffer.evict", 1);
  }
}

void BufferManager::SetResidentGaugeLocked() const {
  SKALLA_GAUGE_SET("skalla.storage.buffer.resident_bytes",
                   static_cast<int64_t>(resident_bytes_));
}

BufferStats BufferManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BufferStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.resident_bytes = resident_bytes_;
  for (const auto& [key, entry] : entries_) {
    if (entry.loading) continue;
    ++s.resident_chunks;
    if (entry.pins > 0) ++s.pinned_chunks;
  }
  return s;
}

uint64_t BufferManager::NextOwnerId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace skalla
