// BufferManager: a byte-budget LRU over resident chunks, shared by every
// chunk-file-backed relation of a process. Consumers Pin a chunk (loading
// it through a caller-supplied loader on miss), scan it, and drop the
// returned PinnedChunk to unpin. Eviction considers only unpinned
// chunks; the pinned set may therefore exceed the budget transiently —
// the manager never fails a pin for lack of budget, it just evicts
// everything evictable (documented spill behavior, docs/STORAGE.md).
//
// Accounting unit: Chunk::byte_size() (the resident-footprint estimate).
// Budget 0 means unlimited (nothing is ever evicted).
//
// Metrics (obs registry, no-ops when SKALLA_TRACING is off):
//   skalla.storage.buffer.hit / .miss / .evict    counters
//   skalla.storage.buffer.resident_bytes          gauge
// The same counts are always available through stats(), independent of
// the build gate, for tests and tools.
//
// Thread safety: fully thread-safe. Concurrent pins of the same missing
// chunk load it once — the first pinner runs the loader (outside the
// lock), the rest wait on it.

#ifndef SKALLA_STORAGE_BUFFER_MANAGER_H_
#define SKALLA_STORAGE_BUFFER_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/result.h"
#include "storage/chunk.h"

namespace skalla {

/// RAII pin handle: while alive, the chunk cannot be evicted. Move-only;
/// destruction (or Release) unpins. Safe to destroy after the manager's
/// other references are gone — the handle keeps the manager alive.
class BufferManager;
class PinnedChunk {
 public:
  PinnedChunk() = default;
  PinnedChunk(ChunkPtr chunk, std::function<void()> unpin)
      : chunk_(std::move(chunk)), unpin_(std::move(unpin)) {}
  ~PinnedChunk() { Release(); }

  PinnedChunk(PinnedChunk&& other) noexcept
      : chunk_(std::move(other.chunk_)), unpin_(std::move(other.unpin_)) {
    other.chunk_ = nullptr;
    other.unpin_ = nullptr;
  }
  PinnedChunk& operator=(PinnedChunk&& other) noexcept {
    if (this != &other) {
      Release();
      chunk_ = std::move(other.chunk_);
      unpin_ = std::move(other.unpin_);
      other.chunk_ = nullptr;
      other.unpin_ = nullptr;
    }
    return *this;
  }
  PinnedChunk(const PinnedChunk&) = delete;
  PinnedChunk& operator=(const PinnedChunk&) = delete;

  const Chunk& operator*() const { return *chunk_; }
  const Chunk* operator->() const { return chunk_.get(); }
  const ChunkPtr& chunk() const { return chunk_; }
  explicit operator bool() const { return chunk_ != nullptr; }

  void Release() {
    if (unpin_) unpin_();
    unpin_ = nullptr;
    chunk_ = nullptr;
  }

 private:
  ChunkPtr chunk_;
  std::function<void()> unpin_;
};

/// Point-in-time counters; tracing-gate independent.
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t resident_bytes = 0;
  uint64_t resident_chunks = 0;
  uint64_t pinned_chunks = 0;
};

class BufferManager : public std::enable_shared_from_this<BufferManager> {
 public:
  /// `budget_bytes` caps resident (unpinned + pinned) chunk bytes;
  /// 0 = unlimited.
  explicit BufferManager(uint64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  using Loader = std::function<Result<ChunkPtr>()>;

  /// Pins chunk `chunk_index` of owner `owner` (a provider id from
  /// NextOwnerId), loading it via `loader` on miss. The loader runs
  /// outside the manager lock; concurrent pins of the same key share one
  /// load.
  Result<PinnedChunk> Pin(uint64_t owner, size_t chunk_index,
                          const Loader& loader);

  /// Marks every entry of `owner` stale: unpinned ones are dropped now,
  /// pinned ones as soon as their last pin releases. Called when a
  /// provider is destroyed or its backing file is reloaded.
  void DropOwner(uint64_t owner);

  uint64_t budget_bytes() const { return budget_bytes_; }
  BufferStats stats() const;

  /// Process-unique owner ids for providers sharing a manager.
  static uint64_t NextOwnerId();

 private:
  using Key = std::pair<uint64_t, size_t>;  // (owner, chunk index)

  struct Entry {
    ChunkPtr chunk;
    uint64_t bytes = 0;
    size_t pins = 0;
    uint64_t lru = 0;      // last-use tick; smallest evicts first
    bool loading = false;  // a pinner is running the loader
    bool dropped = false;  // owner gone: erase at last unpin
  };

  void Unpin(Key key);
  // Evicts unpinned entries in LRU order until within budget. Requires
  // the lock.
  void EvictLocked();
  // Requires the lock.
  void SetResidentGaugeLocked() const;
  PinnedChunk MakeHandle(Key key, ChunkPtr chunk);

  const uint64_t budget_bytes_;
  mutable std::mutex mu_;
  std::condition_variable load_cv_;
  std::map<Key, Entry> entries_;
  uint64_t resident_bytes_ = 0;
  uint64_t lru_tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace skalla

#endif  // SKALLA_STORAGE_BUFFER_MANAGER_H_
