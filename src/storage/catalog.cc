#include "storage/catalog.h"

#include "common/string_util.h"

namespace skalla {

void Catalog::Register(std::string name, Table table) {
  tables_[std::move(name)] = std::make_shared<const Table>(std::move(table));
}

Result<const Table*> Catalog::Get(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table named '", name, "'"));
  }
  return it->second.get();
}

bool Catalog::Contains(std::string_view name) const {
  return tables_.find(std::string(name)) != tables_.end();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace skalla
