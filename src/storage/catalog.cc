#include "storage/catalog.h"

#include "common/string_util.h"

namespace skalla {

void Catalog::Register(std::string name, Table table) {
  auto shared = std::make_shared<const Table>(std::move(table));
  Entry entry;
  entry.table = shared;
  entry.provider = std::make_shared<MemoryDataProvider>(std::move(shared));
  tables_[std::move(name)] = std::move(entry);
}

void Catalog::RegisterProvider(std::string name, DataProviderPtr provider) {
  Entry entry;
  entry.provider = std::move(provider);
  tables_[std::move(name)] = std::move(entry);
}

Result<const Table*> Catalog::Get(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table named '", name, "'"));
  }
  if (it->second.table == nullptr) {
    return Status::FailedPrecondition(
        StrCat("table '", name,
               "' is chunk-backed; read it through GetProvider"));
  }
  return it->second.table.get();
}

Result<const DataProvider*> Catalog::GetProvider(
    std::string_view name) const {
  auto it = tables_.find(std::string(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table named '", name, "'"));
  }
  return it->second.provider.get();
}

bool Catalog::Contains(std::string_view name) const {
  return tables_.find(std::string(name)) != tables_.end();
}

bool Catalog::IsChunkBacked(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  return it != tables_.end() && it->second.table == nullptr;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

}  // namespace skalla
