#include "storage/catalog.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {

void Catalog::Register(std::string name, Table table) {
  auto shared = std::make_shared<const Table>(std::move(table));
  Entry entry;
  entry.table = shared;
  entry.provider = std::make_shared<MemoryDataProvider>(std::move(shared));
  tables_[std::move(name)] = std::move(entry);
}

void Catalog::RegisterProvider(std::string name, DataProviderPtr provider) {
  Entry entry;
  entry.provider = std::move(provider);
  tables_[std::move(name)] = std::move(entry);
}

Result<const Table*> Catalog::Get(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table named '", name, "'"));
  }
  if (it->second.table == nullptr) {
    return Status::FailedPrecondition(
        StrCat("table '", name,
               "' is chunk-backed; read it through GetProvider"));
  }
  return it->second.table.get();
}

Result<const DataProvider*> Catalog::GetProvider(
    std::string_view name) const {
  auto it = tables_.find(std::string(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("no table named '", name, "'"));
  }
  return it->second.provider.get();
}

bool Catalog::Contains(std::string_view name) const {
  return tables_.find(std::string(name)) != tables_.end();
}

bool Catalog::IsChunkBacked(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  return it != tables_.end() && it->second.table == nullptr;
}

Status Catalog::WarmColumnar() {
  for (auto& [name, entry] : tables_) {
    if (entry.table == nullptr || entry.columnar != nullptr) continue;
    SKALLA_ASSIGN_OR_RETURN(ColumnTable columnar,
                            ColumnTable::FromRowTable(*entry.table));
    entry.columnar = std::make_shared<const ColumnTable>(std::move(columnar));
  }
  columnar_warm_ = true;
  return Status::OK();
}

const ColumnTable* Catalog::Columnar(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  if (it == tables_.end()) return nullptr;
  return it->second.columnar.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

}  // namespace skalla
