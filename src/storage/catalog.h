// Catalog: name -> relation mapping. Each Skalla site owns a catalog of
// its local partitions; a centralized catalog backs the reference
// evaluator used as the test oracle.

#ifndef SKALLA_STORAGE_CATALOG_H_
#define SKALLA_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace skalla {

/// Maps table names to immutable tables.
class Catalog {
 public:
  Catalog() = default;

  /// Registers `table` under `name`, replacing any previous registration.
  void Register(std::string name, Table table);

  /// Looks up a table. The pointer stays valid while the catalog lives and
  /// the name is not re-registered.
  Result<const Table*> Get(std::string_view name) const;

  bool Contains(std::string_view name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, std::shared_ptr<const Table>> tables_;
};

}  // namespace skalla

#endif  // SKALLA_STORAGE_CATALOG_H_
