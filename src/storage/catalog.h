// Catalog: name -> relation mapping. Each Skalla site owns a catalog of
// its local partitions; a centralized catalog backs the reference
// evaluator used as the test oracle.
//
// A relation is either memory-backed (Register(Table) — the resident
// table stays directly reachable through Get) or chunk-backed
// (RegisterProvider with a paged DataProvider — Get fails and consumers
// go through GetProvider, which works for both kinds). Evaluation code
// should prefer GetProvider and take the ResidentTable() fast path when
// it is non-null.

#ifndef SKALLA_STORAGE_CATALOG_H_
#define SKALLA_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "columnar/column_table.h"
#include "common/result.h"
#include "storage/data_provider.h"
#include "storage/table.h"

namespace skalla {

/// Maps table names to immutable relations (resident or chunk-paged).
class Catalog {
 public:
  Catalog() = default;

  /// Registers `table` under `name`, replacing any previous registration.
  void Register(std::string name, Table table);

  /// Registers a paged relation under `name`, replacing any previous
  /// registration. Get() fails for it; read through GetProvider().
  void RegisterProvider(std::string name, DataProviderPtr provider);

  /// Looks up a resident table. The pointer stays valid while the
  /// catalog lives and the name is not re-registered. Fails with
  /// FailedPrecondition for chunk-backed relations.
  Result<const Table*> Get(std::string_view name) const;

  /// Looks up any relation through its provider (resident tables are
  /// wrapped at Register time, so this always works for known names).
  Result<const DataProvider*> GetProvider(std::string_view name) const;

  bool Contains(std::string_view name) const;

  /// Whether `name` is registered without a resident table.
  bool IsChunkBacked(std::string_view name) const;

  std::vector<std::string> TableNames() const;

  /// Builds a columnar copy of every resident relation, so engine-kAuto
  /// evaluation takes the vectorized path over typed arrays instead of
  /// converting per query. Chunk-backed relations are skipped — their
  /// chunks already hold typed pages. Idempotent; re-registering a name
  /// drops its copy (warm it again if needed). Not safe against
  /// concurrent mutation (same contract as Register).
  Status WarmColumnar();

  /// The warmed columnar copy of `name`, or nullptr when none exists
  /// (never warmed, chunk-backed, or re-registered since the warm). The
  /// pointer stays valid while the catalog lives and the name is not
  /// re-registered.
  const ColumnTable* Columnar(std::string_view name) const;

  /// Whether WarmColumnar has completed on this catalog.
  bool columnar_warm() const { return columnar_warm_; }

 private:
  struct Entry {
    std::shared_ptr<const Table> table;  // null for chunk-backed entries
    DataProviderPtr provider;
    std::shared_ptr<const ColumnTable> columnar;  // set by WarmColumnar
  };
  std::unordered_map<std::string, Entry> tables_;
  bool columnar_warm_ = false;
};

}  // namespace skalla

#endif  // SKALLA_STORAGE_CATALOG_H_
