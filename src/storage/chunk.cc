#include "storage/chunk.h"

#include <utility>

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {

namespace {

// Resident-footprint estimate of one column: validity byte per cell plus
// the typed payload (8 bytes per numeric cell; string container overhead
// plus character data per string cell). The estimate is a pure function
// of the column's content, so file-loaded and table-built chunks of the
// same rows account identically.
uint64_t EstimateColumnBytes(const Column& col) {
  const size_t n = col.size();
  uint64_t bytes = n;  // validity vector
  switch (col.type()) {
    case ValueType::kInt64:
    case ValueType::kFloat64:
      bytes += 8ull * n;
      break;
    case ValueType::kString:
      bytes += 32ull * n;  // std::string container overhead
      for (size_t i = 0; i < n; ++i) {
        if (!col.IsNull(i)) bytes += col.StringAt(i).size();
      }
      break;
    case ValueType::kNull:
      break;
  }
  return bytes;
}

}  // namespace

Result<std::shared_ptr<const Chunk>> Chunk::Build(const Table& source,
                                                  size_t row_begin,
                                                  size_t row_count) {
  if (row_begin + row_count > source.num_rows()) {
    return Status::InvalidArgument(
        StrCat("chunk range [", row_begin, ", ", row_begin + row_count,
               ") exceeds table of ", source.num_rows(), " rows"));
  }
  const Schema& schema = *source.schema();
  auto chunk = std::shared_ptr<Chunk>(new Chunk());
  chunk->schema_ = source.schema();
  chunk->row_begin_ = row_begin;
  chunk->num_rows_ = row_count;
  chunk->columns_.reserve(schema.num_fields());
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    const ValueType type = schema.field(c).type;
    if (type != ValueType::kInt64 && type != ValueType::kFloat64 &&
        type != ValueType::kString) {
      return Status::InvalidArgument(
          StrCat("column '", schema.field(c).name,
                 "' has no concrete declared type; cannot chunk"));
    }
    Column col(type);
    col.Reserve(row_count);
    for (size_t r = 0; r < row_count; ++r) {
      SKALLA_RETURN_NOT_OK(col.Append(source.at(row_begin + r, c)));
    }
    chunk->columns_.push_back(std::move(col));
  }
  chunk->ComputeStatsAndSize();
  return std::shared_ptr<const Chunk>(std::move(chunk));
}

std::shared_ptr<const Chunk> Chunk::FromColumns(
    SchemaPtr schema, size_t row_begin, std::vector<Column> columns,
    std::vector<ChunkColumnStats> stats) {
  auto chunk = std::shared_ptr<Chunk>(new Chunk());
  chunk->schema_ = std::move(schema);
  chunk->row_begin_ = row_begin;
  chunk->num_rows_ = columns.empty() ? 0 : columns[0].size();
  chunk->columns_ = std::move(columns);
  chunk->stats_ = std::move(stats);
  if (chunk->stats_.size() != chunk->columns_.size()) {
    chunk->stats_.clear();
  }
  chunk->ComputeStatsAndSize();
  return std::shared_ptr<const Chunk>(std::move(chunk));
}

void Chunk::ComputeStatsAndSize() {
  byte_size_ = 0;
  const bool have_stats = !stats_.empty();
  if (!have_stats) stats_.resize(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Column& col = columns_[c];
    byte_size_ += EstimateColumnBytes(col);
    if (have_stats) continue;
    ChunkColumnStats& s = stats_[c];
    for (size_t r = 0; r < col.size(); ++r) {
      if (col.IsNull(r)) {
        ++s.null_count;
        continue;
      }
      double v;
      if (col.type() == ValueType::kInt64) {
        v = static_cast<double>(col.Int64At(r));
      } else if (col.type() == ValueType::kFloat64) {
        v = col.Float64At(r);
      } else {
        continue;
      }
      if (!s.has_range) {
        s.has_range = true;
        s.min = s.max = v;
      } else {
        if (v < s.min) s.min = v;
        if (v > s.max) s.max = v;
      }
    }
  }
}

const Row& Chunk::row(size_t i) const {
  std::call_once(rows_once_, [this] {
    rows_.reserve(num_rows_);
    for (size_t r = 0; r < num_rows_; ++r) {
      Row row;
      row.reserve(columns_.size());
      for (const Column& col : columns_) {
        row.push_back(col.GetValue(r));
      }
      rows_.push_back(std::move(row));
    }
  });
  return rows_[i];
}

}  // namespace skalla
