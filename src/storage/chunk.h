// Chunk: a fixed-size horizontal slice of a relation in columnar form —
// the paging unit of the storage subsystem. Each chunk holds per-column
// typed pages (columnar/column.h) for a contiguous global row range
// [row_begin, row_begin + num_rows), plus per-column min/max metadata
// computed at build time.
//
// Consumers read chunks two ways:
//  - the columnar kernel folds the typed pages directly (column(i));
//  - the row kernel asks for boxed rows (row(local)); the boxed view is
//    materialized lazily, once per chunk, and cached for the chunk's
//    resident lifetime — so a pinned chunk pays the boxing cost at most
//    once no matter how many morsels scan it.
//
// Chunks are immutable once built and always heap-allocated
// (shared_ptr): the lazy row cache uses std::once_flag, which pins the
// object in place, and the BufferManager hands out shared ownership to
// concurrent pinners anyway.

#ifndef SKALLA_STORAGE_CHUNK_H_
#define SKALLA_STORAGE_CHUNK_H_

#include <memory>
#include <mutex>
#include <vector>

#include "columnar/column.h"
#include "common/result.h"
#include "storage/table.h"
#include "types/row.h"

namespace skalla {

/// Default rows per chunk. Small enough that eight resident chunks of
/// the paper's widest relation stay well under typical buffer budgets,
/// large enough that per-chunk overheads (pin, directory entry, lazy
/// boxing) amortize.
inline constexpr size_t kDefaultChunkRows = 16384;

/// Per-column metadata computed when a chunk is built. Numeric columns
/// carry the [min, max] over non-null cells; string columns only the
/// null census. Feeds scan pruning and lazy distribution knowledge.
struct ChunkColumnStats {
  bool has_range = false;  // true iff a non-null numeric cell exists
  double min = 0.0;
  double max = 0.0;
  uint64_t null_count = 0;
};

class Chunk {
 public:
  /// Builds a chunk from rows [row_begin, row_begin + row_count) of
  /// `source`. Every column must have a concrete declared type.
  static Result<std::shared_ptr<const Chunk>> Build(const Table& source,
                                                    size_t row_begin,
                                                    size_t row_count);

  /// Assembles a chunk from already-typed pages (the chunk-file reader's
  /// path). `columns` must agree with `schema` in count and type and all
  /// have `row_count` cells.
  static std::shared_ptr<const Chunk> FromColumns(
      SchemaPtr schema, size_t row_begin, std::vector<Column> columns,
      std::vector<ChunkColumnStats> stats);

  const SchemaPtr& schema() const { return schema_; }
  /// Global row id of this chunk's first row within its relation.
  size_t row_begin() const { return row_begin_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const ChunkColumnStats& column_stats(size_t i) const { return stats_[i]; }

  /// Boxed view of local row `i` (0-based within the chunk). The first
  /// call materializes every row of the chunk; thread-safe.
  const Row& row(size_t i) const;

  /// Resident footprint estimate in bytes — the BufferManager's
  /// accounting unit. Deterministic for a given chunk content, whether
  /// the chunk was built from a table or read from a file.
  uint64_t byte_size() const { return byte_size_; }

 private:
  Chunk() = default;

  void ComputeStatsAndSize();

  SchemaPtr schema_;
  size_t row_begin_ = 0;
  size_t num_rows_ = 0;
  std::vector<Column> columns_;
  std::vector<ChunkColumnStats> stats_;
  uint64_t byte_size_ = 0;

  mutable std::once_flag rows_once_;
  mutable std::vector<Row> rows_;
};

using ChunkPtr = std::shared_ptr<const Chunk>;

}  // namespace skalla

#endif  // SKALLA_STORAGE_CHUNK_H_
