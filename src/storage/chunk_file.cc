#include "storage/chunk_file.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "common/macros.h"
#include "common/string_util.h"
#include "net/serde.h"
#include "rpc/frame.h"

namespace skalla {

namespace {

constexpr char kChunkMagic[8] = {'S', 'K', 'A', 'L', 'L', 'A', 'C', '1'};

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint8_t raw[8];
  std::memcpy(raw, &v, 8);
  out->insert(out->end(), raw, raw + 8);
}

Result<double> ReadF64(ByteReader* reader) {
  SKALLA_ASSIGN_OR_RETURN(const uint8_t* p, reader->ReadBytes(8));
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

void EncodeSchema(const Schema& schema, std::vector<uint8_t>* out) {
  PutVarint(out, schema.num_fields());
  for (const Field& field : schema.fields()) {
    PutVarint(out, field.name.size());
    out->insert(out->end(), field.name.begin(), field.name.end());
    out->push_back(static_cast<uint8_t>(field.type));
  }
}

Result<SchemaPtr> DecodeSchema(ByteReader* reader) {
  SKALLA_ASSIGN_OR_RETURN(uint64_t num_fields, reader->ReadVarint());
  std::vector<Field> fields;
  fields.reserve(num_fields);
  for (uint64_t i = 0; i < num_fields; ++i) {
    SKALLA_ASSIGN_OR_RETURN(uint64_t name_len, reader->ReadVarint());
    SKALLA_ASSIGN_OR_RETURN(const uint8_t* name_bytes,
                            reader->ReadBytes(name_len));
    SKALLA_ASSIGN_OR_RETURN(uint8_t type, reader->ReadByte());
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::IOError(StrCat("bad column type tag ", type));
    }
    fields.push_back(Field{
        std::string(reinterpret_cast<const char*>(name_bytes), name_len),
        static_cast<ValueType>(type)});
  }
  return Schema::Make(std::move(fields));
}

// Serializes chunk `payload` (cells column-major) from typed pages.
void EncodeChunkPayload(const Chunk& chunk, std::vector<uint8_t>* out) {
  for (size_t c = 0; c < chunk.num_columns(); ++c) {
    const Column& col = chunk.column(c);
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      WriteValue(out, col.GetValue(r));
    }
  }
}

}  // namespace

// --- ChunkFileWriter -------------------------------------------------------

ChunkFileWriter::ChunkFileWriter(std::string path, SchemaPtr schema,
                                 size_t chunk_rows)
    : path_(std::move(path)),
      schema_(std::move(schema)),
      chunk_rows_(chunk_rows == 0 ? kDefaultChunkRows : chunk_rows),
      buffer_(schema_) {}

ChunkFileWriter::~ChunkFileWriter() {
  delete static_cast<std::ofstream*>(out_);
}

Status ChunkFileWriter::EnsureOpen() {
  if (out_ != nullptr) return Status::OK();
  auto* out = new std::ofstream(path_, std::ios::binary | std::ios::trunc);
  out_ = out;
  if (!*out) {
    return Status::IOError(StrCat("cannot open '", path_, "' for writing"));
  }
  out->write(kChunkMagic, sizeof(kChunkMagic));
  write_offset_ = sizeof(kChunkMagic);
  return Status::OK();
}

Status ChunkFileWriter::Append(const Row& row) {
  if (finished_) return Status::InvalidArgument("writer already finished");
  SKALLA_RETURN_NOT_OK(buffer_.Append(row));
  ++rows_written_;
  if (buffer_.num_rows() >= chunk_rows_) return FlushBuffered();
  return Status::OK();
}

Status ChunkFileWriter::AppendTable(const Table& table) {
  for (size_t r = 0; r < table.num_rows(); ++r) {
    SKALLA_RETURN_NOT_OK(Append(table.row(r)));
  }
  return Status::OK();
}

Status ChunkFileWriter::FlushBuffered() {
  const size_t n = buffer_.num_rows();
  if (n == 0) return Status::OK();
  SKALLA_RETURN_NOT_OK(EnsureOpen());
  SKALLA_ASSIGN_OR_RETURN(ChunkPtr chunk, Chunk::Build(buffer_, 0, n));
  std::vector<uint8_t> payload;
  EncodeChunkPayload(*chunk, &payload);

  ChunkEntry entry;
  entry.row_begin = rows_written_ - n;
  entry.row_count = n;
  entry.offset = write_offset_;
  entry.length = payload.size();
  entry.crc = rpc::Crc32(payload.data(), payload.size());
  entry.column_stats.reserve(chunk->num_columns());
  for (size_t c = 0; c < chunk->num_columns(); ++c) {
    entry.column_stats.push_back(chunk->column_stats(c));
  }
  entries_.push_back(std::move(entry));

  auto* out = static_cast<std::ofstream*>(out_);
  out->write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  if (!*out) return Status::IOError(StrCat("failed writing '", path_, "'"));
  write_offset_ += payload.size();
  buffer_.Clear();
  return Status::OK();
}

Status ChunkFileWriter::Finish() {
  if (finished_) return Status::InvalidArgument("writer already finished");
  SKALLA_RETURN_NOT_OK(FlushBuffered());
  SKALLA_RETURN_NOT_OK(EnsureOpen());  // zero-row relations still get a file
  finished_ = true;

  std::vector<uint8_t> footer;
  EncodeSchema(*schema_, &footer);
  PutVarint(&footer, rows_written_);
  PutVarint(&footer, entries_.size());
  for (const ChunkEntry& entry : entries_) {
    PutVarint(&footer, entry.row_begin);
    PutVarint(&footer, entry.row_count);
    PutVarint(&footer, entry.offset);
    PutVarint(&footer, entry.length);
    PutU32(&footer, entry.crc);
    for (const ChunkColumnStats& s : entry.column_stats) {
      footer.push_back(s.has_range ? 1 : 0);
      if (s.has_range) {
        PutF64(&footer, s.min);
        PutF64(&footer, s.max);
      }
      PutVarint(&footer, s.null_count);
    }
  }
  std::vector<uint8_t> trailer;
  PutU32(&trailer, static_cast<uint32_t>(footer.size()));
  PutU32(&trailer, rpc::Crc32(footer.data(), footer.size()));

  auto* out = static_cast<std::ofstream*>(out_);
  out->write(reinterpret_cast<const char*>(footer.data()),
             static_cast<std::streamsize>(footer.size()));
  out->write(reinterpret_cast<const char*>(trailer.data()),
             static_cast<std::streamsize>(trailer.size()));
  out->close();
  if (!*out) return Status::IOError(StrCat("failed finishing '", path_, "'"));
  return Status::OK();
}

Status WriteChunkFile(const Table& table, const std::string& path,
                      size_t chunk_rows) {
  ChunkFileWriter writer(path, table.schema(), chunk_rows);
  SKALLA_RETURN_NOT_OK(writer.AppendTable(table));
  return writer.Finish();
}

// --- ChunkFile -------------------------------------------------------------

Result<std::shared_ptr<const ChunkFile>> ChunkFile::Open(std::string path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError(StrCat("cannot open '", path, "' for reading"));
  }
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<uint64_t>(in.tellg());
  if (file_size < sizeof(kChunkMagic) + 8) {
    return Status::IOError(StrCat("'", path, "' is not a chunk file"));
  }
  char magic[sizeof(kChunkMagic)];
  in.seekg(0);
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kChunkMagic, sizeof(magic)) != 0) {
    return Status::IOError(StrCat("'", path, "' is not a chunk file"));
  }
  uint8_t trailer[8];
  in.seekg(static_cast<std::streamoff>(file_size - 8));
  in.read(reinterpret_cast<char*>(trailer), 8);
  if (!in) return Status::IOError(StrCat("failed reading '", path, "'"));
  const uint32_t footer_len = GetU32(trailer);
  const uint32_t footer_crc = GetU32(trailer + 4);
  if (footer_len + 8ull + sizeof(kChunkMagic) > file_size) {
    return Status::IOError(StrCat("'", path, "' has a truncated footer"));
  }
  std::vector<uint8_t> footer(footer_len);
  in.seekg(static_cast<std::streamoff>(file_size - 8 - footer_len));
  in.read(reinterpret_cast<char*>(footer.data()), footer_len);
  if (!in) return Status::IOError(StrCat("failed reading '", path, "'"));
  if (rpc::Crc32(footer.data(), footer.size()) != footer_crc) {
    return Status::IOError(
        StrCat("footer checksum mismatch in '", path, "'"));
  }

  auto file = std::make_shared<ChunkFile>();
  file->path_ = std::move(path);
  ByteReader reader(footer.data(), footer.size());
  SKALLA_ASSIGN_OR_RETURN(file->schema_, DecodeSchema(&reader));
  SKALLA_ASSIGN_OR_RETURN(uint64_t num_rows, reader.ReadVarint());
  file->num_rows_ = num_rows;
  SKALLA_ASSIGN_OR_RETURN(uint64_t num_chunks, reader.ReadVarint());
  const size_t num_columns = file->schema_->num_fields();
  file->entries_.reserve(num_chunks);
  for (uint64_t i = 0; i < num_chunks; ++i) {
    ChunkEntry entry;
    SKALLA_ASSIGN_OR_RETURN(uint64_t row_begin, reader.ReadVarint());
    SKALLA_ASSIGN_OR_RETURN(uint64_t row_count, reader.ReadVarint());
    SKALLA_ASSIGN_OR_RETURN(entry.offset, reader.ReadVarint());
    SKALLA_ASSIGN_OR_RETURN(entry.length, reader.ReadVarint());
    entry.row_begin = row_begin;
    entry.row_count = row_count;
    SKALLA_ASSIGN_OR_RETURN(const uint8_t* crc_bytes, reader.ReadBytes(4));
    entry.crc = GetU32(crc_bytes);
    entry.column_stats.resize(num_columns);
    for (size_t c = 0; c < num_columns; ++c) {
      ChunkColumnStats& s = entry.column_stats[c];
      SKALLA_ASSIGN_OR_RETURN(uint8_t has_range, reader.ReadByte());
      s.has_range = has_range != 0;
      if (s.has_range) {
        SKALLA_ASSIGN_OR_RETURN(s.min, ReadF64(&reader));
        SKALLA_ASSIGN_OR_RETURN(s.max, ReadF64(&reader));
      }
      SKALLA_ASSIGN_OR_RETURN(s.null_count, reader.ReadVarint());
    }
    file->entries_.push_back(std::move(entry));
  }
  return std::shared_ptr<const ChunkFile>(std::move(file));
}

Result<ChunkPtr> ChunkFile::ReadChunk(size_t i) const {
  if (i >= entries_.size()) {
    return Status::InvalidArgument(
        StrCat("chunk ", i, " out of range (file has ", entries_.size(),
               " chunks)"));
  }
  const ChunkEntry& entry = entries_[i];
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    return Status::IOError(StrCat("cannot open '", path_, "' for reading"));
  }
  std::vector<uint8_t> payload(entry.length);
  in.seekg(static_cast<std::streamoff>(entry.offset));
  in.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(entry.length));
  if (!in) {
    return Status::IOError(
        StrCat("failed reading chunk ", i, " of '", path_, "'"));
  }
  if (rpc::Crc32(payload.data(), payload.size()) != entry.crc) {
    return Status::IOError(
        StrCat("checksum mismatch in chunk ", i, " of '", path_, "'"));
  }
  ByteReader reader(payload.data(), payload.size());
  std::vector<Column> columns;
  columns.reserve(schema_->num_fields());
  for (size_t c = 0; c < schema_->num_fields(); ++c) {
    Column col(schema_->field(c).type);
    col.Reserve(entry.row_count);
    for (size_t r = 0; r < entry.row_count; ++r) {
      SKALLA_ASSIGN_OR_RETURN(Value v, ReadValue(&reader));
      SKALLA_RETURN_NOT_OK(col.Append(v));
    }
    columns.push_back(std::move(col));
  }
  return Chunk::FromColumns(schema_, entry.row_begin, std::move(columns),
                            entry.column_stats);
}

}  // namespace skalla
