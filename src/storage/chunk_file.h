// On-disk chunk files: the persistent form of one relation partition,
// written as a sequence of independently loadable columnar chunks plus a
// CRC-checked footer describing them.
//
// Layout (little-endian):
//
//   file   := magic "SKALLAC1" chunk_payload* footer
//             footer_len:u32 footer_crc:u32
//   footer := schema (serde field encoding)
//             num_rows:varint nchunks:varint entry*
//   entry  := row_begin:varint row_count:varint offset:varint
//             length:varint payload_crc:u32 colstats*
//   colstats := has_range:u8 [min:f64 max:f64] null_count:varint
//   chunk_payload := cells column-major, one WriteValue cell each
//
// Both the footer and every chunk payload carry a CRC-32 (the rpc
// framing polynomial); a bit flip anywhere is detected at open / read
// time rather than silently corrupting results. Offsets are absolute, so
// a chunk reads with one seek — the unit the BufferManager pages.
//
// ChunkFileWriter streams rows through a bounded buffer: a chunk's rows
// are the only ones resident while writing, which is what lets
// skalla-dataset generate the paper-scale relation without holding it in
// memory.

#ifndef SKALLA_STORAGE_CHUNK_FILE_H_
#define SKALLA_STORAGE_CHUNK_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/chunk.h"
#include "storage/table.h"

namespace skalla {

/// Directory entry for one chunk of a chunk file.
struct ChunkEntry {
  size_t row_begin = 0;
  size_t row_count = 0;
  uint64_t offset = 0;  // absolute file offset of the payload
  uint64_t length = 0;  // payload bytes
  uint32_t crc = 0;     // CRC-32 of the payload
  std::vector<ChunkColumnStats> column_stats;  // one per column
};

/// Streams rows into a chunk file, flushing a chunk every `chunk_rows`
/// rows. Usage: construct, Append rows (or tables), then Finish — the
/// footer is only written by Finish, so an unfinished file never opens.
class ChunkFileWriter {
 public:
  ChunkFileWriter(std::string path, SchemaPtr schema,
                  size_t chunk_rows = kDefaultChunkRows);
  ~ChunkFileWriter();

  ChunkFileWriter(const ChunkFileWriter&) = delete;
  ChunkFileWriter& operator=(const ChunkFileWriter&) = delete;

  Status Append(const Row& row);
  Status AppendTable(const Table& table);

  /// Flushes the tail chunk and writes the footer. Must be called
  /// exactly once; no Append after.
  Status Finish();

  size_t rows_written() const { return rows_written_; }

 private:
  Status EnsureOpen();
  Status FlushBuffered();

  std::string path_;
  SchemaPtr schema_;
  size_t chunk_rows_;
  Table buffer_;
  size_t rows_written_ = 0;
  uint64_t write_offset_ = 0;
  std::vector<ChunkEntry> entries_;
  void* out_ = nullptr;  // std::ofstream, kept out of the header
  bool finished_ = false;
};

/// Writes a whole table as one chunk file.
Status WriteChunkFile(const Table& table, const std::string& path,
                      size_t chunk_rows = kDefaultChunkRows);

/// An opened chunk file: the parsed footer plus the ability to read any
/// chunk. Reads are independent (each opens its own stream), so
/// concurrent ReadChunk calls from buffer-manager loaders are safe.
class ChunkFile {
 public:
  static Result<std::shared_ptr<const ChunkFile>> Open(std::string path);

  const std::string& path() const { return path_; }
  const SchemaPtr& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_chunks() const { return entries_.size(); }
  const ChunkEntry& entry(size_t i) const { return entries_[i]; }

  /// Reads, CRC-checks, and decodes chunk `i`.
  Result<ChunkPtr> ReadChunk(size_t i) const;

 private:
  std::string path_;
  SchemaPtr schema_;
  size_t num_rows_ = 0;
  std::vector<ChunkEntry> entries_;
};

}  // namespace skalla

#endif  // SKALLA_STORAGE_CHUNK_FILE_H_
