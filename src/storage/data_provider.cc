#include "storage/data_provider.h"

#include <utility>

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {

size_t DataProvider::ChunkOfRow(size_t row) const {
  // Chunks are ordered and gap-free; binary search the row ranges.
  size_t lo = 0, hi = num_chunks();
  while (lo + 1 < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (chunk_row_begin(mid) <= row) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// --- MemoryDataProvider ----------------------------------------------------

MemoryDataProvider::MemoryDataProvider(std::shared_ptr<const Table> table,
                                       size_t chunk_rows)
    : table_(std::move(table)),
      chunk_rows_(chunk_rows == 0 ? kDefaultChunkRows : chunk_rows) {
  const size_t rows = table_->num_rows();
  num_chunks_ = rows == 0 ? 0 : (rows - 1) / chunk_rows_ + 1;
  cache_.resize(num_chunks_);
}

size_t MemoryDataProvider::chunk_rows(size_t chunk) const {
  const size_t begin = chunk * chunk_rows_;
  const size_t end = begin + chunk_rows_;
  const size_t rows = table_->num_rows();
  return (end > rows ? rows : end) - begin;
}

Result<PinnedChunk> MemoryDataProvider::Pin(size_t chunk) const {
  if (chunk >= num_chunks_) {
    return Status::InvalidArgument(
        StrCat("chunk ", chunk, " out of range (", num_chunks_, ")"));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (cache_[chunk] == nullptr) {
    SKALLA_ASSIGN_OR_RETURN(
        cache_[chunk],
        Chunk::Build(*table_, chunk_row_begin(chunk), chunk_rows(chunk)));
  }
  // Memory-backed chunks are always resident; no unpin bookkeeping.
  return PinnedChunk(cache_[chunk], nullptr);
}

const ChunkColumnStats* MemoryDataProvider::chunk_column_stats(
    size_t chunk, size_t col) const {
  if (chunk >= num_chunks_) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  // Stats exist only for chunk views someone already built; building one
  // here would defeat the point of stat-only pruning.
  const ChunkPtr& cached = cache_[chunk];
  if (cached == nullptr || col >= cached->num_columns()) return nullptr;
  return &cached->column_stats(col);
}

// --- ChunkFileDataProvider -------------------------------------------------

Result<std::shared_ptr<ChunkFileDataProvider>> ChunkFileDataProvider::Open(
    const std::string& path, std::shared_ptr<BufferManager> buffers) {
  if (buffers == nullptr) {
    return Status::InvalidArgument(
        "ChunkFileDataProvider needs a BufferManager");
  }
  SKALLA_ASSIGN_OR_RETURN(std::shared_ptr<const ChunkFile> file,
                          ChunkFile::Open(path));
  return std::shared_ptr<ChunkFileDataProvider>(
      new ChunkFileDataProvider(std::move(file), std::move(buffers)));
}

ChunkFileDataProvider::~ChunkFileDataProvider() {
  buffers_->DropOwner(owner_id_);
}

Result<PinnedChunk> ChunkFileDataProvider::Pin(size_t chunk) const {
  if (chunk >= file_->num_chunks()) {
    return Status::InvalidArgument(
        StrCat("chunk ", chunk, " out of range (", file_->num_chunks(),
               ") in '", file_->path(), "'"));
  }
  std::shared_ptr<const ChunkFile> file = file_;
  return buffers_->Pin(owner_id_, chunk,
                       [file, chunk] { return file->ReadChunk(chunk); });
}

const ChunkColumnStats* ChunkFileDataProvider::chunk_column_stats(
    size_t chunk, size_t col) const {
  if (chunk >= file_->num_chunks()) return nullptr;
  const ChunkEntry& entry = file_->entry(chunk);
  if (col >= entry.column_stats.size()) return nullptr;
  return &entry.column_stats[col];
}

// --- ConcatDataProvider ----------------------------------------------------

ConcatDataProvider::ConcatDataProvider(std::vector<DataProviderPtr> parts)
    : parts_(std::move(parts)) {
  for (size_t p = 0; p < parts_.size(); ++p) {
    const DataProvider& part = *parts_[p];
    for (size_t c = 0; c < part.num_chunks(); ++c) {
      chunk_map_.push_back(
          ChunkRef{p, c, num_rows_ + part.chunk_row_begin(c)});
    }
    num_rows_ += part.num_rows();
  }
}

size_t ConcatDataProvider::chunk_row_begin(size_t chunk) const {
  return chunk_map_[chunk].row_begin;
}

size_t ConcatDataProvider::chunk_rows(size_t chunk) const {
  const ChunkRef& ref = chunk_map_[chunk];
  return parts_[ref.part]->chunk_rows(ref.local_chunk);
}

Result<PinnedChunk> ConcatDataProvider::Pin(size_t chunk) const {
  if (chunk >= chunk_map_.size()) {
    return Status::InvalidArgument(
        StrCat("chunk ", chunk, " out of range (", chunk_map_.size(), ")"));
  }
  const ChunkRef& ref = chunk_map_[chunk];
  return parts_[ref.part]->Pin(ref.local_chunk);
}

const ChunkColumnStats* ConcatDataProvider::chunk_column_stats(
    size_t chunk, size_t col) const {
  if (chunk >= chunk_map_.size()) return nullptr;
  const ChunkRef& ref = chunk_map_[chunk];
  return parts_[ref.part]->chunk_column_stats(ref.local_chunk, col);
}

// --- Materialization -------------------------------------------------------

Result<Table> MaterializeProvider(const DataProvider& provider) {
  Table out(provider.schema());
  out.Reserve(provider.num_rows());
  for (size_t c = 0; c < provider.num_chunks(); ++c) {
    SKALLA_ASSIGN_OR_RETURN(PinnedChunk pin, provider.Pin(c));
    for (size_t r = 0; r < pin->num_rows(); ++r) {
      out.AppendUnchecked(pin->row(r));
    }
  }
  return out;
}

}  // namespace skalla
