// DataProvider: the read interface both the row and columnar kernels
// consume a relation through — modeled on the DataMgr/BufferMgr +
// ArrowStorage split of hdk-style engines. A provider describes its
// relation as an ordered sequence of chunks (contiguous global row
// ranges) and serves each chunk on demand through Pin.
//
// Implementations:
//  - MemoryDataProvider wraps an in-memory Table. Its ResidentTable()
//    shortcut lets consumers keep the zero-overhead direct path; chunked
//    iteration is still available (chunks are built lazily and cached)
//    so tests can force the paged code path over memory-backed data.
//  - ChunkFileDataProvider pages chunks from a chunk file through a
//    shared BufferManager; nothing is resident until pinned.
//  - ConcatDataProvider concatenates providers in order — the
//    centralized union of per-site partitions for reference evaluation,
//    without materializing the union.
//
// Row-identity contract: chunk c covers global rows
// [chunk_row_begin(c), chunk_row_begin(c) + chunk_rows(c)), chunks are
// ordered and gap-free, and boxing chunk rows yields exactly the rows of
// the equivalent in-memory table in the same order. Every chunked kernel
// path relies on this to stay byte-identical to the in-memory one.

#ifndef SKALLA_STORAGE_DATA_PROVIDER_H_
#define SKALLA_STORAGE_DATA_PROVIDER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/buffer_manager.h"
#include "storage/chunk.h"
#include "storage/chunk_file.h"
#include "storage/table.h"

namespace skalla {

class DataProvider {
 public:
  virtual ~DataProvider() = default;

  virtual const SchemaPtr& schema() const = 0;
  virtual size_t num_rows() const = 0;
  virtual size_t num_chunks() const = 0;
  virtual size_t chunk_row_begin(size_t chunk) const = 0;
  virtual size_t chunk_rows(size_t chunk) const = 0;

  /// Pins chunk `chunk` resident and returns the handle. Thread-safe.
  virtual Result<PinnedChunk> Pin(size_t chunk) const = 0;

  /// The whole relation as one resident Table when this provider is
  /// memory-backed — the zero-overhead path consumers prefer when
  /// non-null. Paged providers return nullptr.
  virtual const Table* ResidentTable() const { return nullptr; }

  /// Per-column min/max stats of chunk `chunk` when they are available
  /// WITHOUT pinning the chunk (chunk files persist them in the footer
  /// directory; memory providers only know them once a chunk view has
  /// been built). nullptr means unknown — consumers must treat the chunk
  /// as unprunable. Thread-safe.
  virtual const ChunkColumnStats* chunk_column_stats(size_t chunk,
                                                     size_t col) const {
    (void)chunk;
    (void)col;
    return nullptr;
  }

  /// The index of the chunk containing global row `row`.
  size_t ChunkOfRow(size_t row) const;
};

using DataProviderPtr = std::shared_ptr<const DataProvider>;

/// Zero-copy wrap of an in-memory table.
class MemoryDataProvider : public DataProvider {
 public:
  explicit MemoryDataProvider(std::shared_ptr<const Table> table,
                              size_t chunk_rows = kDefaultChunkRows);

  const SchemaPtr& schema() const override { return table_->schema(); }
  size_t num_rows() const override { return table_->num_rows(); }
  size_t num_chunks() const override { return num_chunks_; }
  size_t chunk_row_begin(size_t chunk) const override {
    return chunk * chunk_rows_;
  }
  size_t chunk_rows(size_t chunk) const override;
  Result<PinnedChunk> Pin(size_t chunk) const override;
  const Table* ResidentTable() const override { return table_.get(); }
  const ChunkColumnStats* chunk_column_stats(size_t chunk,
                                             size_t col) const override;

 private:
  std::shared_ptr<const Table> table_;
  size_t chunk_rows_;
  size_t num_chunks_;
  // Chunked views are only built when someone forces the paged path
  // (tests); built once, cached.
  mutable std::mutex mu_;
  mutable std::vector<ChunkPtr> cache_;
};

/// Pages chunks of one chunk file through a shared BufferManager.
class ChunkFileDataProvider : public DataProvider {
 public:
  /// Opens `path` (footer parse + CRC check happen here). All chunk
  /// loads go through `buffers`.
  static Result<std::shared_ptr<ChunkFileDataProvider>> Open(
      const std::string& path, std::shared_ptr<BufferManager> buffers);
  ~ChunkFileDataProvider() override;

  const SchemaPtr& schema() const override { return file_->schema(); }
  size_t num_rows() const override { return file_->num_rows(); }
  size_t num_chunks() const override { return file_->num_chunks(); }
  size_t chunk_row_begin(size_t chunk) const override {
    return file_->entry(chunk).row_begin;
  }
  size_t chunk_rows(size_t chunk) const override {
    return file_->entry(chunk).row_count;
  }
  Result<PinnedChunk> Pin(size_t chunk) const override;
  const ChunkColumnStats* chunk_column_stats(size_t chunk,
                                             size_t col) const override;

  const ChunkFile& file() const { return *file_; }
  const std::shared_ptr<BufferManager>& buffers() const { return buffers_; }

 private:
  ChunkFileDataProvider(std::shared_ptr<const ChunkFile> file,
                        std::shared_ptr<BufferManager> buffers)
      : file_(std::move(file)),
        buffers_(std::move(buffers)),
        owner_id_(BufferManager::NextOwnerId()) {}

  std::shared_ptr<const ChunkFile> file_;
  std::shared_ptr<BufferManager> buffers_;
  uint64_t owner_id_;
};

/// The ordered concatenation of providers (per-site partitions in site
/// order — exactly the UnionAll order of the eager centralized catalog).
class ConcatDataProvider : public DataProvider {
 public:
  explicit ConcatDataProvider(std::vector<DataProviderPtr> parts);

  const SchemaPtr& schema() const override { return parts_[0]->schema(); }
  size_t num_rows() const override { return num_rows_; }
  size_t num_chunks() const override { return chunk_map_.size(); }
  size_t chunk_row_begin(size_t chunk) const override;
  size_t chunk_rows(size_t chunk) const override;
  Result<PinnedChunk> Pin(size_t chunk) const override;
  const ChunkColumnStats* chunk_column_stats(size_t chunk,
                                             size_t col) const override;

 private:
  struct ChunkRef {
    size_t part = 0;
    size_t local_chunk = 0;
    size_t row_begin = 0;  // global, offset by preceding parts
  };

  std::vector<DataProviderPtr> parts_;
  std::vector<ChunkRef> chunk_map_;
  size_t num_rows_ = 0;
};

/// Boxes the provider's whole relation into an in-memory Table (chunk by
/// chunk; peak residency is one chunk above the buffer budget). The
/// materialization of last resort for consumers with no chunked path.
Result<Table> MaterializeProvider(const DataProvider& provider);

}  // namespace skalla

#endif  // SKALLA_STORAGE_DATA_PROVIDER_H_
