#include "storage/hash_index.h"

#include <utility>

#include "common/macros.h"
#include "storage/data_provider.h"

namespace skalla {

const Row& HashIndex::repr_key(const Group& g) const {
  return table_ != nullptr ? table_->row(g.repr) : owned_keys_[g.repr];
}

const std::vector<size_t>& HashIndex::repr_columns() const {
  return table_ != nullptr ? key_columns_ : identity_columns_;
}

HashIndex HashIndex::Build(const Table& table,
                           std::vector<size_t> key_columns) {
  HashIndex index;
  index.table_ = &table;
  index.key_columns_ = std::move(key_columns);
  index.buckets_.reserve(table.num_rows());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const Row& row = table.row(i);
    uint64_t h = HashRowKey(row, index.key_columns_);
    std::vector<Group>& groups = index.buckets_[h];
    Group* target = nullptr;
    for (Group& g : groups) {
      if (RowKeyEquals(row, index.key_columns_, table.row(g.repr),
                       index.key_columns_)) {
        target = &g;
        break;
      }
    }
    if (target == nullptr) {
      groups.push_back(Group{static_cast<uint32_t>(i), {}});
      target = &groups.back();
      ++index.num_keys_;
    }
    target->rows.push_back(static_cast<uint32_t>(i));
  }
  return index;
}

Result<HashIndex> HashIndex::BuildChunked(const DataProvider& provider,
                                          std::vector<size_t> key_columns) {
  HashIndex index;
  index.key_columns_ = std::move(key_columns);
  index.identity_columns_.resize(index.key_columns_.size());
  for (size_t k = 0; k < index.identity_columns_.size(); ++k) {
    index.identity_columns_[k] = k;
  }
  index.buckets_.reserve(provider.num_rows());
  for (size_t c = 0; c < provider.num_chunks(); ++c) {
    SKALLA_ASSIGN_OR_RETURN(PinnedChunk pin, provider.Pin(c));
    const size_t base = provider.chunk_row_begin(c);
    for (size_t r = 0; r < pin->num_rows(); ++r) {
      const Row& row = pin->row(r);
      const size_t pos = base + r;
      uint64_t h = HashRowKey(row, index.key_columns_);
      std::vector<Group>& groups = index.buckets_[h];
      Group* target = nullptr;
      for (Group& g : groups) {
        if (RowKeyEquals(row, index.key_columns_,
                         index.owned_keys_[g.repr],
                         index.identity_columns_)) {
          target = &g;
          break;
        }
      }
      if (target == nullptr) {
        Row key;
        key.reserve(index.key_columns_.size());
        for (size_t kc : index.key_columns_) key.push_back(row[kc]);
        index.owned_keys_.push_back(std::move(key));
        groups.push_back(
            Group{static_cast<uint32_t>(index.owned_keys_.size() - 1), {}});
        target = &groups.back();
        ++index.num_keys_;
      }
      target->rows.push_back(static_cast<uint32_t>(pos));
    }
  }
  return index;
}

const std::vector<uint32_t>* HashIndex::Lookup(
    const Row& probe, const std::vector<size_t>& probe_columns) const {
  SKALLA_DCHECK(probe_columns.size() == key_columns_.size(),
                "probe arity must match indexed key arity");
  uint64_t h = HashRowKey(probe, probe_columns);
  auto it = buckets_.find(h);
  if (it == buckets_.end()) return nullptr;
  for (const Group& g : it->second) {
    if (RowKeyEquals(probe, probe_columns, repr_key(g), repr_columns())) {
      return &g.rows;
    }
  }
  return nullptr;
}

}  // namespace skalla
