#include "storage/hash_index.h"

#include "common/macros.h"

namespace skalla {

HashIndex HashIndex::Build(const Table& table,
                           std::vector<size_t> key_columns) {
  HashIndex index;
  index.table_ = &table;
  index.key_columns_ = std::move(key_columns);
  index.buckets_.reserve(table.num_rows());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    const Row& row = table.row(i);
    uint64_t h = HashRowKey(row, index.key_columns_);
    std::vector<Group>& groups = index.buckets_[h];
    Group* target = nullptr;
    for (Group& g : groups) {
      if (RowKeyEquals(row, index.key_columns_, table.row(g.repr),
                       index.key_columns_)) {
        target = &g;
        break;
      }
    }
    if (target == nullptr) {
      groups.push_back(Group{static_cast<uint32_t>(i), {}});
      target = &groups.back();
      ++index.num_keys_;
    }
    target->rows.push_back(static_cast<uint32_t>(i));
  }
  return index;
}

const std::vector<uint32_t>* HashIndex::Lookup(
    const Row& probe, const std::vector<size_t>& probe_columns) const {
  SKALLA_DCHECK(probe_columns.size() == key_columns_.size(),
                "probe arity must match indexed key arity");
  uint64_t h = HashRowKey(probe, probe_columns);
  auto it = buckets_.find(h);
  if (it == buckets_.end()) return nullptr;
  for (const Group& g : it->second) {
    if (RowKeyEquals(probe, probe_columns, table_->row(g.repr),
                     key_columns_)) {
      return &g.rows;
    }
  }
  return nullptr;
}

}  // namespace skalla
