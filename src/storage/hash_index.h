// HashIndex: multi-column hash index over a Table. Used to accelerate
// GMDJ condition evaluation (equality conjuncts between base and detail
// columns) and coordinator synchronization (index on the key attributes K
// of the base-result structure).

#ifndef SKALLA_STORAGE_HASH_INDEX_H_
#define SKALLA_STORAGE_HASH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/table.h"
#include "types/row.h"

namespace skalla {

class DataProvider;

/// Maps key tuples (projections of indexed rows onto the key columns) to
/// the list of row positions holding that key.
///
/// Collision handling: rows are grouped by 64-bit key hash; within a hash
/// bucket, groups of equal-key rows are kept separately and verified with
/// full key comparison on probe.
class HashIndex {
 public:
  HashIndex() = default;

  /// Builds an index over `table` keyed on `key_columns`.
  /// The table must outlive the index.
  static HashIndex Build(const Table& table, std::vector<size_t> key_columns);

  /// Builds an index over a chunk-paged relation by streaming its chunks
  /// in order. The index owns projected copies of the group keys, so it
  /// stays valid after the chunks are evicted; only the provider's row
  /// numbering (not its residency) must stay stable.
  static Result<HashIndex> BuildChunked(const DataProvider& provider,
                                        std::vector<size_t> key_columns);

  /// Returns the row positions whose key equals the projection of `probe`
  /// onto `probe_columns`, or nullptr if no such key exists.
  /// `probe_columns` must have the same length as the indexed key.
  const std::vector<uint32_t>* Lookup(
      const Row& probe, const std::vector<size_t>& probe_columns) const;

  /// Number of distinct keys in the index.
  size_t num_keys() const { return num_keys_; }

  /// The key columns this index was built on.
  const std::vector<size_t>& key_columns() const { return key_columns_; }

 private:
  struct Group {
    // Representative key: a row position in table_ when memory-backed, an
    // index into owned_keys_ when built chunked.
    uint32_t repr = 0;
    std::vector<uint32_t> rows;
  };

  const Row& repr_key(const Group& g) const;
  const std::vector<size_t>& repr_columns() const;

  const Table* table_ = nullptr;
  std::vector<size_t> key_columns_;
  // Chunked mode: projected key rows (arity == key_columns_.size()),
  // compared through identity columns {0..k-1}.
  std::vector<Row> owned_keys_;
  std::vector<size_t> identity_columns_;
  std::unordered_map<uint64_t, std::vector<Group>> buckets_;
  size_t num_keys_ = 0;
};

}  // namespace skalla

#endif  // SKALLA_STORAGE_HASH_INDEX_H_
