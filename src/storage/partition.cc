#include "storage/partition.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace skalla {

bool ColumnDistribution::MayContain(const Value& v) const {
  if (values.has_value()) return values->Contains(v);
  if (v.is_numeric() && (min.has_value() || max.has_value())) {
    double d = v.AsDouble();
    if (min.has_value() && d < *min) return false;
    if (max.has_value() && d > *max) return false;
    if (!histogram.empty() && min.has_value() && max.has_value() &&
        *max > *min) {
      double width = (*max - *min) / static_cast<double>(histogram.size());
      size_t bucket = static_cast<size_t>((d - *min) / width);
      if (bucket >= histogram.size()) bucket = histogram.size() - 1;
      if (histogram[bucket] == 0) return false;
    }
  }
  return true;  // Nothing known: conservatively possible.
}

void PartitionInfo::SetDistribution(size_t site, const std::string& column,
                                    ColumnDistribution dist) {
  std::vector<ColumnDistribution>& per_site = columns_[column];
  if (per_site.size() < num_sites_) per_site.resize(num_sites_);
  per_site[site] = std::move(dist);
}

const ColumnDistribution* PartitionInfo::GetDistribution(
    size_t site, std::string_view column) const {
  auto it = columns_.find(std::string(column));
  if (it == columns_.end()) return nullptr;
  if (site >= it->second.size()) return nullptr;
  return &it->second[site];
}

bool PartitionInfo::IsPartitionAttribute(std::string_view column) const {
  auto it = columns_.find(std::string(column));
  if (it == columns_.end()) return false;
  const std::vector<ColumnDistribution>& per_site = it->second;
  if (per_site.size() != num_sites_) return false;
  for (const ColumnDistribution& d : per_site) {
    if (!d.values.has_value()) return false;
  }
  for (size_t i = 0; i < per_site.size(); ++i) {
    for (size_t j = i + 1; j < per_site.size(); ++j) {
      if (per_site[i].values->Intersects(*per_site[j].values)) return false;
    }
  }
  return true;
}

std::vector<std::string> PartitionInfo::TrackedColumns() const {
  std::vector<std::string> out;
  out.reserve(columns_.size());
  for (const auto& [name, dists] : columns_) out.push_back(name);
  return out;
}

Result<PartitionInfo> PartitionInfo::ComputeFromPartitions(
    const std::vector<Table>& partitions,
    const std::vector<std::string>& columns, size_t histogram_buckets,
    size_t max_value_set_size) {
  PartitionInfo info(partitions.size());
  for (const std::string& column : columns) {
    for (size_t site = 0; site < partitions.size(); ++site) {
      const Table& part = partitions[site];
      SKALLA_ASSIGN_OR_RETURN(size_t col,
                              part.schema()->RequireIndex(column));
      ColumnDistribution dist;
      dist.values.emplace();
      bool any_numeric = false;
      for (size_t r = 0; r < part.num_rows(); ++r) {
        const Value& v = part.at(r, col);
        if (dist.values.has_value()) {
          dist.values->Insert(v);
          if (max_value_set_size > 0 &&
              dist.values->size() > max_value_set_size) {
            dist.values.reset();  // Too many distincts: keep range only.
          }
        }
        if (v.is_numeric()) {
          double d = v.AsDouble();
          if (!any_numeric) {
            dist.min = d;
            dist.max = d;
            any_numeric = true;
          } else {
            if (d < *dist.min) dist.min = d;
            if (d > *dist.max) dist.max = d;
          }
        }
      }
      if (histogram_buckets > 0 && any_numeric && *dist.max > *dist.min) {
        dist.histogram.assign(histogram_buckets, 0);
        double width =
            (*dist.max - *dist.min) / static_cast<double>(histogram_buckets);
        for (size_t r = 0; r < part.num_rows(); ++r) {
          const Value& v = part.at(r, col);
          if (!v.is_numeric()) continue;
          size_t bucket = static_cast<size_t>(
              (v.AsDouble() - *dist.min) / width);
          if (bucket >= histogram_buckets) bucket = histogram_buckets - 1;
          ++dist.histogram[bucket];
        }
      }
      info.SetDistribution(site, column, std::move(dist));
    }
  }
  return info;
}

namespace {

Result<std::vector<Table>> MakeEmptyPartitions(const Table& table,
                                               size_t num_sites) {
  if (num_sites == 0) {
    return Status::InvalidArgument("cannot partition into 0 sites");
  }
  std::vector<Table> parts;
  parts.reserve(num_sites);
  for (size_t i = 0; i < num_sites; ++i) parts.emplace_back(table.schema());
  return parts;
}

}  // namespace

Result<std::vector<Table>> PartitionByValue(const Table& table,
                                            std::string_view column,
                                            size_t num_sites) {
  SKALLA_ASSIGN_OR_RETURN(std::vector<Table> parts,
                          MakeEmptyPartitions(table, num_sites));
  SKALLA_ASSIGN_OR_RETURN(size_t col, table.schema()->RequireIndex(column));
  for (size_t r = 0; r < table.num_rows(); ++r) {
    size_t site = table.at(r, col).Hash() % num_sites;
    parts[site].AppendUnchecked(table.row(r));
  }
  return parts;
}

Result<std::vector<Table>> PartitionByModulo(const Table& table,
                                             std::string_view column,
                                             size_t num_sites) {
  SKALLA_ASSIGN_OR_RETURN(std::vector<Table> parts,
                          MakeEmptyPartitions(table, num_sites));
  SKALLA_ASSIGN_OR_RETURN(size_t col, table.schema()->RequireIndex(column));
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const Value& v = table.at(r, col);
    if (!v.is_int64()) {
      return Status::TypeError(
          StrCat("PartitionByModulo requires INT64 values in column '",
                 column, "', got ", v.ToString()));
    }
    int64_t m = v.int64() % static_cast<int64_t>(num_sites);
    if (m < 0) m += static_cast<int64_t>(num_sites);
    parts[static_cast<size_t>(m)].AppendUnchecked(table.row(r));
  }
  return parts;
}

Result<std::vector<Table>> PartitionRoundRobin(const Table& table,
                                               size_t num_sites) {
  SKALLA_ASSIGN_OR_RETURN(std::vector<Table> parts,
                          MakeEmptyPartitions(table, num_sites));
  for (size_t r = 0; r < table.num_rows(); ++r) {
    parts[r % num_sites].AppendUnchecked(table.row(r));
  }
  return parts;
}

}  // namespace skalla
