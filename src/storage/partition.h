// Partitioning metadata and horizontal partitioning of relations across
// Skalla sites.
//
// PartitionInfo is the "distribution knowledge" of Sect. 4 of the paper:
// per site and per column, the set of values (and/or numeric range) that
// can occur there. The optimizer uses it to derive the ¬ψ_i predicates of
// Theorem 4 (distribution-aware group reduction) and to detect partition
// attributes (Definition 2) for synchronization reduction (Corollary 1).

#ifndef SKALLA_STORAGE_PARTITION_H_
#define SKALLA_STORAGE_PARTITION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/table.h"
#include "types/value.h"
#include "types/value_set.h"

namespace skalla {

/// What is known about one column of one site's local partition.
struct ColumnDistribution {
  /// Exact set of values present at the site, if known.
  std::optional<ValueSet> values;

  /// Numeric [min, max] range of the column at the site, if known.
  std::optional<double> min;
  std::optional<double> max;

  /// Equi-width histogram over [min, max]: bucket i covers
  /// [min + i*w, min + (i+1)*w) with w = (max-min)/buckets (the last
  /// bucket is closed). Empty vector = no histogram. A zero bucket count
  /// proves a value's absence even when it falls inside the range.
  std::vector<uint32_t> histogram;

  /// Whether value `v` may occur at the site. Conservative: returns true
  /// when nothing is known; consults (in order of precision) the exact
  /// value set, the histogram, then the range.
  bool MayContain(const Value& v) const;
};

/// Distribution knowledge for one partitioned relation across all sites.
class PartitionInfo {
 public:
  PartitionInfo() = default;
  explicit PartitionInfo(size_t num_sites) : num_sites_(num_sites) {}

  size_t num_sites() const { return num_sites_; }

  /// Records what is known about `column` at `site`.
  void SetDistribution(size_t site, const std::string& column,
                       ColumnDistribution dist);

  /// What is known about `column` at `site`; nullptr if nothing.
  const ColumnDistribution* GetDistribution(size_t site,
                                            std::string_view column) const;

  /// Definition 2: `column` is a partition attribute iff the per-site value
  /// sets are all known and pairwise disjoint.
  bool IsPartitionAttribute(std::string_view column) const;

  /// Names of all columns with recorded distribution knowledge.
  std::vector<std::string> TrackedColumns() const;

  /// Builds exact distribution knowledge by scanning actual partitions:
  /// for each listed column, per-site value sets, numeric ranges, and —
  /// when `histogram_buckets` > 0 — equi-width histograms are computed.
  /// When a column's per-site distinct count exceeds
  /// `max_value_set_size` (0 = unlimited), the exact set is dropped and
  /// the optimizer falls back to range/histogram knowledge — the
  /// realistic trade-off for high-cardinality columns.
  static Result<PartitionInfo> ComputeFromPartitions(
      const std::vector<Table>& partitions,
      const std::vector<std::string>& columns,
      size_t histogram_buckets = 0, size_t max_value_set_size = 0);

 private:
  size_t num_sites_ = 0;
  // column -> one ColumnDistribution per site.
  std::unordered_map<std::string, std::vector<ColumnDistribution>> columns_;
};

/// Streaming accumulator for one site x column ColumnDistribution:
/// exactly ComputeFromPartitions' exact-set + range knowledge (default
/// knobs), but fed values one at a time instead of scanning a resident
/// partition — how skalla-dataset computes distribution knowledge while
/// routing generated rows straight to chunk files.
class DistributionBuilder {
 public:
  DistributionBuilder() { dist_.values.emplace(); }

  void Add(const Value& v) {
    dist_.values->Insert(v);
    if (v.is_numeric()) {
      double d = v.AsDouble();
      if (!any_numeric_) {
        dist_.min = d;
        dist_.max = d;
        any_numeric_ = true;
      } else {
        if (d < *dist_.min) dist_.min = d;
        if (d > *dist_.max) dist_.max = d;
      }
    }
  }

  ColumnDistribution Finish() { return std::move(dist_); }

 private:
  ColumnDistribution dist_;
  bool any_numeric_ = false;
};

/// Horizontally partitions `table` into `num_sites` pieces such that all
/// rows sharing a value of `column` land on the same site (site chosen by
/// value hash). This makes `column` a partition attribute of the result.
Result<std::vector<Table>> PartitionByValue(const Table& table,
                                            std::string_view column,
                                            size_t num_sites);

/// Partitions `table` into `num_sites` pieces round-robin (no partition
/// attribute; used as the "no distribution knowledge" baseline).
Result<std::vector<Table>> PartitionRoundRobin(const Table& table,
                                               size_t num_sites);

/// Partitions by `column % num_sites` (the column must be integral).
/// Spreads consecutive key values evenly — the paper's "divided equally"
/// layout for NationKey — while keeping `column` a partition attribute.
Result<std::vector<Table>> PartitionByModulo(const Table& table,
                                             std::string_view column,
                                             size_t num_sites);

}  // namespace skalla

#endif  // SKALLA_STORAGE_PARTITION_H_
