#include "storage/table.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace skalla {

namespace {

bool TypeCompatible(ValueType declared, const Value& v) {
  if (v.is_null()) return true;
  switch (declared) {
    case ValueType::kNull:
      return true;  // Untyped column accepts anything.
    case ValueType::kInt64:
    case ValueType::kFloat64:
      return v.is_numeric();
    case ValueType::kString:
      return v.is_string();
  }
  return false;
}

}  // namespace

Status Table::Append(Row row) {
  if (row.size() != schema_->num_fields()) {
    return Status::InvalidArgument(
        StrCat("row arity ", row.size(), " does not match schema arity ",
               schema_->num_fields()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!TypeCompatible(schema_->field(i).type, row[i])) {
      return Status::TypeError(
          StrCat("value ", row[i].ToString(), " not compatible with column ",
                 schema_->field(i).ToString()));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

void Table::SortRows() {
  std::vector<size_t> all(schema_->num_fields());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  SortRowsBy(all);
}

void Table::SortRowsBy(const std::vector<size_t>& key_indices) {
  std::sort(rows_.begin(), rows_.end(), [&](const Row& a, const Row& b) {
    return CompareRowKey(a, b, key_indices) < 0;
  });
}

bool Table::SameRows(const Table& other) const {
  if (num_rows() != other.num_rows()) return false;
  if (num_columns() != other.num_columns()) return false;
  Table a = *this;
  Table b = other;
  a.SortRows();
  b.SortRows();
  for (size_t i = 0; i < a.num_rows(); ++i) {
    if (!RowEquals(a.row(i), b.row(i))) return false;
  }
  return true;
}

namespace {

bool ApproxValueEquals(const Value& x, const Value& y, double rel_tol) {
  if (x.is_numeric() && y.is_numeric()) {
    double a = x.AsDouble();
    double b = y.AsDouble();
    double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
    return std::fabs(a - b) <= rel_tol * scale;
  }
  return x.Equals(y);
}

}  // namespace

bool Table::ApproxSameRows(const Table& other, double rel_tol) const {
  if (num_rows() != other.num_rows()) return false;
  if (num_columns() != other.num_columns()) return false;
  Table a = *this;
  Table b = other;
  a.SortRows();
  b.SortRows();
  for (size_t i = 0; i < a.num_rows(); ++i) {
    const Row& ra = a.row(i);
    const Row& rb = b.row(i);
    for (size_t c = 0; c < ra.size(); ++c) {
      if (!ApproxValueEquals(ra[c], rb[c], rel_tol)) return false;
    }
  }
  return true;
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<std::string> header;
  header.reserve(schema_->num_fields());
  for (const Field& f : schema_->fields()) header.push_back(f.name);
  std::string out = Join(header, " | ");
  out += "\n";
  out += std::string(out.size() - 1, '-');
  out += "\n";
  size_t shown = std::min(max_rows, rows_.size());
  for (size_t i = 0; i < shown; ++i) {
    std::vector<std::string> cells;
    cells.reserve(rows_[i].size());
    for (const Value& v : rows_[i]) cells.push_back(v.ToString());
    out += Join(cells, " | ");
    out += "\n";
  }
  if (shown < rows_.size()) {
    out += StrCat("... (", rows_.size() - shown, " more rows)\n");
  }
  return out;
}

}  // namespace skalla
