// Table: the in-memory relation of the local-warehouse engine. Skalla
// sites, the coordinator's base-result structure, and all intermediate
// results are Tables.

#ifndef SKALLA_STORAGE_TABLE_H_
#define SKALLA_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "types/row.h"
#include "types/schema.h"

namespace skalla {

/// A row-oriented, in-memory relation with a fixed schema.
class Table {
 public:
  /// An empty table with an empty schema.
  Table() : schema_(std::make_shared<const Schema>()) {}

  explicit Table(SchemaPtr schema) : schema_(std::move(schema)) {}

  Table(SchemaPtr schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const SchemaPtr& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_->num_fields(); }
  bool empty() const { return rows_.empty(); }

  const Row& row(size_t i) const { return rows_[i]; }
  Row& mutable_row(size_t i) { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row after checking arity and type compatibility (NULL is
  /// accepted in any column; INT64/FLOAT64 are mutually compatible).
  Status Append(Row row);

  /// Appends without validation; used on hot paths where the producer
  /// guarantees conformance.
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  void Reserve(size_t n) { rows_.reserve(n); }
  void Clear() { rows_.clear(); }

  /// Cell accessor (no bounds checking in release builds).
  const Value& at(size_t row, size_t col) const { return rows_[row][col]; }

  /// Sorts rows lexicographically over all columns; canonicalizes the
  /// table for order-insensitive comparison in tests.
  void SortRows();

  /// Sorts rows by the given key columns.
  void SortRowsBy(const std::vector<size_t>& key_indices);

  /// Order-insensitive multiset equality with `other` (schemas must have
  /// equal field counts; field names are not compared so renamed outputs
  /// still compare equal by position).
  bool SameRows(const Table& other) const;

  /// Like SameRows, but numeric cells compare within a relative tolerance
  /// — needed when floating-point aggregates are summed in different
  /// association orders (distributed vs centralized evaluation).
  bool ApproxSameRows(const Table& other, double rel_tol) const;

  /// A pretty-printed table with header, at most `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;

 private:
  SchemaPtr schema_;
  std::vector<Row> rows_;
};

}  // namespace skalla

#endif  // SKALLA_STORAGE_TABLE_H_
