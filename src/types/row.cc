#include "types/row.h"

#include "common/hash.h"
#include "common/string_util.h"

namespace skalla {

uint64_t HashRowKey(const Row& row, const std::vector<size_t>& key_indices) {
  uint64_t h = 0x5ca11aULL;
  for (size_t i : key_indices) {
    h = HashCombine(h, row[i].Hash());
  }
  return h;
}

uint64_t HashRow(const Row& row) {
  uint64_t h = 0x5ca11aULL;
  for (const Value& v : row) {
    h = HashCombine(h, v.Hash());
  }
  return h;
}

bool RowKeyEquals(const Row& a, const std::vector<size_t>& a_indices,
                  const Row& b, const std::vector<size_t>& b_indices) {
  if (a_indices.size() != b_indices.size()) return false;
  for (size_t i = 0; i < a_indices.size(); ++i) {
    if (!a[a_indices[i]].Equals(b[b_indices[i]])) return false;
  }
  return true;
}

bool RowEquals(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].Equals(b[i])) return false;
  }
  return true;
}

int CompareRowKey(const Row& a, const Row& b,
                  const std::vector<size_t>& key_indices) {
  for (size_t i : key_indices) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return 0;
}

Row ProjectRow(const Row& row, const std::vector<size_t>& indices) {
  Row out;
  out.reserve(indices.size());
  for (size_t i : indices) out.push_back(row[i]);
  return out;
}

std::string RowToString(const Row& row) {
  std::vector<std::string> parts;
  parts.reserve(row.size());
  for (const Value& v : row) parts.push_back(v.ToString());
  return StrCat("(", Join(parts, ", "), ")");
}

}  // namespace skalla
