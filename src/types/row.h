// Row: one tuple, plus helpers for key extraction, hashing, and equality
// that back the hash index and coordinator synchronization.

#ifndef SKALLA_TYPES_ROW_H_
#define SKALLA_TYPES_ROW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/value.h"

namespace skalla {

/// One tuple. Cell i corresponds to schema field i.
using Row = std::vector<Value>;

/// Hash of the projection of `row` onto `key_indices`, consistent with
/// RowKeyEquals.
uint64_t HashRowKey(const Row& row, const std::vector<size_t>& key_indices);

/// Hash of the full row.
uint64_t HashRow(const Row& row);

/// Whether `a` projected on `a_indices` equals `b` projected on
/// `b_indices` (SQL GROUP BY semantics: NULLs compare equal).
bool RowKeyEquals(const Row& a, const std::vector<size_t>& a_indices,
                  const Row& b, const std::vector<size_t>& b_indices);

/// Full-row equality.
bool RowEquals(const Row& a, const Row& b);

/// Lexicographic three-way comparison of the projections.
int CompareRowKey(const Row& a, const Row& b,
                  const std::vector<size_t>& key_indices);

/// The projection of `row` onto `indices`, as a new row.
Row ProjectRow(const Row& row, const std::vector<size_t>& indices);

/// "(v1, v2, ...)" rendering for debugging and golden tests.
std::string RowToString(const Row& row);

}  // namespace skalla

#endif  // SKALLA_TYPES_ROW_H_
