#include "types/schema.h"

#include "common/string_util.h"

namespace skalla {

std::string Field::ToString() const {
  return StrCat(name, " ", ValueTypeToString(type));
}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, i);
  }
}

Result<SchemaPtr> Schema::Make(std::vector<Field> fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    for (size_t j = i + 1; j < fields.size(); ++j) {
      if (fields[i].name == fields[j].name) {
        return Status::InvalidArgument(
            StrCat("duplicate field name: ", fields[i].name));
      }
    }
  }
  return std::make_shared<const Schema>(std::move(fields));
}

int Schema::IndexOf(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

Result<size_t> Schema::RequireIndex(std::string_view name) const {
  int idx = IndexOf(name);
  if (idx < 0) {
    return Status::NotFound(StrCat("no field named '", name, "' in schema ",
                                   ToString()));
  }
  return static_cast<size_t>(idx);
}

Result<SchemaPtr> Schema::AddField(Field field) const {
  if (Contains(field.name)) {
    return Status::AlreadyExists(
        StrCat("field '", field.name, "' already exists"));
  }
  std::vector<Field> fields = fields_;
  fields.push_back(std::move(field));
  return std::make_shared<const Schema>(std::move(fields));
}

SchemaPtr Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<Field> fields;
  fields.reserve(indices.size());
  for (size_t i : indices) fields.push_back(fields_[i]);
  return std::make_shared<const Schema>(std::move(fields));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) parts.push_back(f.ToString());
  return StrCat("(", Join(parts, ", "), ")");
}

}  // namespace skalla
