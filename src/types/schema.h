// Schema: ordered, named, typed fields describing the columns of a table
// or of the base-result structure maintained by the Skalla coordinator.

#ifndef SKALLA_TYPES_SCHEMA_H_
#define SKALLA_TYPES_SCHEMA_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace skalla {

/// One column: a name plus a declared type.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }

  std::string ToString() const;
};

class Schema;
using SchemaPtr = std::shared_ptr<const Schema>;

/// Immutable column layout. Field names are unique (case sensitive).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Builds a schema, failing on duplicate field names.
  static Result<SchemaPtr> Make(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the named field, or -1 if absent.
  int IndexOf(std::string_view name) const;

  /// Index of the named field, or a NotFound error naming the field.
  Result<size_t> RequireIndex(std::string_view name) const;

  bool Contains(std::string_view name) const { return IndexOf(name) >= 0; }

  /// A new schema with `field` appended. Fails if the name already exists.
  Result<SchemaPtr> AddField(Field field) const;

  /// A new schema holding the listed fields (by index), in order.
  SchemaPtr Project(const std::vector<size_t>& indices) const;

  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

  /// e.g. "(SourceAS INT64, DestAS INT64, cnt1 INT64)".
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace skalla

#endif  // SKALLA_TYPES_SCHEMA_H_
