#include "types/value.h"

#include <cmath>

#include "common/string_util.h"

namespace skalla {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kFloat64:
      return "FLOAT64";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

double Value::AsDouble() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(int64());
    case ValueType::kFloat64:
      return float64();
    default:
      return 0.0;
  }
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_numeric() && other.is_numeric()) {
    if (is_int64() && other.is_int64()) return int64() == other.int64();
    return AsDouble() == other.AsDouble();
  }
  if (is_string() && other.is_string()) return str() == other.str();
  return false;
}

int Value::Compare(const Value& other) const {
  // Total order: NULL < numeric < string.
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  int ra = rank(*this);
  int rb = rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 0) return 0;  // Both NULL.
  if (ra == 1) {
    if (is_int64() && other.is_int64()) {
      int64_t a = int64();
      int64_t b = other.int64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  int c = str().compare(other.str());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x6b7bull;
    case ValueType::kInt64:
      return Mix64(static_cast<uint64_t>(int64()));
    case ValueType::kFloat64: {
      double d = float64();
      // Hash integral doubles as their integer value so that Equals and
      // Hash agree across INT64/FLOAT64 representations.
      if (d >= -9.2e18 && d <= 9.2e18 && d == std::floor(d)) {
        return Mix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits);
    }
    case ValueType::kString:
      return HashString(str());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return StrCat(int64());
    case ValueType::kFloat64: {
      std::string s = StrPrintf("%.6g", float64());
      return s;
    }
    case ValueType::kString:
      return StrCat("'", str(), "'");
  }
  return "?";
}

}  // namespace skalla
