// Value: the dynamically-typed cell of a Skalla row. Supports NULL, 64-bit
// integers, 64-bit floats, and strings — sufficient for the TPC-R style and
// IP-flow schemas the paper evaluates on.

#ifndef SKALLA_TYPES_VALUE_H_
#define SKALLA_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/hash.h"

namespace skalla {

/// Runtime type tag of a Value.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kFloat64 = 2,
  kString = 3,
};

/// Returns "NULL", "INT64", "FLOAT64", or "STRING".
std::string_view ValueTypeToString(ValueType type);

/// A single dynamically-typed value.
///
/// Values of different representations are deliberately interchangeable in
/// numeric contexts (an INT64 compares equal to the same FLOAT64), which is
/// why the converting constructors are implicit: rows are routinely written
/// as brace lists such as `{1, "web", 2.5}`.
class Value {
 public:
  /// Constructs a NULL value.
  Value() = default;

  Value(int64_t v) : data_(v) {}               // NOLINT(runtime/explicit)
  Value(int v) : data_(int64_t{v}) {}          // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}                // NOLINT(runtime/explicit)
  Value(std::string v)                         // NOLINT(runtime/explicit)
      : data_(std::move(v)) {}
  Value(const char* v)                         // NOLINT(runtime/explicit)
      : data_(std::string(v)) {}

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_float64() const { return type() == ValueType::kFloat64; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int64() || is_float64(); }

  /// Typed accessors. Calling the wrong accessor is a programming error
  /// (checked in debug builds via std::get).
  int64_t int64() const { return std::get<int64_t>(data_); }
  double float64() const { return std::get<double>(data_); }
  const std::string& str() const { return std::get<std::string>(data_); }

  /// Numeric coercion: INT64 and FLOAT64 convert to double; NULL and
  /// strings yield 0.0 (callers should test is_numeric first when the
  /// distinction matters).
  double AsDouble() const;

  /// Strict equality: types must be numeric-compatible or identical;
  /// NULL equals NULL (needed for grouping semantics, matching SQL
  /// GROUP BY rather than SQL =).
  bool Equals(const Value& other) const;

  /// Three-way ordering for sorting: NULL < numerics < strings; numerics
  /// compare by value across INT64/FLOAT64.
  int Compare(const Value& other) const;

  /// Hash consistent with Equals (INT64 and FLOAT64 holding the same
  /// integral value hash identically).
  uint64_t Hash() const;

  /// SQL-ish rendering: NULL, 42, 2.5, 'text'.
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

inline bool operator==(const Value& a, const Value& b) { return a.Equals(b); }
inline bool operator!=(const Value& a, const Value& b) {
  return !a.Equals(b);
}

}  // namespace skalla

#endif  // SKALLA_TYPES_VALUE_H_
