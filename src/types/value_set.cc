#include "types/value_set.h"

namespace skalla {

void ValueSet::Insert(const Value& v) {
  std::vector<Value>& bucket = buckets_[v.Hash()];
  for (const Value& existing : bucket) {
    if (existing.Equals(v)) return;
  }
  bucket.push_back(v);
  ++size_;
}

bool ValueSet::Contains(const Value& v) const {
  auto it = buckets_.find(v.Hash());
  if (it == buckets_.end()) return false;
  for (const Value& existing : it->second) {
    if (existing.Equals(v)) return true;
  }
  return false;
}

bool ValueSet::Intersects(const ValueSet& other) const {
  const ValueSet& small = size_ <= other.size_ ? *this : other;
  const ValueSet& large = size_ <= other.size_ ? other : *this;
  bool found = false;
  small.ForEach([&](const Value& v) {
    if (!found && large.Contains(v)) found = true;
  });
  return found;
}

}  // namespace skalla
