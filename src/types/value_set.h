// ValueSet: a set of Values with O(1) membership testing. Used for
// distribution knowledge (per-site column value sets) and for the IN-set
// predicates that distribution-aware group reduction synthesizes.

#ifndef SKALLA_TYPES_VALUE_SET_H_
#define SKALLA_TYPES_VALUE_SET_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "types/value.h"

namespace skalla {

/// Hash-bucketed set of Values (full equality verified within a bucket).
class ValueSet {
 public:
  /// Inserts `v`; duplicates are ignored.
  void Insert(const Value& v);

  bool Contains(const Value& v) const;

  /// Whether this set shares at least one value with `other`.
  bool Intersects(const ValueSet& other) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Iterates all values (order unspecified).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [hash, vals] : buckets_) {
      for (const Value& v : vals) fn(v);
    }
  }

 private:
  std::unordered_map<uint64_t, std::vector<Value>> buckets_;
  size_t size_ = 0;
};

}  // namespace skalla

#endif  // SKALLA_TYPES_VALUE_SET_H_
