// Aggregate decomposition (Theorem 1's l'/l'' machinery) and accumulator
// semantics, including the merge-equals-direct property on random splits.

#include <gtest/gtest.h>

#include "agg/accumulator.h"
#include "agg/aggregate.h"
#include "common/random.h"

namespace skalla {
namespace {

TEST(AggregateTest, DecomposeDistributive) {
  AggSpec count{AggKind::kCountStar, "", "c"};
  auto parts = Decompose(count);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].kind, AggKind::kCountStar);
  EXPECT_EQ(parts[0].part_name, "c");
  EXPECT_EQ(parts[0].merge, MergeKind::kSum);

  AggSpec min{AggKind::kMin, "v", "lo"};
  parts = Decompose(min);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].merge, MergeKind::kMin);
}

TEST(AggregateTest, DecomposeAvgIntoSumAndCount) {
  AggSpec avg{AggKind::kAvg, "v", "a"};
  auto parts = Decompose(avg);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].kind, AggKind::kSum);
  EXPECT_EQ(parts[0].part_name, "a__sum");
  EXPECT_EQ(parts[1].kind, AggKind::kCount);
  EXPECT_EQ(parts[1].part_name, "a__cnt");
}

TEST(AggregateTest, MergePartialRespectsNulls) {
  EXPECT_EQ(MergePartial(Value(3), Value(4), MergeKind::kSum).int64(), 7);
  EXPECT_EQ(MergePartial(Value::Null(), Value(4), MergeKind::kSum).int64(),
            4);
  EXPECT_EQ(MergePartial(Value(3), Value::Null(), MergeKind::kSum).int64(),
            3);
  EXPECT_TRUE(
      MergePartial(Value::Null(), Value::Null(), MergeKind::kMin).is_null());
  EXPECT_EQ(MergePartial(Value(3), Value(4), MergeKind::kMin).int64(), 3);
  EXPECT_EQ(MergePartial(Value(3), Value(4), MergeKind::kMax).int64(), 4);
}

TEST(AggregateTest, MergeSumPromotesToDouble) {
  Value merged = MergePartial(Value(3), Value(0.5), MergeKind::kSum);
  ASSERT_TRUE(merged.is_float64());
  EXPECT_DOUBLE_EQ(merged.float64(), 3.5);
}

TEST(AggregateTest, FinalizeCountOfNothingIsZero) {
  AggSpec count{AggKind::kCountStar, "", "c"};
  EXPECT_EQ(FinalizeAggregate(count, {Value::Null()}).int64(), 0);
  AggSpec sum{AggKind::kSum, "v", "s"};
  EXPECT_TRUE(FinalizeAggregate(sum, {Value::Null()}).is_null());
}

TEST(AggregateTest, FinalizeAvg) {
  AggSpec avg{AggKind::kAvg, "v", "a"};
  EXPECT_DOUBLE_EQ(
      FinalizeAggregate(avg, {Value(10), Value(4)}).float64(), 2.5);
  EXPECT_TRUE(
      FinalizeAggregate(avg, {Value::Null(), Value(int64_t{0})}).is_null());
  EXPECT_TRUE(
      FinalizeAggregate(avg, {Value(10), Value(int64_t{0})}).is_null());
}

TEST(AggregateTest, DecomposeVariance) {
  AggSpec var{AggKind::kVarPop, "v", "vv"};
  auto parts = Decompose(var);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].kind, AggKind::kSum);
  EXPECT_EQ(parts[1].kind, AggKind::kSumSq);
  EXPECT_EQ(parts[1].part_name, "vv__sumsq");
  EXPECT_EQ(parts[2].kind, AggKind::kCount);
  for (const SubAggregate& p : parts) {
    EXPECT_EQ(p.merge, MergeKind::kSum);
  }
}

TEST(AggregateTest, FinalizeVarianceAndStdDev) {
  // Values {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, variance 4, stddev 2.
  AggSpec var{AggKind::kVarPop, "v", "vv"};
  AggSpec sd{AggKind::kStdDevPop, "v", "sd"};
  Value sum(int64_t{40});
  Value sumsq(232.0);
  Value cnt(int64_t{8});
  EXPECT_DOUBLE_EQ(FinalizeAggregate(var, {sum, sumsq, cnt}).float64(), 4.0);
  EXPECT_DOUBLE_EQ(FinalizeAggregate(sd, {sum, sumsq, cnt}).float64(), 2.0);
  // Empty group: NULL.
  EXPECT_TRUE(FinalizeAggregate(
                  var, {Value::Null(), Value::Null(), Value(int64_t{0})})
                  .is_null());
  // Single value: variance 0.
  EXPECT_DOUBLE_EQ(
      FinalizeAggregate(var, {Value(3), Value(9.0), Value(1)}).float64(),
      0.0);
}

TEST(AccumulatorTest, SumSqAccumulation) {
  Accumulator acc(AggKind::kSumSq);
  acc.Update(Value(3));
  acc.Update(Value::Null());
  acc.Update(Value(4));
  EXPECT_DOUBLE_EQ(acc.Final().AsDouble(), 25.0);
  Accumulator empty(AggKind::kSumSq);
  EXPECT_TRUE(empty.Final().is_null());
  // Merge path.
  Accumulator other(AggKind::kSumSq);
  other.Update(Value(2.0));
  acc.MergeFrom(other);
  EXPECT_DOUBLE_EQ(acc.Final().AsDouble(), 29.0);
}

TEST(AggregateTest, OutputTypes) {
  SchemaPtr detail = Schema::Make({{"i", ValueType::kInt64},
                                   {"f", ValueType::kFloat64},
                                   {"s", ValueType::kString}})
                         .ValueOrDie();
  EXPECT_EQ(*AggOutputType({AggKind::kCountStar, "", "c"}, *detail),
            ValueType::kInt64);
  EXPECT_EQ(*AggOutputType({AggKind::kSum, "i", "x"}, *detail),
            ValueType::kInt64);
  EXPECT_EQ(*AggOutputType({AggKind::kSum, "f", "x"}, *detail),
            ValueType::kFloat64);
  EXPECT_EQ(*AggOutputType({AggKind::kAvg, "i", "x"}, *detail),
            ValueType::kFloat64);
  EXPECT_TRUE(
      AggOutputType({AggKind::kSum, "s", "x"}, *detail).status().IsTypeError());
  EXPECT_TRUE(AggOutputType({AggKind::kSum, "nope", "x"}, *detail)
                  .status()
                  .IsNotFound());
}

TEST(AccumulatorTest, CountVariants) {
  Accumulator star(AggKind::kCountStar);
  Accumulator col(AggKind::kCount);
  star.Update(Value::Null());
  star.Update(Value(1));
  col.Update(Value::Null());
  col.Update(Value(1));
  EXPECT_EQ(star.Final().int64(), 2);  // COUNT(*) counts NULL rows.
  EXPECT_EQ(col.Final().int64(), 1);   // COUNT(col) skips NULLs.
}

TEST(AccumulatorTest, SumStaysIntUntilDoubleArrives) {
  Accumulator sum(AggKind::kSum);
  sum.Update(Value(2));
  sum.Update(Value(3));
  EXPECT_TRUE(sum.Final().is_int64());
  EXPECT_EQ(sum.Final().int64(), 5);
  sum.Update(Value(0.5));
  EXPECT_TRUE(sum.Final().is_float64());
  EXPECT_DOUBLE_EQ(sum.Final().float64(), 5.5);
}

TEST(AccumulatorTest, EmptySumIsNull) {
  Accumulator sum(AggKind::kSum);
  EXPECT_TRUE(sum.Final().is_null());
  sum.Update(Value::Null());
  EXPECT_TRUE(sum.Final().is_null());
}

TEST(AccumulatorTest, MinMax) {
  Accumulator lo(AggKind::kMin);
  Accumulator hi(AggKind::kMax);
  for (int v : {5, -2, 9, 0}) {
    lo.Update(Value(v));
    hi.Update(Value(v));
  }
  EXPECT_EQ(lo.Final().int64(), -2);
  EXPECT_EQ(hi.Final().int64(), 9);
}

// Property: splitting a value stream arbitrarily, accumulating the pieces
// separately, and merging the partials (site/coordinator split) gives the
// same result as one accumulator — for every aggregate kind.
class MergeEqualsDirectTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeEqualsDirectTest, RandomSplits) {
  Random rng(GetParam());
  std::vector<Value> stream;
  size_t n = 1 + rng.Uniform(200);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.1)) {
      stream.push_back(Value::Null());
    } else if (rng.Bernoulli(0.3)) {
      stream.push_back(Value(rng.NextDouble() * 100 - 50));
    } else {
      stream.push_back(Value(rng.UniformInt(-1000, 1000)));
    }
  }

  for (AggKind kind : {AggKind::kCountStar, AggKind::kCount, AggKind::kSum,
                       AggKind::kMin, AggKind::kMax}) {
    Accumulator direct(kind);
    for (const Value& v : stream) direct.Update(v);

    // Split into 1..5 pieces.
    size_t pieces = 1 + rng.Uniform(5);
    std::vector<Accumulator> partial(pieces, Accumulator(kind));
    for (size_t i = 0; i < stream.size(); ++i) {
      partial[i % pieces].Update(stream[i]);
    }
    Accumulator merged(kind);
    for (const Accumulator& p : partial) merged.MergeFrom(p);

    Value a = direct.Final();
    Value b = merged.Final();
    if (a.is_null() || b.is_null()) {
      EXPECT_EQ(a.is_null(), b.is_null()) << AggKindToString(kind);
    } else if (a.is_float64() || b.is_float64()) {
      EXPECT_NEAR(a.AsDouble(), b.AsDouble(), 1e-9 * (1 + std::abs(a.AsDouble())))
          << AggKindToString(kind);
    } else {
      EXPECT_TRUE(a.Equals(b)) << AggKindToString(kind) << " "
                               << a.ToString() << " vs " << b.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeEqualsDirectTest,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

}  // namespace
}  // namespace skalla
