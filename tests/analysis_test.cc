// Condition analysis: conjunct splitting, equi-atom extraction,
// separability, interval arithmetic, entailment — the static machinery
// behind the Sect. 4 optimizations.

#include "expr/analysis.h"

#include <gtest/gtest.h>

#include "expr/builder.h"

namespace skalla {
namespace {

TEST(AnalysisTest, SplitConjunctsFlattensNestedAnds) {
  ExprPtr e = And(And(Eq(BCol("a"), RCol("a")), Eq(BCol("b"), RCol("b"))),
                  Gt(RCol("v"), Lit(Value(5))));
  auto conjuncts = SplitConjuncts(e);
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[0]->ToString(), "(b.a = r.a)");
  EXPECT_EQ(conjuncts[2]->ToString(), "(r.v > 5)");
}

TEST(AnalysisTest, SplitConjunctsDoesNotCrossOr) {
  ExprPtr e = Or(Eq(BCol("a"), RCol("a")), Eq(BCol("b"), RCol("b")));
  auto conjuncts = SplitConjuncts(e);
  ASSERT_EQ(conjuncts.size(), 1u);
}

TEST(AnalysisTest, MakeConjunctionEmptyIsTrue) {
  ExprPtr e = MakeConjunction({});
  EXPECT_TRUE(e->EvalBool(nullptr, nullptr));
  ExprPtr f = MakeDisjunction({});
  EXPECT_FALSE(f->EvalBool(nullptr, nullptr));
}

TEST(AnalysisTest, AnalyzeConditionSeparatesEquiAtoms) {
  ExprPtr theta = And(And(Eq(RCol("SAS"), BCol("SAS")),
                          Eq(BCol("DAS"), RCol("DAS"))),
                      Ge(RCol("NB"), Div(BCol("sum1"), BCol("cnt1"))));
  ConditionAnalysis analysis = AnalyzeCondition(theta);
  ASSERT_EQ(analysis.equi_atoms.size(), 2u);
  EXPECT_EQ(analysis.equi_atoms[0].base_col, "SAS");
  EXPECT_EQ(analysis.equi_atoms[0].detail_col, "SAS");
  EXPECT_EQ(analysis.equi_atoms[1].base_col, "DAS");
  ASSERT_NE(analysis.residual, nullptr);
  EXPECT_EQ(analysis.residual->ToString(),
            "(r.NB >= (b.sum1 / b.cnt1))");
}

TEST(AnalysisTest, AnalyzeConditionAllEquiMeansNoResidual) {
  ExprPtr theta = Eq(RCol("g"), BCol("g"));
  ConditionAnalysis analysis = AnalyzeCondition(theta);
  EXPECT_EQ(analysis.equi_atoms.size(), 1u);
  EXPECT_EQ(analysis.residual, nullptr);
}

TEST(AnalysisTest, EqualityWithExpressionIsNotAnEquiAtom) {
  // b.a = r.b + 1 is not hash-joinable as-is.
  ExprPtr theta = Eq(BCol("a"), Add(RCol("b"), Lit(Value(1))));
  ConditionAnalysis analysis = AnalyzeCondition(theta);
  EXPECT_TRUE(analysis.equi_atoms.empty());
  ASSERT_NE(analysis.residual, nullptr);
}

TEST(AnalysisTest, ExtractSeparableComparisonNormalizesOrientation) {
  // r.C * 2 > b.X + b.Y  becomes  (b.X + b.Y) < (r.C * 2).
  ExprPtr conjunct =
      Gt(Mul(RCol("C"), Lit(Value(2))), Add(BCol("X"), BCol("Y")));
  auto sep = ExtractSeparableComparison(conjunct);
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ(sep->op, BinaryOp::kLt);
  EXPECT_FALSE(sep->base_expr->ReferencesSide(ExprSide::kDetail));
  EXPECT_FALSE(sep->detail_expr->ReferencesSide(ExprSide::kBase));
}

TEST(AnalysisTest, MixedSidesNotSeparable) {
  ExprPtr conjunct = Lt(Add(BCol("X"), RCol("C")), Lit(Value(10)));
  EXPECT_FALSE(ExtractSeparableComparison(conjunct).has_value());
}

TEST(AnalysisTest, ConstantVsConstantNotInteresting) {
  ExprPtr conjunct = Lt(Lit(Value(1)), Lit(Value(2)));
  EXPECT_FALSE(ExtractSeparableComparison(conjunct).has_value());
}

TEST(AnalysisTest, IntervalArithmetic) {
  auto range = [](const std::string& name) -> std::optional<Interval> {
    if (name == "C") return Interval{1, 25};
    if (name == "D") return Interval{-10, 10};
    return std::nullopt;
  };
  // C * 2: [2, 50] — the paper's Sect. 4.1 example.
  auto i = EvalDetailInterval(Mul(RCol("C"), Lit(Value(2))), range);
  ASSERT_TRUE(i.has_value());
  EXPECT_DOUBLE_EQ(i->lo, 2);
  EXPECT_DOUBLE_EQ(i->hi, 50);

  // C - D: [1-10, 25+10].
  i = EvalDetailInterval(Sub(RCol("C"), RCol("D")), range);
  ASSERT_TRUE(i.has_value());
  EXPECT_DOUBLE_EQ(i->lo, -9);
  EXPECT_DOUBLE_EQ(i->hi, 35);

  // D * D crosses zero: [-100, 100].
  i = EvalDetailInterval(Mul(RCol("D"), RCol("D")), range);
  ASSERT_TRUE(i.has_value());
  EXPECT_DOUBLE_EQ(i->lo, -100);
  EXPECT_DOUBLE_EQ(i->hi, 100);

  // -C: [-25, -1].
  i = EvalDetailInterval(Expr::Unary(UnaryOp::kNeg, RCol("C")), range);
  ASSERT_TRUE(i.has_value());
  EXPECT_DOUBLE_EQ(i->lo, -25);
  EXPECT_DOUBLE_EQ(i->hi, -1);

  // Division by a constant.
  i = EvalDetailInterval(Div(RCol("C"), Lit(Value(-2))), range);
  ASSERT_TRUE(i.has_value());
  EXPECT_DOUBLE_EQ(i->lo, -12.5);
  EXPECT_DOUBLE_EQ(i->hi, -0.5);

  // Unknown column, or division by a range: no interval.
  EXPECT_FALSE(EvalDetailInterval(RCol("unknown"), range).has_value());
  EXPECT_FALSE(
      EvalDetailInterval(Div(RCol("C"), RCol("D")), range).has_value());
  // Base-side columns have no detail interval.
  EXPECT_FALSE(EvalDetailInterval(BCol("X"), range).has_value());
}

TEST(AnalysisTest, Entailment) {
  ExprPtr theta = And(And(Eq(RCol("SAS"), BCol("SAS")),
                          Eq(RCol("DAS"), BCol("DAS"))),
                      Gt(RCol("NB"), Lit(Value(0))));
  EXPECT_TRUE(EntailsEquality(theta, "SAS", "SAS"));
  EXPECT_TRUE(EntailsEquality(theta, "DAS", "DAS"));
  EXPECT_FALSE(EntailsEquality(theta, "NB", "NB"));
  EXPECT_FALSE(EntailsEquality(theta, "SAS", "DAS"));
  EXPECT_TRUE(EntailsAllEqualities(
      theta, {{"SAS", "SAS"}, {"DAS", "DAS"}}));
  EXPECT_FALSE(EntailsAllEqualities(
      theta, {{"SAS", "SAS"}, {"NB", "NB"}}));
}

TEST(AnalysisTest, DisjunctionDoesNotEntail) {
  // (a-eq OR b-eq) entails neither individually.
  ExprPtr theta = Or(Eq(RCol("a"), BCol("a")), Eq(RCol("b"), BCol("b")));
  EXPECT_FALSE(EntailsEquality(theta, "a", "a"));
  EXPECT_FALSE(EntailsEquality(theta, "b", "b"));
}

TEST(AnalysisTest, SelectivityUsesColumnRangeHints) {
  auto range = [](const std::string& column) -> std::optional<Interval> {
    if (column == "v") return Interval{0.0, 100.0};
    return std::nullopt;
  };
  // v > 75 accepts the top quarter of [0, 100]; without range knowledge
  // the comparison falls back to the fixed heuristic.
  ExprPtr top_quarter = Gt(RCol("v"), Lit(Value(75.0)));
  EXPECT_NEAR(EstimateConjunctSelectivity(top_quarter, range), 0.25, 0.01);
  EXPECT_NEAR(EstimateConjunctSelectivity(top_quarter, nullptr), 0.33, 0.01);
  // Ordering: the narrow conjunct must sort before the wide one.
  ExprPtr wide = Le(RCol("v"), Lit(Value(90.0)));
  EXPECT_LT(EstimateConjunctSelectivity(top_quarter, range),
            EstimateConjunctSelectivity(wide, range));
  // Unknown columns degrade to the heuristic, never throw.
  EXPECT_NEAR(
      EstimateConjunctSelectivity(Gt(RCol("unknown"), Lit(Value(1))), range),
      0.33, 0.01);
}

TEST(AnalysisTest, NotInvertsSelectivity) {
  auto range = [](const std::string&) -> std::optional<Interval> {
    return Interval{0.0, 10.0};
  };
  ExprPtr low = Lt(RCol("v"), Lit(Value(1.0)));
  const double sel = EstimateConjunctSelectivity(low, range);
  EXPECT_NEAR(EstimateConjunctSelectivity(Not(low), range), 1.0 - sel, 1e-9);
}

}  // namespace
}  // namespace skalla
