// AsyncExecutor (pipelined GMDJDistribEval): identical results and
// transfer counts to the synchronous executor, error propagation from
// concurrent site tasks, and incremental merge correctness under
// arbitrary completion order (exercised by running many rounds).

#include "dist/async_exec.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "dist/warehouse.h"
#include "expr/builder.h"
#include "net/channel.h"
#include "storage/partition.h"

#include <thread>

namespace skalla {
namespace {

Table MakeFlow(uint64_t seed, size_t rows) {
  Random rng(seed);
  SchemaPtr schema = Schema::Make({{"SAS", ValueType::kInt64},
                                   {"DAS", ValueType::kInt64},
                                   {"NB", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendUnchecked({Value(rng.UniformInt(0, 15)),
                       Value(rng.UniformInt(0, 5)),
                       Value(rng.UniformInt(1, 400))});
  }
  return t;
}

GmdjExpr Example1() {
  GmdjExpr expr;
  expr.base = BaseQuery{"flow", {"SAS", "DAS"}, true, nullptr};
  ExprPtr group = And(Eq(RCol("SAS"), BCol("SAS")),
                      Eq(RCol("DAS"), BCol("DAS")));
  GmdjOp md1;
  md1.detail_table = "flow";
  md1.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "cnt1"}, {AggKind::kSum, "NB", "sum1"}},
      group});
  GmdjOp md2;
  md2.detail_table = "flow";
  md2.blocks.push_back(
      GmdjBlock{{{AggKind::kCountStar, "", "cnt2"}},
                And(group, Ge(RCol("NB"), Div(BCol("sum1"), BCol("cnt1"))))});
  expr.ops = {md1, md2};
  return expr;
}

std::vector<Site> MakeSites(const std::vector<Table>& parts) {
  std::vector<Site> sites;
  for (size_t i = 0; i < parts.size(); ++i) {
    Catalog catalog;
    catalog.Register("flow", parts[i]);
    sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  return sites;
}

TEST(MessageChannelTest, FifoAndBlocking) {
  MessageChannel channel;
  channel.Send(1, {10});
  channel.Send(2, {20});
  std::optional<ChannelMessage> a = channel.Receive();
  std::optional<ChannelMessage> b = channel.Receive();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->from, 1);
  EXPECT_EQ(a->bytes[0], 10);
  EXPECT_EQ(b->from, 2);
  EXPECT_EQ(channel.size(), 0u);

  // Receive blocks until a concurrent Send arrives.
  std::thread sender([&channel] {
    channel.Send(7, {77});
  });
  std::optional<ChannelMessage> c = channel.Receive();
  sender.join();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->from, 7);
}

class AsyncEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(AsyncEquivalenceTest, MatchesSyncExecutorExactly) {
  int mask = GetParam();
  OptimizerOptions opts;
  opts.coalescing = mask & 1;
  opts.indep_group_reduction = mask & 2;
  opts.aware_group_reduction = mask & 4;
  opts.sync_reduction = mask & 8;

  const size_t kSites = 6;
  Table flow = MakeFlow(71, 800);
  DistributedWarehouse dw(kSites);
  dw.AddTablePartitionedBy("flow", flow, "SAS", {"DAS", "NB"}).Check();
  GmdjExpr expr = Example1();
  DistributedPlan plan = dw.Plan(expr, opts).ValueOrDie();

  ExecStats sync_stats;
  Table sync_result = dw.ExecutePlan(plan, &sync_stats).ValueOrDie();

  std::vector<Table> parts =
      PartitionByValue(flow, "SAS", kSites).ValueOrDie();
  AsyncExecutor async(MakeSites(parts));
  ExecStats async_stats;
  Table async_result = async.Execute(plan, &async_stats).ValueOrDie();

  EXPECT_TRUE(async_result.SameRows(sync_result)) << "mask " << mask;
  // Transfer accounting is deterministic and identical.
  EXPECT_EQ(async_stats.TotalBytes(), sync_stats.TotalBytes());
  EXPECT_EQ(async_stats.TotalTuplesTransferred(),
            sync_stats.TotalTuplesTransferred());
  EXPECT_EQ(async_stats.NumSyncRounds(), sync_stats.NumSyncRounds());
  // The async executor reports real wall time per round.
  for (const RoundStats& r : async_stats.rounds) {
    EXPECT_GT(r.wall_time, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(OptMasks, AsyncEquivalenceTest,
                         ::testing::Values(0, 1, 2, 4, 8, 15));

TEST(AsyncExecutorTest, RepeatedRunsAreDeterministic) {
  // Completion order varies across runs; merged results must not.
  const size_t kSites = 5;
  Table flow = MakeFlow(73, 600);
  std::vector<Table> parts =
      PartitionRoundRobin(flow, kSites).ValueOrDie();
  DistributedWarehouse dw(kSites);
  dw.AddPartitionedTable("flow", parts, {"SAS", "DAS", "NB"}).Check();
  DistributedPlan plan =
      dw.Plan(Example1(), OptimizerOptions::None()).ValueOrDie();

  AsyncExecutor async(MakeSites(parts));
  Table first = async.Execute(plan, nullptr).ValueOrDie();
  for (int run = 0; run < 5; ++run) {
    AsyncExecutor again(MakeSites(parts));
    Table result = again.Execute(plan, nullptr).ValueOrDie();
    EXPECT_TRUE(result.SameRows(first)) << "run " << run;
  }
}

TEST(AsyncExecutorTest, SiteErrorsPropagate) {
  // Site 1's catalog is missing the detail relation: the error must
  // surface, not hang or crash.
  Table flow = MakeFlow(79, 100);
  std::vector<Table> parts = PartitionRoundRobin(flow, 3).ValueOrDie();
  std::vector<Site> sites;
  for (size_t i = 0; i < 3; ++i) {
    Catalog catalog;
    if (i != 1) catalog.Register("flow", parts[i]);
    sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  DistributedWarehouse dw(3);
  dw.AddPartitionedTable("flow", parts, {}).Check();
  DistributedPlan plan =
      dw.Plan(Example1(), OptimizerOptions::None()).ValueOrDie();

  AsyncExecutor async(std::move(sites));
  auto result = async.Execute(plan, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(AsyncExecutorTest, SingleThreadStillCorrect) {
  Table flow = MakeFlow(83, 300);
  std::vector<Table> parts = PartitionByValue(flow, "SAS", 4).ValueOrDie();
  DistributedWarehouse dw(4);
  dw.AddPartitionedTable("flow", parts, {"SAS", "DAS", "NB"}).Check();
  GmdjExpr expr = Example1();
  DistributedPlan plan =
      dw.Plan(expr, OptimizerOptions::All()).ValueOrDie();
  Table expected = dw.ExecuteCentralized(expr).ValueOrDie();

  ExecutorOptions options;
  options.num_threads = 1;
  AsyncExecutor async(MakeSites(parts), NetworkConfig{}, options);
  Table result = async.Execute(plan, nullptr).ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
}

}  // namespace
}  // namespace skalla
