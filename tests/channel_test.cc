// MessageChannel close semantics: drain-then-fail. Messages queued
// before Close are still delivered; once drained, Receive returns
// nullopt instead of blocking forever against a dead producer. This is
// the regression surface for the AsyncExecutor teardown paths, which
// Close the round channel on every exit so no site task can wedge a
// blocked coordinator.

#include "net/channel.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace skalla {
namespace {

TEST(ChannelCloseTest, QueuedMessagesDrainBeforeFailing) {
  MessageChannel channel;
  channel.Send(1, {10});
  channel.Send(2, {20});
  channel.Close();

  // Drain-then-fail: both queued messages arrive in order...
  std::optional<ChannelMessage> a = channel.Receive();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->from, 1);
  std::optional<ChannelMessage> b = channel.Receive();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->from, 2);

  // ...and only then does Receive report the closed channel.
  EXPECT_FALSE(channel.Receive().has_value());
  EXPECT_FALSE(channel.Receive().has_value());
}

TEST(ChannelCloseTest, CloseWakesABlockedReceiver) {
  MessageChannel channel;
  std::optional<ChannelMessage> received;
  std::thread receiver([&] { received = channel.Receive(); });
  // The receiver is (about to be) blocked on an empty queue; Close must
  // wake it with nullopt rather than leave it waiting forever.
  channel.Close();
  receiver.join();
  EXPECT_FALSE(received.has_value());
}

TEST(ChannelCloseTest, SendsAfterCloseAreDropped) {
  MessageChannel channel;
  channel.Close();
  channel.Send(5, {55});
  EXPECT_EQ(channel.size(), 0u);
  EXPECT_FALSE(channel.Receive().has_value());
}

TEST(ChannelCloseTest, CloseIsIdempotentAndObservable) {
  MessageChannel channel;
  EXPECT_FALSE(channel.closed());
  channel.Close();
  channel.Close();
  EXPECT_TRUE(channel.closed());
}

TEST(ChannelCloseTest, ProducerFlushThenCloseDeliversEverything) {
  // The intended teardown idiom: producers flush their final fragments,
  // the owner closes, the consumer drains to nullopt — no message lost.
  MessageChannel channel;
  const int kProducers = 4;
  const int kPerProducer = 25;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&channel, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        channel.Send(p, {static_cast<uint8_t>(i)});
      }
    });
  }
  for (std::thread& t : producers) t.join();
  channel.Close();

  int delivered = 0;
  while (channel.Receive().has_value()) ++delivered;
  EXPECT_EQ(delivered, kProducers * kPerProducer);
}

}  // namespace
}  // namespace skalla
