// Deterministic chaos soak: the query suite runs under a seeded
// ChaosInjector (request faults, response faults, dead sites) and under
// transport-level chaos in the TCP server, and every engine must produce
// exactly the result of a fault-free run — byte-identical for the
// deterministic engines (star, tree, rpc), row-set-identical for the
// async engine whose merge order is scheduling-dependent. Faults are a
// pure function of the seed, so every failure here replays exactly.

#include "dist/fault.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "dist/async_exec.h"
#include "dist/exec.h"
#include "dist/tree.h"
#include "dist/warehouse.h"
#include "expr/builder.h"
#include "net/serde.h"
#include "rpc/rpc_executor.h"
#include "rpc/server.h"
#include "rpc/site_service.h"
#include "rpc/tcp.h"
#include "rpc/transport.h"
#include "storage/partition.h"

namespace skalla {
namespace {

constexpr size_t kSites = 4;

Table MakeFlow(size_t rows) {
  Random rng(71);
  SchemaPtr schema = Schema::Make({{"SAS", ValueType::kInt64},
                                   {"NB", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendUnchecked(
        {Value(rng.UniformInt(0, 11)), Value(rng.UniformInt(1, 300))});
  }
  return t;
}

// The soak suite: every query shape the engines distinguish — multi
// stage, filtered base, and single stage.
std::vector<GmdjExpr> QuerySuite() {
  GmdjExpr two_stage;
  two_stage.base = BaseQuery{"flow", {"SAS"}, true, nullptr};
  GmdjOp md1;
  md1.detail_table = "flow";
  md1.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c"}, {AggKind::kAvg, "NB", "a"}},
      Eq(RCol("SAS"), BCol("SAS"))});
  GmdjOp md2;
  md2.detail_table = "flow";
  md2.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c2"}},
      And(Eq(RCol("SAS"), BCol("SAS")), Ge(RCol("NB"), BCol("a")))});
  two_stage.ops = {md1, md2};

  GmdjExpr filtered;
  filtered.base = BaseQuery{"flow", {"SAS"}, true,
                            Gt(RCol("NB"), Lit(Value(int64_t{50})))};
  filtered.ops = {md1};

  GmdjExpr single;
  single.base = BaseQuery{"flow", {"SAS"}, true, nullptr};
  GmdjOp sums;
  sums.detail_table = "flow";
  sums.blocks.push_back(GmdjBlock{
      {{AggKind::kSum, "NB", "s"}, {AggKind::kMax, "NB", "m"}},
      Eq(RCol("SAS"), BCol("SAS"))});
  single.ops = {sums};

  return {two_stage, filtered, single};
}

std::vector<uint8_t> TableBytes(const Table& table) {
  std::vector<uint8_t> bytes;
  WriteTable(table, &bytes);
  return bytes;
}

struct Fixture {
  Table flow = MakeFlow(400);
  std::vector<Table> parts;
  DistributedWarehouse dw{kSites};

  Fixture() {
    parts = PartitionByValue(flow, "SAS", kSites).ValueOrDie();
    std::vector<Table> copy = parts;
    dw.AddPartitionedTable("flow", std::move(copy), {"SAS", "NB"}).Check();
  }

  std::vector<Site> MakeSites() const {
    std::vector<Site> sites;
    for (size_t i = 0; i < kSites; ++i) {
      Catalog catalog;
      catalog.Register("flow", parts[i]);
      sites.emplace_back(static_cast<int>(i), std::move(catalog));
    }
    return sites;
  }

  // A replica of partition `i` under its own site id (100 + i), so chaos
  // aimed at primary ids never hits the replicas.
  Site MakeReplica(size_t i) const {
    Catalog catalog;
    catalog.Register("flow", parts[i]);
    return Site(static_cast<int>(100 + i), std::move(catalog));
  }
};

// The chaos budget and the retry budget line up: at most one fault per
// (site, round, phase) and two phases, so two retries always recover —
// except at dead sites, which exhaust retries and fail over.
ChaosConfig SoakChaos(uint64_t seed, std::vector<int> dead_sites = {}) {
  ChaosConfig config;
  config.seed = seed;
  config.before_fail_prob = 0.6;
  config.after_fail_prob = 0.4;
  config.max_faults_per_site_round = 1;
  config.dead_sites = std::move(dead_sites);
  return config;
}

ExecutorOptions SoakOptions(FaultInjector* injector) {
  ExecutorOptions options;
  options.fault_injector = injector;
  options.max_site_retries = 2;
  return options;
}

TEST(ChaosSoakTest, ScheduleIsReproducibleFromSeed) {
  Fixture fx;
  DistributedPlan plan =
      fx.dw.Plan(QuerySuite()[0], OptimizerOptions::None()).ValueOrDie();
  int64_t first_injected = -1;
  std::vector<uint8_t> first_bytes;
  for (int run = 0; run < 2; ++run) {
    ChaosInjector injector(SoakChaos(/*seed=*/17));
    DistributedExecutor executor(fx.MakeSites(), NetworkConfig{},
                                 SoakOptions(&injector));
    Table result = executor.Execute(plan, nullptr).ValueOrDie();
    if (run == 0) {
      first_injected = injector.injected();
      first_bytes = TableBytes(result);
      EXPECT_GT(first_injected, 0);
    } else {
      EXPECT_EQ(injector.injected(), first_injected);
      EXPECT_EQ(TableBytes(result), first_bytes);
    }
  }
}

TEST(ChaosSoakTest, ResetReplaysTheSameSchedule) {
  Fixture fx;
  DistributedPlan plan =
      fx.dw.Plan(QuerySuite()[0], OptimizerOptions::None()).ValueOrDie();
  ChaosInjector injector(SoakChaos(/*seed=*/17));
  DistributedExecutor executor(fx.MakeSites(), NetworkConfig{},
                               SoakOptions(&injector));
  executor.Execute(plan, nullptr).ValueOrDie();
  int64_t after_first = injector.injected();
  injector.Reset();
  executor.Execute(plan, nullptr).ValueOrDie();
  EXPECT_EQ(injector.injected() - after_first, after_first);
}

TEST(ChaosSoakTest, StarByteIdenticalUnderChaos) {
  Fixture fx;
  for (const OptimizerOptions& opts :
       {OptimizerOptions::None(), OptimizerOptions::All()}) {
    SCOPED_TRACE(opts.ToString());
    for (const GmdjExpr& query : QuerySuite()) {
      DistributedPlan plan = fx.dw.Plan(query, opts).ValueOrDie();
      DistributedExecutor clean(fx.MakeSites(), NetworkConfig{}, {});
      std::vector<uint8_t> expected =
          TableBytes(clean.Execute(plan, nullptr).ValueOrDie());
      for (uint64_t seed : {3u, 19u, 101u}) {
        SCOPED_TRACE(seed);
        ChaosInjector injector(SoakChaos(seed));
        DistributedExecutor executor(fx.MakeSites(), NetworkConfig{},
                                     SoakOptions(&injector));
        Table result = executor.Execute(plan, nullptr).ValueOrDie();
        EXPECT_EQ(TableBytes(result), expected);
      }
    }
  }
}

TEST(ChaosSoakTest, TreeByteIdenticalUnderChaos) {
  Fixture fx;
  for (const GmdjExpr& query : QuerySuite()) {
    DistributedPlan plan =
        fx.dw.Plan(query, OptimizerOptions::All()).ValueOrDie();
    TreeExecutor clean(fx.MakeSites(), CoordinatorTree::Balanced(kSites, 2),
                       NetworkConfig{}, {});
    std::vector<uint8_t> expected =
        TableBytes(clean.Execute(plan, nullptr).ValueOrDie());
    for (uint64_t seed : {3u, 19u}) {
      SCOPED_TRACE(seed);
      ChaosInjector injector(SoakChaos(seed));
      TreeExecutor executor(fx.MakeSites(),
                            CoordinatorTree::Balanced(kSites, 2),
                            NetworkConfig{}, SoakOptions(&injector));
      Table result = executor.Execute(plan, nullptr).ValueOrDie();
      EXPECT_EQ(TableBytes(result), expected);
    }
  }
}

TEST(ChaosSoakTest, AsyncSameRowsUnderChaos) {
  Fixture fx;
  for (const GmdjExpr& query : QuerySuite()) {
    DistributedPlan plan =
        fx.dw.Plan(query, OptimizerOptions::All()).ValueOrDie();
    Table expected = fx.dw.ExecuteCentralized(query).ValueOrDie();
    for (uint64_t seed : {3u, 19u}) {
      SCOPED_TRACE(seed);
      ChaosInjector injector(SoakChaos(seed));
      AsyncExecutor executor(fx.MakeSites(), NetworkConfig{},
                             SoakOptions(&injector));
      Table result = executor.Execute(plan, nullptr).ValueOrDie();
      EXPECT_TRUE(result.SameRows(expected));
    }
  }
}

TEST(ChaosSoakTest, RpcByteIdenticalUnderChaos) {
  Fixture fx;
  for (const GmdjExpr& query : QuerySuite()) {
    // None(): every round self-contained, so rpc failover stays legal.
    DistributedPlan plan =
        fx.dw.Plan(query, OptimizerOptions::None()).ValueOrDie();
    rpc::RpcExecutor clean(
        std::make_unique<rpc::InProcessTransport>(fx.MakeSites()),
        ExecutorOptions{});
    std::vector<uint8_t> expected =
        TableBytes(clean.Execute(plan, nullptr).ValueOrDie());
    for (uint64_t seed : {3u, 19u}) {
      SCOPED_TRACE(seed);
      ChaosInjector injector(SoakChaos(seed));
      rpc::RpcExecutor executor(
          std::make_unique<rpc::InProcessTransport>(fx.MakeSites()),
          SoakOptions(&injector));
      Table result = executor.Execute(plan, nullptr).ValueOrDie();
      EXPECT_EQ(TableBytes(result), expected);
    }
  }
}

TEST(ChaosSoakTest, PermanentLossWithReplicaStaysByteIdentical) {
  // The acceptance bar: transient chaos plus one permanently dead
  // primary, whose replica absorbs the round via failover.
  Fixture fx;
  for (const GmdjExpr& query : QuerySuite()) {
    DistributedPlan plan =
        fx.dw.Plan(query, OptimizerOptions::None()).ValueOrDie();
    DistributedExecutor clean(fx.MakeSites(), NetworkConfig{}, {});
    std::vector<uint8_t> expected =
        TableBytes(clean.Execute(plan, nullptr).ValueOrDie());
    ChaosInjector injector(SoakChaos(/*seed=*/43, /*dead_sites=*/{2}));
    DistributedExecutor executor(fx.MakeSites(), NetworkConfig{},
                                 SoakOptions(&injector));
    for (size_t i = 0; i < kSites; ++i) {
      executor.AddReplica(i, fx.MakeReplica(i));
    }
    ExecStats stats;
    Table result = executor.Execute(plan, &stats).ValueOrDie();
    EXPECT_EQ(TableBytes(result), expected);
    EXPECT_GT(stats.TotalSiteFailovers(), 0u);
    EXPECT_TRUE(stats.complete());
  }
}

TEST(ChaosSoakTest, RpcPermanentLossFailsOverToReplicaEndpoint) {
  Fixture fx;
  DistributedPlan plan =
      fx.dw.Plan(QuerySuite()[0], OptimizerOptions::None()).ValueOrDie();
  rpc::RpcExecutor clean(
      std::make_unique<rpc::InProcessTransport>(fx.MakeSites()),
      ExecutorOptions{});
  std::vector<uint8_t> expected =
      TableBytes(clean.Execute(plan, nullptr).ValueOrDie());

  // Endpoints 4..7 are replica processes hosting partitions 0..3.
  std::vector<Site> sites = fx.MakeSites();
  for (size_t i = 0; i < kSites; ++i) {
    Catalog catalog;
    catalog.Register("flow", fx.parts[i]);
    sites.emplace_back(static_cast<int>(kSites + i), std::move(catalog));
  }
  ChaosInjector injector(SoakChaos(/*seed=*/43, /*dead_sites=*/{2}));
  rpc::RpcExecutor executor(
      std::make_unique<rpc::InProcessTransport>(std::move(sites)),
      SoakOptions(&injector));
  for (size_t i = 0; i < kSites; ++i) {
    executor.AddReplica(i, kSites + i);
  }
  ExecStats stats;
  Table result = executor.Execute(plan, &stats).ValueOrDie();
  EXPECT_EQ(TableBytes(result), expected);
  EXPECT_GT(stats.TotalSiteFailovers(), 0u);
}

TEST(ChaosSoakTest, UnreplicatedLossDegradesAndReportsTheSite) {
  Fixture fx;
  DistributedPlan plan =
      fx.dw.Plan(QuerySuite()[0], OptimizerOptions::None()).ValueOrDie();
  ChaosInjector injector(SoakChaos(/*seed=*/7, /*dead_sites=*/{2}));
  ExecutorOptions options = SoakOptions(&injector);
  options.on_site_loss = OnSiteLoss::kDegrade;
  DistributedExecutor executor(fx.MakeSites(), NetworkConfig{}, options);
  ExecStats stats;
  Table result = executor.Execute(plan, &stats).ValueOrDie();
  EXPECT_GT(result.num_rows(), 0u);
  EXPECT_FALSE(stats.complete());
  ASSERT_EQ(stats.lost_sites.size(), 1u);
  EXPECT_EQ(stats.lost_sites[0], 2);
}

// ---- Transport-level chaos over real sockets -----------------------------

/// Site servers on loopback with seeded transport chaos enabled.
class ChaosCluster {
 public:
  ChaosCluster(std::vector<Site> sites, uint64_t seed) {
    for (size_t i = 0; i < sites.size(); ++i) {
      services_.push_back(
          std::make_unique<rpc::SiteService>(std::move(sites[i])));
      rpc::SiteServerOptions options;
      options.accept_timeout_s = 0.05;
      options.io_timeout_s = 5.0;
      // Distinct per-server seeds so the fleet's fault mix varies.
      options.chaos.seed = seed + i;
      options.chaos.drop_response_prob = 0.2;
      options.chaos.corrupt_crc_prob = 0.15;
      options.chaos.reset_midframe_prob = 0.15;
      options.chaos.delay_prob = 0.2;
      options.chaos.delay_ms = 2;
      servers_.push_back(
          std::make_unique<rpc::SiteServer>(services_.back().get(), options));
      servers_.back()->Start().Check();
      threads_.emplace_back([this, i] { (void)servers_[i]->Serve(); });
    }
  }

  ~ChaosCluster() {
    for (auto& server : servers_) server->Stop();
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  std::vector<rpc::SiteEndpoint> endpoints() const {
    std::vector<rpc::SiteEndpoint> out;
    for (const auto& server : servers_) {
      out.push_back({"127.0.0.1", server->port()});
    }
    return out;
  }

  int total_faults() const {
    int total = 0;
    for (const auto& server : servers_) {
      total += server->chaos_faults_injected();
    }
    return total;
  }

 private:
  std::vector<std::unique_ptr<rpc::SiteService>> services_;
  std::vector<std::unique_ptr<rpc::SiteServer>> servers_;
  std::vector<std::thread> threads_;
};

TEST(ChaosSoakTest, TcpTransportChaosIsSurvivedByteIdentically) {
  Fixture fx;
  int faults_seen = 0;
  for (const OptimizerOptions& opts :
       {OptimizerOptions::None(), OptimizerOptions::All()}) {
    SCOPED_TRACE(opts.ToString());
    DistributedPlan plan = fx.dw.Plan(QuerySuite()[0], opts).ValueOrDie();
    DistributedExecutor star(fx.MakeSites(), NetworkConfig{}, {});
    std::vector<uint8_t> expected =
        TableBytes(star.Execute(plan, nullptr).ValueOrDie());

    ChaosCluster cluster(fx.MakeSites(), /*seed=*/29);
    rpc::TcpOptions tcp;
    tcp.connect_timeout_s = 5.0;
    tcp.io_timeout_s = 5.0;
    tcp.backoff_initial_s = 0.005;
    ExecutorOptions options;
    options.max_site_retries = 2;
    rpc::RpcExecutor executor(
        std::make_unique<rpc::TcpTransport>(cluster.endpoints(), tcp),
        options);
    auto result = executor.Execute(plan, nullptr);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(TableBytes(*result), expected);
    faults_seen += cluster.total_faults();
  }
  // The seed is chosen so the schedule actually bites; a zero here means
  // the chaos hooks silently stopped firing.
  EXPECT_GT(faults_seen, 0);
}

}  // namespace
}  // namespace skalla
