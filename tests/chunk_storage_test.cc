// The disk-backed storage subsystem end to end: chunk file round trips,
// CRC corruption detection, byte-identical chunk-paged evaluation at any
// buffer budget, chunked warehouse save/load, and storage-reload data
// epochs.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/local_eval.h"
#include "data/tpcr_gen.h"
#include "dist/warehouse.h"
#include "net/serde.h"
#include "sql/parser.h"
#include "storage/chunk_file.h"
#include "storage/data_provider.h"
#include "storage/partition.h"

namespace skalla {
namespace {

Table MakeDetail(int64_t salt, size_t rows = 900) {
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"name", ValueType::kString},
                                   {"v", ValueType::kFloat64}})
                         .ValueOrDie();
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    int64_t n = salt + static_cast<int64_t>(i);
    t.AppendUnchecked({Value(n % 13), Value("name-" + std::to_string(n % 7)),
                       Value(static_cast<double>(n % 101) / 4.0)});
  }
  return t;
}

std::vector<uint8_t> TableBytes(const Table& t) {
  std::vector<uint8_t> bytes;
  WriteTable(t, &bytes);
  return bytes;
}

GmdjExpr TestQuery() {
  return ParseQuery(R"(
    BASE SELECT DISTINCT g FROM d;
    MD USING d COMPUTE COUNT(*) AS c, SUM(v) AS s, MIN(v) AS lo
       WHERE r.g = b.g;
    MD USING d COMPUTE COUNT(*) AS above
       WHERE r.g = b.g AND r.v >= b.s / b.c;
  )").ValueOrDie();
}

class ChunkStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/skalla_chunk_storage_test";
    mkdir(dir_.c_str(), 0755);
  }

  std::string Path(const std::string& file) { return dir_ + "/" + file; }

  std::string dir_;
};

TEST_F(ChunkStorageTest, ChunkFileRoundTrip) {
  Table original = MakeDetail(5);
  const std::string path = Path("roundtrip.skc");
  WriteChunkFile(original, path, /*chunk_rows=*/128).Check();

  auto file = ChunkFile::Open(path).ValueOrDie();
  EXPECT_EQ(file->num_rows(), original.num_rows());
  EXPECT_EQ(file->num_chunks(), (original.num_rows() + 127) / 128);

  // Boxing every chunk row reproduces the table exactly, in order.
  Table rebuilt(file->schema());
  for (size_t c = 0; c < file->num_chunks(); ++c) {
    ChunkPtr chunk = file->ReadChunk(c).ValueOrDie();
    EXPECT_EQ(chunk->row_begin(), c * 128);
    for (size_t r = 0; r < chunk->num_rows(); ++r) {
      rebuilt.AppendUnchecked(chunk->row(r));
    }
  }
  EXPECT_EQ(TableBytes(rebuilt), TableBytes(original));

  // Numeric column stats survive the round trip.
  ChunkPtr first = file->ReadChunk(0).ValueOrDie();
  const ChunkColumnStats& g_stats = first->column_stats(0);
  EXPECT_TRUE(g_stats.has_range);
  EXPECT_GE(g_stats.min, 0.0);
  EXPECT_LE(g_stats.max, 12.0);
  EXPECT_FALSE(first->column_stats(1).has_range);  // string column
}

TEST_F(ChunkStorageTest, CorruptionIsDetected) {
  Table original = MakeDetail(9, 300);
  const std::string path = Path("corrupt.skc");
  WriteChunkFile(original, path, /*chunk_rows=*/100).Check();
  auto clean = ChunkFile::Open(path).ValueOrDie();
  const ChunkEntry& target = clean->entry(1);

  // Flip one payload byte: that chunk (and only that chunk) fails CRC.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(target.offset + target.length / 2));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(target.offset + target.length / 2));
    f.write(&byte, 1);
  }
  auto damaged = ChunkFile::Open(path).ValueOrDie();  // footer still fine
  EXPECT_TRUE(damaged->ReadChunk(0).ok());
  EXPECT_TRUE(damaged->ReadChunk(1).status().IsIOError());

  // Truncate into the footer: the file no longer opens at all.
  const std::string truncated = Path("truncated.skc");
  WriteChunkFile(original, truncated, /*chunk_rows=*/100).Check();
  {
    std::ifstream in(truncated, std::ios::binary | std::ios::ate);
    auto size = static_cast<size_t>(in.tellg());
    in.seekg(0);
    std::vector<char> bytes(size - 6);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    std::ofstream out(truncated, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(ChunkFile::Open(truncated).ok());
}

// The tentpole contract: evaluating through a paged provider is
// byte-identical to in-memory evaluation at every buffer budget — even
// one so small every pin evicts something.
TEST_F(ChunkStorageTest, ChunkPagedEvalIsByteIdenticalAtAnyBudget) {
  Table detail = MakeDetail(3);
  const std::string path = Path("eval.skc");
  WriteChunkFile(detail, path, /*chunk_rows=*/64).Check();

  Catalog eager;
  eager.Register("d", detail);
  GmdjExpr query = TestQuery();
  const std::vector<uint8_t> expected =
      TableBytes(EvalCentralized(query, eager).ValueOrDie());

  const uint64_t chunk_bytes =
      Chunk::Build(detail, 0, 64).ValueOrDie()->byte_size();
  for (uint64_t budget : {uint64_t{1}, chunk_bytes * 3, uint64_t{0}}) {
    auto buffers = std::make_shared<BufferManager>(budget);
    Catalog paged;
    paged.RegisterProvider(
        "d", ChunkFileDataProvider::Open(path, buffers).ValueOrDie());
    EXPECT_TRUE(paged.IsChunkBacked("d"));

    Table got = EvalCentralized(query, paged).ValueOrDie();
    EXPECT_EQ(TableBytes(got), expected) << "budget=" << budget;

    BufferStats stats = buffers->stats();
    EXPECT_GT(stats.misses, 0u) << "budget=" << budget;
    if (budget == 1) {
      // Nothing fits: every release evicts, nothing stays resident.
      EXPECT_GT(stats.evictions, 0u);
      EXPECT_LE(stats.resident_bytes, budget);
    }
  }
}

// The oracle (nested-loop) path must match too, at a pathological
// budget.
TEST_F(ChunkStorageTest, NestedLoopChunkedMatchesResident) {
  Table detail = MakeDetail(11, 400);
  const std::string path = Path("oracle.skc");
  WriteChunkFile(detail, path, /*chunk_rows=*/53).Check();

  Catalog eager;
  eager.Register("d", detail);
  EvalContext oracle;
  oracle.use_index = false;
  GmdjExpr query = TestQuery();
  const std::vector<uint8_t> expected =
      TableBytes(EvalCentralized(query, eager, oracle).ValueOrDie());

  auto buffers = std::make_shared<BufferManager>(1);
  Catalog paged;
  paged.RegisterProvider(
      "d", ChunkFileDataProvider::Open(path, buffers).ValueOrDie());
  EXPECT_EQ(TableBytes(EvalCentralized(query, paged, oracle).ValueOrDie()),
            expected);
}

TEST_F(ChunkStorageTest, ChunkedWarehouseRoundTripAndReload) {
  TpcrConfig config;
  config.num_rows = 2000;
  config.num_customers = 120;
  config.num_clerks = 9;
  Table tpcr = GenerateTpcr(config);

  DistributedWarehouse eager(3);
  eager
      .AddTablePartitionedBy("tpcr", tpcr, "NationKey",
                             {"CustKey", "Clerk", "Quantity"})
      .Check();
  eager.SaveChunked(dir_, /*chunk_rows=*/256).Check();

  GmdjExpr query = ParseQuery(R"(
    BASE SELECT DISTINCT Clerk FROM tpcr;
    MD USING tpcr COMPUTE COUNT(*) AS c, SUM(Quantity) AS q
       WHERE r.Clerk = b.Clerk;
  )").ValueOrDie();
  ExecStats eager_stats;
  Table expected =
      eager.Execute(query, OptimizerOptions::All(), &eager_stats)
          .ValueOrDie();

  // Load with a budget far below any partition: the whole pipeline runs
  // paged and still matches the eager warehouse byte for byte, with the
  // same plan economics (STATS preserved the distribution knowledge).
  StorageOptions storage;
  storage.buffer_bytes = 64 * 1024;
  DistributedWarehouse lazy =
      DistributedWarehouse::Load(dir_, {}, {}, storage).ValueOrDie();
  EXPECT_EQ(lazy.num_sites(), 3u);
  EXPECT_NE(lazy.buffer_manager(), nullptr);
  ASSERT_NE(lazy.partition_info("tpcr"), nullptr);
  EXPECT_TRUE(
      lazy.partition_info("tpcr")->IsPartitionAttribute("NationKey"));

  ExecStats lazy_stats;
  Table got =
      lazy.Execute(query, OptimizerOptions::All(), &lazy_stats).ValueOrDie();
  EXPECT_EQ(TableBytes(got), TableBytes(expected));
  EXPECT_EQ(lazy_stats.TotalBytes(), eager_stats.TotalBytes());
  EXPECT_EQ(lazy_stats.NumSyncRounds(), eager_stats.NumSyncRounds());

  // Centralized reference evaluation pages through the concatenated
  // providers and matches too.
  EXPECT_EQ(TableBytes(lazy.ExecuteCentralized(query).ValueOrDie()),
            TableBytes(eager.ExecuteCentralized(query).ValueOrDie()));

  // ReloadTable re-opens the chunk files and bumps the data epoch.
  EXPECT_EQ(lazy.data_epoch(), 0u);
  lazy.ReloadTable("tpcr").Check();
  EXPECT_EQ(lazy.data_epoch(), 1u);
  EXPECT_EQ(TableBytes(lazy.ExecuteCentralized(query).ValueOrDie()),
            TableBytes(eager.ExecuteCentralized(query).ValueOrDie()));

  EXPECT_TRUE(lazy.ReloadTable("nope").IsNotFound());
  DistributedWarehouse resident(2);
  EXPECT_TRUE(resident.ReloadTable("tpcr").IsFailedPrecondition());
}

TEST_F(ChunkStorageTest, LoadSiteCatalogServesChunkedPartitions) {
  Table detail = MakeDetail(21, 500);
  DistributedWarehouse dw(2);
  dw.AddTablePartitionedBy("d", detail, "g").Check();
  dw.SaveChunked(dir_, /*chunk_rows=*/64).Check();

  StorageOptions storage;
  storage.buffer_bytes = 1;  // pathological: page everything
  Catalog site0 = LoadSiteCatalog(dir_, 0, storage).ValueOrDie();
  EXPECT_TRUE(site0.IsChunkBacked("d"));
  // Get() refuses chunk-backed entries; the provider path serves them.
  EXPECT_TRUE(site0.Get("d").status().IsFailedPrecondition());

  // A base query over the paged partition matches the resident one.
  Catalog eager0;
  {
    auto parts = PartitionByValue(detail, "g", 2).ValueOrDie();
    eager0.Register("d", std::move(parts[0]));
  }
  BaseQuery query;
  query.table = "d";
  query.columns = {"g"};
  query.distinct = true;
  EXPECT_EQ(TableBytes(query.Execute(site0).ValueOrDie()),
            TableBytes(query.Execute(eager0).ValueOrDie()));
}

}  // namespace
}  // namespace skalla
