// Columnar storage and the vectorized GMDJ evaluator: exact agreement
// with the row engine across random data (including NULLs), engine
// routing through core::EvaluateGmdj, and end-to-end distributed
// execution on columnar sites.

#include <gtest/gtest.h>

#include "columnar/column_table.h"
#include "columnar/predicate_eval.h"
#include "columnar/vector_eval.h"
#include "common/random.h"
#include "core/evaluate.h"
#include "dist/warehouse.h"
#include "expr/builder.h"
#include "relalg/operators.h"
#include "storage/catalog.h"

namespace skalla {
namespace {

Table MakeDetail(uint64_t seed, size_t rows) {
  Random rng(seed);
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"h", ValueType::kString},
                                   {"iv", ValueType::kInt64},
                                   {"dv", ValueType::kFloat64}})
                         .ValueOrDie();
  const char* labels[] = {"x", "y", "z"};
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    Row row = {Value(rng.UniformInt(0, 7)),
               Value(std::string(labels[rng.Uniform(3)])),
               Value(rng.UniformInt(-50, 50)),
               Value(rng.NextDouble() * 10 - 5)};
    if (rng.Bernoulli(0.1)) row[2] = Value::Null();
    if (rng.Bernoulli(0.1)) row[3] = Value::Null();
    t.AppendUnchecked(std::move(row));
  }
  return t;
}

TEST(ColumnTest, TypedStorageAndBoxing) {
  Column c(ValueType::kInt64);
  c.Append(Value(42)).Check();
  c.Append(Value::Null()).Check();
  c.Append(Value(7.0)).Check();  // Integral double is fine.
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.Int64At(0), 42);
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_EQ(c.Int64At(2), 7);
  EXPECT_TRUE(c.GetValue(1).is_null());
  EXPECT_EQ(c.GetValue(0).int64(), 42);

  EXPECT_TRUE(c.Append(Value(2.5)).IsTypeError());
  EXPECT_TRUE(c.Append(Value("no")).IsTypeError());

  Column s(ValueType::kString);
  s.Append(Value("abc")).Check();
  EXPECT_TRUE(s.Append(Value(1)).IsTypeError());
  EXPECT_EQ(s.StringAt(0), "abc");
}

TEST(ColumnTest, HashMatchesValueHash) {
  Column i(ValueType::kInt64);
  i.Append(Value(99)).Check();
  i.Append(Value::Null()).Check();
  EXPECT_EQ(i.HashAt(0), Value(99).Hash());
  EXPECT_EQ(i.HashAt(1), Value::Null().Hash());
  Column d(ValueType::kFloat64);
  d.Append(Value(99.0)).Check();
  d.Append(Value(2.5)).Check();
  EXPECT_EQ(d.HashAt(0), Value(99).Hash());  // Integral double == int.
  EXPECT_EQ(d.HashAt(1), Value(2.5).Hash());
  Column s(ValueType::kString);
  s.Append(Value("k")).Check();
  EXPECT_EQ(s.HashAt(0), Value("k").Hash());
}

TEST(ColumnTableTest, RoundTrip) {
  Table t = MakeDetail(1, 200);
  ColumnTable ct = ColumnTable::FromRowTable(t).ValueOrDie();
  EXPECT_EQ(ct.num_rows(), 200u);
  EXPECT_EQ(ct.num_columns(), 4u);
  Table back = ct.ToRowTable();
  EXPECT_TRUE(back.SameRows(t));
}

TEST(ColumnTableTest, RejectsUntypedColumns) {
  SchemaPtr schema = Schema::Make({{"x", ValueType::kNull}}).ValueOrDie();
  Table t(schema);
  EXPECT_TRUE(ColumnTable::FromRowTable(t).status().IsTypeError());
}

TEST(EvaluateGmdjTest, EngineRoutingAndReporting) {
  Table detail = MakeDetail(5, 120);
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  Catalog catalog;
  catalog.Register("d", detail);
  GmdjOp op;
  op.detail_table = "d";
  op.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c"}, {AggKind::kSum, "iv", "s"}},
      And(Eq(RCol("g"), BCol("g")), Gt(RCol("iv"), Lit(Value(0))))});

  auto run = [&](EvalEngine engine, bool use_index) {
    EvalProfile profile;
    EvalContext context;
    context.engine = engine;
    context.use_index = use_index;
    context.profile = &profile;
    Table out = EvaluateGmdj(base, op, catalog, context).ValueOrDie();
    return std::make_pair(std::move(out),
                          profile.engines_used.load());
  };

  // kRow always runs the row engine; kColumnar the columnar kernels
  // (over the provider's lazily built chunks — no warm needed).
  auto [row_out, row_bits] = run(EvalEngine::kRow, true);
  EXPECT_EQ(row_bits, kEngineBitRow);
  auto [col_out, col_bits] = run(EvalEngine::kColumnar, true);
  EXPECT_EQ(col_bits, kEngineBitColumnar);
  EXPECT_TRUE(col_out.SameRows(row_out));

  // kAuto on a resident, unwarmed relation keeps the row engine...
  EXPECT_EQ(run(EvalEngine::kAuto, true).second, kEngineBitRow);
  // ...and flips to columnar once the catalog is warmed.
  catalog.WarmColumnar().Check();
  ASSERT_NE(catalog.Columnar("d"), nullptr);
  auto [auto_out, auto_bits] = run(EvalEngine::kAuto, true);
  EXPECT_EQ(auto_bits, kEngineBitColumnar);
  EXPECT_TRUE(auto_out.SameRows(row_out));

  // use_index = false has no columnar mode: every engine setting falls
  // back to the row engine transparently and reports it.
  for (EvalEngine engine :
       {EvalEngine::kAuto, EvalEngine::kRow, EvalEngine::kColumnar}) {
    auto [oracle_out, oracle_bits] = run(engine, false);
    EXPECT_EQ(oracle_bits, kEngineBitRow);
    EXPECT_TRUE(oracle_out.SameRows(row_out));
  }
}

class VectorEvalEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(VectorEvalEquivalenceTest, MatchesRowEngine) {
  Table detail = MakeDetail(GetParam(), 150 + GetParam() * 13);
  ColumnTable columnar = ColumnTable::FromRowTable(detail).ValueOrDie();
  Table base = Project(detail, {"g", "h"}, true).ValueOrDie();
  // Add a base row with no matches.
  base.AppendUnchecked({Value(int64_t{999}), Value("none")});

  GmdjOp op;
  op.detail_table = "d";
  ExprPtr theta = And(Eq(RCol("g"), BCol("g")), Eq(RCol("h"), BCol("h")));
  op.blocks.push_back(GmdjBlock{{{AggKind::kCountStar, "", "c"},
                                 {AggKind::kCount, "iv", "ci"},
                                 {AggKind::kSum, "iv", "si"},
                                 {AggKind::kSum, "dv", "sd"},
                                 {AggKind::kAvg, "iv", "ai"},
                                 {AggKind::kMin, "dv", "lo"},
                                 {AggKind::kMax, "iv", "hi"},
                                 {AggKind::kVarPop, "iv", "vp"},
                                 {AggKind::kStdDevPop, "iv", "sp"}},
                                theta});
  op.blocks.push_back(
      GmdjBlock{{{AggKind::kCountStar, "", "per_g"}},
                Eq(RCol("g"), BCol("g"))});

  for (bool sub : {false, true}) {
    for (bool rng : {false, true}) {
      EvalContext options;
      options.sub_aggregates = sub;
      options.compute_rng = rng;
      Table row_result = EvalGmdj(base, detail, op, options).ValueOrDie();
      Table col_result =
          EvalGmdjColumnar(base, columnar, op, options).ValueOrDie();
      EXPECT_TRUE(col_result.SameRows(row_result))
          << "sub=" << sub << " rng=" << rng << "\nrow:\n"
          << row_result.ToString(40) << "columnar:\n"
          << col_result.ToString(40);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorEvalEquivalenceTest,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

TEST(VectorEvalTest, ResidualConjunctsMatchRowEngine) {
  Table detail = MakeDetail(3, 50);
  ColumnTable columnar = ColumnTable::FromRowTable(detail).ValueOrDie();
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  GmdjOp op;
  op.detail_table = "d";
  op.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c"}},
      And(Eq(RCol("g"), BCol("g")), Gt(RCol("iv"), Lit(Value(0))))});
  Table row_result = EvalGmdj(base, detail, op).ValueOrDie();
  Table col_result = EvalGmdjColumnar(base, columnar, op).ValueOrDie();
  EXPECT_TRUE(col_result.SameRows(row_result));
}

TEST(VectorEvalTest, RejectsNestedLoopOracleMode) {
  // The direct kernel entry point has no nested-loop mode; only
  // core::EvaluateGmdj performs the transparent row fallback.
  Table detail = MakeDetail(3, 50);
  ColumnTable columnar = ColumnTable::FromRowTable(detail).ValueOrDie();
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  GmdjOp op;
  op.detail_table = "d";
  op.blocks.push_back(GmdjBlock{{{AggKind::kCountStar, "", "c"}},
                                Eq(RCol("g"), BCol("g"))});
  EvalContext context;
  context.use_index = false;
  auto result = EvalGmdjColumnar(base, columnar, op, context);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(PredicateCompileTest, PartitionInfoSuppliesRangeHints) {
  // A site's ColumnDistribution [min, max] flows through
  // ColRangeFromPartition into conjunct selectivity ordering.
  PartitionInfo info(2);
  ColumnDistribution iv;
  iv.min = 0.0;
  iv.max = 100.0;
  info.SetDistribution(0, "iv", iv);
  auto hints = ColRangeFromPartition(info, 0);
  ASSERT_TRUE(hints("iv").has_value());
  EXPECT_EQ(hints("iv")->lo, 0.0);
  EXPECT_EQ(hints("iv")->hi, 100.0);
  EXPECT_FALSE(hints("missing").has_value());
  // Site 1 recorded nothing.
  EXPECT_FALSE(ColRangeFromPartition(info, 1)("iv").has_value());

  // With the hint, `iv > 95` (accepts 5%) must order before `iv > 10`
  // (accepts 90%) in the compiled predicate.
  SchemaPtr detail_schema = Schema::Make({{"g", ValueType::kInt64},
                                          {"iv", ValueType::kInt64}})
                                .ValueOrDie();
  SchemaPtr base_schema =
      Schema::Make({{"g", ValueType::kInt64}}).ValueOrDie();
  ExprPtr theta = And(And(Eq(RCol("g"), BCol("g")),
                          Gt(RCol("iv"), Lit(Value(int64_t{10})))),
                      Gt(RCol("iv"), Lit(Value(int64_t{95}))));
  CompiledPredicate pred =
      CompilePredicate(ClassifyCondition(theta), *base_schema, *detail_schema,
                       hints)
          .ValueOrDie();
  ASSERT_EQ(pred.detail.size(), 2u);
  EXPECT_EQ(pred.detail[0].ilit, 95);
  EXPECT_EQ(pred.detail[1].ilit, 10);
  EXPECT_LT(pred.detail[0].selectivity, pred.detail[1].selectivity);
}

TEST(ColumnarSitesTest, DistributedExecutionMatches) {
  Table detail = MakeDetail(17, 900);
  ExecutorOptions columnar_options;
  columnar_options.columnar_sites = true;
  DistributedWarehouse row_dw(4);
  DistributedWarehouse col_dw(4, NetworkConfig{}, columnar_options);
  row_dw.AddTablePartitionedBy("d", detail, "g", {"h", "iv"}).Check();
  col_dw.AddTablePartitionedBy("d", detail, "g", {"h", "iv"}).Check();

  // Mixed query: md1 pure equality (grouped kernels at the sites), md2
  // correlated (candidate-filter kernels) — both vectorized now.
  GmdjExpr expr;
  expr.base = BaseQuery{"d", {"g"}, true, nullptr};
  GmdjOp md1;
  md1.detail_table = "d";
  md1.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c1"}, {AggKind::kSum, "iv", "s1"}},
      Eq(RCol("g"), BCol("g"))});
  GmdjOp md2;
  md2.detail_table = "d";
  md2.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c2"}},
      And(Eq(RCol("g"), BCol("g")), Ge(RCol("iv"), BCol("s1")))});
  expr.ops = {md1, md2};

  for (const OptimizerOptions& opts :
       {OptimizerOptions::None(), OptimizerOptions::All()}) {
    Table row_result = row_dw.Execute(expr, opts).ValueOrDie();
    Table col_result = col_dw.Execute(expr, opts).ValueOrDie();
    EXPECT_TRUE(col_result.SameRows(row_result))
        << "opts=" << opts.ToString();
  }
}

}  // namespace
}  // namespace skalla
