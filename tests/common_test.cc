// Common runtime: random, hashing, string utilities, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace skalla {
namespace {

TEST(RandomTest, DeterministicPerSeed) {
  Random a(1);
  Random b(1);
  Random c(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Random a2(1);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(RandomTest, UniformRespectsBounds) {
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, ZipfSkewsLow) {
  Random rng(5);
  size_t low = 0;
  const int kSamples = 5000;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t v = rng.Zipf(1000, 1.1);
    EXPECT_LT(v, 1000u);
    if (v < 10) ++low;
  }
  // With heavy skew, the first 1% of values should get far more than 1%
  // of the mass.
  EXPECT_GT(low, kSamples / 10);
}

TEST(RandomTest, BernoulliEdgeCases) {
  Random rng(6);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 2000; ++i) heads += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / 2000.0, 0.25, 0.05);
}

TEST(RandomTest, ShuffleIsAPermutation) {
  Random rng(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(HashTest, BasicProperties) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));  // Order sensitive.
  EXPECT_NE(Mix64(0), Mix64(1));
}

TEST(StringUtilTest, StrPrintfAndStrCat) {
  EXPECT_EQ(StrPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrPrintf("%s", std::string(500, 'y').c_str()).size(), 500u);
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Split("abc", ',').size(), 1u);
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("Select", "sELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("Select", "Selec"));
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  // Reusable after Wait.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch timer;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  double t1 = timer.ElapsedSeconds();
  EXPECT_GT(t1, 0.0);
  timer.Reset();
  EXPECT_LE(timer.ElapsedSeconds(), t1 + 1.0);
  EXPECT_GE(timer.ElapsedMicros(), 0);
}

}  // namespace
}  // namespace skalla
