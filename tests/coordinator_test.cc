// Coordinator synchronization per Theorem 1: merging site fragments of
// sub-aggregates reproduces the direct evaluation, incrementally and in
// any arrival order.

#include "dist/coordinator.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/random.h"
#include "core/local_eval.h"
#include "expr/builder.h"
#include "relalg/operators.h"
#include "storage/partition.h"
#include "types/row.h"

namespace skalla {
namespace {

Table MakeDetail(uint64_t seed, size_t rows) {
  Random rng(seed);
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"v", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendUnchecked(
        {Value(rng.UniformInt(0, 9)), Value(rng.UniformInt(-50, 50))});
  }
  return t;
}

GmdjOp TestOp() {
  GmdjOp op;
  op.detail_table = "d";
  op.blocks.push_back(GmdjBlock{{{AggKind::kCountStar, "", "c"},
                                 {AggKind::kSum, "v", "s"},
                                 {AggKind::kAvg, "v", "a"},
                                 {AggKind::kMin, "v", "lo"},
                                 {AggKind::kMax, "v", "hi"}},
                                Eq(RCol("g"), BCol("g"))});
  return op;
}

// Row-for-row equality including order.
bool ExactlyEqual(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    if (!RowEquals(a.row(r), b.row(r))) return false;
  }
  return true;
}

// Theorem 1, end to end at the coordinator level: partition R, compute
// sub-aggregate fragments per partition, merge in random order (with a
// sequential and a sharded coordinator), compare with direct full
// evaluation.
class Theorem1Test
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(Theorem1Test, MergedFragmentsEqualDirectEvaluation) {
  auto [seed, num_shards] = GetParam();
  Random rng(seed);
  Table detail = MakeDetail(seed * 977 + 1, 150 + rng.Uniform(200));
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  GmdjOp op = TestOp();

  Table expected = EvalGmdj(base, detail, op).ValueOrDie();

  size_t n = 1 + rng.Uniform(5);
  std::vector<Table> partitions =
      PartitionRoundRobin(detail, n).ValueOrDie();

  EvalContext sub;
  sub.sub_aggregates = true;
  std::vector<Table> fragments;
  for (const Table& part : partitions) {
    fragments.push_back(EvalGmdj(base, part, op, sub).ValueOrDie());
  }
  rng.Shuffle(&fragments);

  Coordinator coordinator({"g"}, num_shards);
  coordinator.SetResult(base);
  coordinator
      .BeginRound(op, *base.schema(), *detail.schema(),
                  /*from_scratch=*/false)
      .Check();
  for (const Table& fragment : fragments) {
    coordinator.MergeFragment(fragment).Check();
  }
  coordinator.FinalizeRound().Check();

  EXPECT_TRUE(coordinator.result().SameRows(expected))
      << "merged:\n"
      << coordinator.result().ToString(30) << "direct:\n"
      << expected.ToString(30);

  if (num_shards > 1) {
    // The sharded merge must reproduce the sequential merge exactly,
    // including row order.
    Coordinator sequential({"g"});
    sequential.SetResult(base);
    sequential
        .BeginRound(op, *base.schema(), *detail.schema(),
                    /*from_scratch=*/false)
        .Check();
    for (const Table& fragment : fragments) {
      sequential.MergeFragment(fragment).Check();
    }
    sequential.FinalizeRound().Check();
    EXPECT_TRUE(ExactlyEqual(coordinator.result(), sequential.result()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndShards, Theorem1Test,
    ::testing::Combine(::testing::Range(uint64_t{0}, uint64_t{15}),
                       ::testing::Values(size_t{1}, size_t{4})));

TEST(CoordinatorTest, BaseFragmentsDeduplicate) {
  Coordinator coordinator({"g"});
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64}}).ValueOrDie();
  coordinator.InitBase(schema).Check();
  Table f1(schema);
  f1.AppendUnchecked({Value(1)});
  f1.AppendUnchecked({Value(2)});
  Table f2(schema);
  f2.AppendUnchecked({Value(2)});
  f2.AppendUnchecked({Value(3)});
  coordinator.MergeBaseFragment(f1).Check();
  coordinator.MergeBaseFragment(f2).Check();
  coordinator.FinalizeBase().Check();
  EXPECT_EQ(coordinator.result().num_rows(), 3u);
  // The base round is over; a second finalize is a protocol violation.
  EXPECT_TRUE(coordinator.FinalizeBase().IsInternal());
}

TEST(CoordinatorTest, ShardedBaseDedupMatchesSequential) {
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"h", ValueType::kInt64}})
                         .ValueOrDie();
  Random rng(7);
  std::vector<Table> fragments;
  for (int f = 0; f < 4; ++f) {
    Table t(schema);
    for (int r = 0; r < 40; ++r) {
      t.AppendUnchecked(
          {Value(rng.UniformInt(0, 9)), Value(rng.UniformInt(0, 4))});
    }
    fragments.push_back(std::move(t));
  }
  auto run = [&](size_t shards) {
    Coordinator c({"g"}, shards);
    c.InitBase(schema).Check();
    for (const Table& f : fragments) c.MergeBaseFragment(f).Check();
    c.FinalizeBase().Check();
    return c.result();
  };
  Table sequential = run(1);
  Table sharded = run(4);
  EXPECT_GT(sequential.num_rows(), 0u);
  EXPECT_TRUE(ExactlyEqual(sharded, sequential));
}

TEST(CoordinatorTest, ShardedWorkingFragmentMatchesSequential) {
  // The tree executor's upward path: merge from scratch, then take the
  // unfinalized working fragment. Sharding must not change it.
  Table detail = MakeDetail(11, 200);
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  GmdjOp op = TestOp();
  std::vector<Table> partitions =
      PartitionRoundRobin(detail, 3).ValueOrDie();
  EvalContext sub;
  sub.sub_aggregates = true;
  std::vector<Table> fragments;
  for (const Table& part : partitions) {
    fragments.push_back(EvalGmdj(base, part, op, sub).ValueOrDie());
  }
  auto run = [&](size_t shards) {
    Coordinator c({"g"}, shards);
    c.BeginRound(op, *base.schema(), *detail.schema(), /*from_scratch=*/true)
        .Check();
    for (const Table& f : fragments) c.MergeFragment(f).Check();
    return c.TakeWorkingFragment().ValueOrDie();
  };
  Table sequential = run(1);
  Table sharded = run(4);
  EXPECT_GT(sequential.num_rows(), 0u);
  EXPECT_TRUE(ExactlyEqual(sharded, sequential));
}

TEST(CoordinatorTest, BaseFragmentArityMismatchFails) {
  Coordinator coordinator({"g"});
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64}}).ValueOrDie();
  coordinator.InitBase(schema).Check();
  SchemaPtr wide = Schema::Make({{"g", ValueType::kInt64},
                                 {"x", ValueType::kInt64}})
                       .ValueOrDie();
  Table f(wide);
  f.AppendUnchecked({Value(1), Value(2)});
  EXPECT_TRUE(coordinator.MergeBaseFragment(f).IsInvalidArgument());
}

TEST(CoordinatorTest, UnknownGroupRejectedWhenSeeded) {
  Table detail = MakeDetail(1, 50);
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  GmdjOp op = TestOp();

  Coordinator coordinator({"g"});
  coordinator.SetResult(base);
  coordinator
      .BeginRound(op, *base.schema(), *detail.schema(), false)
      .Check();

  // A fragment carrying a group that is not in the global structure.
  SchemaPtr foreign_base =
      Schema::Make({{"g", ValueType::kInt64}}).ValueOrDie();
  Table foreign(foreign_base);
  foreign.AppendUnchecked({Value(int64_t{12345})});
  EvalContext sub;
  sub.sub_aggregates = true;
  Table fragment = EvalGmdj(foreign, detail, op, sub).ValueOrDie();
  Status s = coordinator.MergeFragment(fragment);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInternal());
}

TEST(CoordinatorTest, FromScratchInsertsAndMergesOverlaps) {
  Table detail = MakeDetail(3, 100);
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  GmdjOp op = TestOp();
  Table expected = EvalGmdj(base, detail, op).ValueOrDie();

  // Two overlapping partitions... actually a plain 2-way split; both
  // fragments computed against the full base (all groups), so every group
  // arrives twice and must merge, not duplicate.
  std::vector<Table> partitions =
      PartitionRoundRobin(detail, 2).ValueOrDie();
  EvalContext sub;
  sub.sub_aggregates = true;

  Coordinator coordinator({"g"});
  coordinator
      .BeginRound(op, *base.schema(), *detail.schema(),
                  /*from_scratch=*/true)
      .Check();
  for (const Table& part : partitions) {
    Table fragment = EvalGmdj(base, part, op, sub).ValueOrDie();
    coordinator.MergeFragment(fragment).Check();
  }
  coordinator.FinalizeRound().Check();
  EXPECT_TRUE(coordinator.result().SameRows(expected));
}

TEST(CoordinatorTest, RoundProtocolViolations) {
  Coordinator coordinator({"g"});
  EXPECT_TRUE(coordinator.FinalizeRound().IsInternal());
  Table t;
  EXPECT_TRUE(coordinator.MergeFragment(t).IsInternal());
  EXPECT_TRUE(coordinator.MergeBaseFragment(t).IsInternal());

  Table detail = MakeDetail(1, 10);
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  coordinator.SetResult(base);
  GmdjOp op = TestOp();
  coordinator
      .BeginRound(op, *base.schema(), *detail.schema(), false)
      .Check();
  // Starting a second round mid-flight is a protocol violation.
  EXPECT_TRUE(coordinator
                  .BeginRound(op, *base.schema(), *detail.schema(), false)
                  .IsInternal());
}

TEST(CoordinatorTest, SchemaMismatchDetected) {
  Coordinator coordinator({"g"});
  Table detail = MakeDetail(1, 10);
  SchemaPtr other = Schema::Make({{"g", ValueType::kInt64},
                                  {"stale", ValueType::kInt64}})
                        .ValueOrDie();
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  coordinator.SetResult(base);
  GmdjOp op = TestOp();
  // Upstream schema says two columns, X has one: must be flagged.
  Status s = coordinator.BeginRound(op, *other, *detail.schema(), false);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInternal());
}

TEST(CoordinatorTest, FragmentArityChecked) {
  Coordinator coordinator({"g"});
  Table detail = MakeDetail(1, 10);
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  coordinator.SetResult(base);
  GmdjOp op = TestOp();
  coordinator
      .BeginRound(op, *base.schema(), *detail.schema(), false)
      .Check();
  Table bogus(base.schema());
  bogus.AppendUnchecked({Value(1)});
  EXPECT_TRUE(coordinator.MergeFragment(bogus).IsInvalidArgument());
}

}  // namespace
}  // namespace skalla
