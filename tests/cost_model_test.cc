// Transfer cost model: exact predictions match measured transfers
// tuple-for-tuple on pure key-equality queries; approximate predictions
// are valid upper bounds.

#include "opt/cost_model.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "dist/warehouse.h"
#include "expr/builder.h"

namespace skalla {
namespace {

Table MakeDetail(uint64_t seed, size_t rows, int64_t groups) {
  Random rng(seed);
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"v", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendUnchecked({Value(rng.UniformInt(0, groups - 1)),
                       Value(rng.UniformInt(0, 100))});
  }
  return t;
}

GmdjExpr PureEqualityQuery() {
  GmdjExpr expr;
  expr.base = BaseQuery{"d", {"g"}, true, nullptr};
  GmdjOp md1;
  md1.detail_table = "d";
  md1.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c1"}, {AggKind::kSum, "v", "s1"}},
      Eq(RCol("g"), BCol("g"))});
  GmdjOp md2;
  md2.detail_table = "d";
  md2.blocks.push_back(GmdjBlock{{{AggKind::kMax, "v", "m2"}},
                                 Eq(RCol("g"), BCol("g"))});
  expr.ops = {md1, md2};
  return expr;
}

struct Fixture {
  explicit Fixture(size_t sites) : dw(sites) {
    Table detail = MakeDetail(5, 900, 60);
    dw.AddTablePartitionedBy("d", detail, "g", {"v"}).Check();
  }
  CostModel Model(size_t sites) const {
    CostModel model(sites);
    model.SetPartitionInfo("d", dw.partition_info("d"));
    return model;
  }
  DistributedWarehouse dw;
};

void CheckEstimate(const Fixture& fixture, size_t sites,
                   const GmdjExpr& expr, const OptimizerOptions& opts,
                   bool expect_exact) {
  DistributedPlan plan = fixture.dw.Plan(expr, opts).ValueOrDie();
  CostModel model = fixture.Model(sites);
  TransferEstimate estimate = model.Estimate(plan).ValueOrDie();

  ExecStats stats;
  fixture.dw.ExecutePlan(plan, &stats).ValueOrDie();
  uint64_t measured = 0;
  for (const RoundStats& r : stats.rounds) {
    measured += r.tuples_to_sites + r.tuples_to_coord;
  }
  if (expect_exact) {
    EXPECT_TRUE(estimate.exact) << estimate.ToString();
    EXPECT_EQ(estimate.TotalTuples(), measured)
        << "opts=" << opts.ToString() << "\n"
        << estimate.ToString() << stats.ToString();
  } else {
    EXPECT_GE(estimate.TotalTuples(), measured)
        << "opts=" << opts.ToString() << "\n"
        << estimate.ToString() << stats.ToString();
  }
}

TEST(CostModelTest, ExactForPureEqualityAcrossOptimizations) {
  const size_t kSites = 5;
  Fixture fixture(kSites);
  GmdjExpr expr = PureEqualityQuery();
  OptimizerOptions indep;
  indep.indep_group_reduction = true;
  OptimizerOptions aware = indep;
  aware.aware_group_reduction = true;
  CheckEstimate(fixture, kSites, expr, OptimizerOptions::None(), true);
  CheckEstimate(fixture, kSites, expr, indep, true);
  CheckEstimate(fixture, kSites, expr, aware, true);
  CheckEstimate(fixture, kSites, expr, OptimizerOptions::All(), true);
}

TEST(CostModelTest, UpperBoundWithResidualConditions) {
  const size_t kSites = 4;
  Fixture fixture(kSites);
  GmdjExpr expr = PureEqualityQuery();
  // Add a residual to md2: site-side reduction counts become bounds.
  expr.ops[1].blocks[0].theta =
      And(Eq(RCol("g"), BCol("g")), Ge(RCol("v"), Lit(Value(90))));
  OptimizerOptions opts;
  opts.indep_group_reduction = true;
  DistributedPlan plan = fixture.dw.Plan(expr, opts).ValueOrDie();
  CostModel model = fixture.Model(kSites);
  TransferEstimate estimate = model.Estimate(plan).ValueOrDie();
  EXPECT_FALSE(estimate.exact);
  CheckEstimate(fixture, kSites, expr, opts, false);
}

TEST(CostModelTest, SyncReducedPlanIsCheapestAndExact) {
  const size_t kSites = 6;
  Fixture fixture(kSites);
  GmdjExpr expr = PureEqualityQuery();
  CostModel model = fixture.Model(kSites);

  DistributedPlan naive =
      fixture.dw.Plan(expr, OptimizerOptions::None()).ValueOrDie();
  DistributedPlan reduced =
      fixture.dw.Plan(expr, OptimizerOptions::All()).ValueOrDie();
  TransferEstimate naive_estimate = model.Estimate(naive).ValueOrDie();
  TransferEstimate reduced_estimate =
      model.Estimate(reduced).ValueOrDie();
  EXPECT_LT(reduced_estimate.TotalTuples(), naive_estimate.TotalTuples());
  CheckEstimate(fixture, kSites, expr, OptimizerOptions::All(), true);
}

TEST(CostModelTest, RefusesWithoutKnowledge) {
  CostModel model(3);
  DistributedPlan plan;
  plan.base = BaseQuery{"unknown", {"g"}, true, nullptr};
  plan.key_columns = {"g"};
  EXPECT_TRUE(model.Estimate(plan).status().IsNotImplemented());
}

TEST(CostModelTest, MultiColumnKeysGiveBounds) {
  Random rng(9);
  SchemaPtr schema = Schema::Make({{"a", ValueType::kInt64},
                                   {"b", ValueType::kInt64},
                                   {"v", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (int i = 0; i < 500; ++i) {
    t.AppendUnchecked({Value(rng.UniformInt(0, 9)),
                       Value(rng.UniformInt(0, 4)),
                       Value(rng.UniformInt(0, 50))});
  }
  DistributedWarehouse dw(3);
  dw.AddTablePartitionedBy("d", t, "a", {"b", "v"}).Check();

  GmdjExpr expr;
  expr.base = BaseQuery{"d", {"a", "b"}, true, nullptr};
  GmdjOp op;
  op.detail_table = "d";
  op.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c"}},
      And(Eq(RCol("a"), BCol("a")), Eq(RCol("b"), BCol("b")))});
  expr.ops.push_back(op);

  DistributedPlan plan =
      dw.Plan(expr, OptimizerOptions::None()).ValueOrDie();
  CostModel model(3);
  model.SetPartitionInfo("d", dw.partition_info("d"));
  TransferEstimate estimate = model.Estimate(plan).ValueOrDie();
  EXPECT_FALSE(estimate.exact);

  ExecStats stats;
  dw.ExecutePlan(plan, &stats).ValueOrDie();
  uint64_t measured = 0;
  for (const RoundStats& r : stats.rounds) {
    measured += r.tuples_to_sites + r.tuples_to_coord;
  }
  EXPECT_GE(estimate.TotalTuples(), measured);
}

}  // namespace
}  // namespace skalla
