#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "data/tpcr_gen.h"

namespace skalla {
namespace {

TEST(CsvTest, BasicParseWithTypeInference) {
  Table t = ReadCsv("id,name,score\n1,alpha,1.5\n2,beta,2\n").ValueOrDie();
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.schema()->field(0).type, ValueType::kInt64);
  EXPECT_EQ(t.schema()->field(1).type, ValueType::kString);
  // Column "score" holds 1.5 and 2: floats.
  EXPECT_EQ(t.schema()->field(2).type, ValueType::kFloat64);
  EXPECT_EQ(t.at(0, 1).str(), "alpha");
  EXPECT_DOUBLE_EQ(t.at(1, 2).float64(), 2.0);
}

TEST(CsvTest, NullsEmptyAndToken) {
  Table t = ReadCsv("a,b\n1,NULL\n,2\n").ValueOrDie();
  EXPECT_TRUE(t.at(0, 1).is_null());
  EXPECT_TRUE(t.at(1, 0).is_null());
  EXPECT_EQ(t.at(1, 1).int64(), 2);
}

TEST(CsvTest, QuotedFieldsAndEscapes) {
  Table t =
      ReadCsv("x,y\n\"a,b\",\"say \"\"hi\"\"\"\nplain,\"multi\nline\"\n")
          .ValueOrDie();
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(0, 0).str(), "a,b");
  EXPECT_EQ(t.at(0, 1).str(), "say \"hi\"");
  EXPECT_EQ(t.at(1, 1).str(), "multi\nline");
}

TEST(CsvTest, HeaderlessAndCustomDelimiter) {
  CsvOptions options;
  options.header = false;
  options.delimiter = ';';
  Table t = ReadCsv("1;2\n3;4\n", options).ValueOrDie();
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.schema()->field(0).name, "col0");
  EXPECT_EQ(t.at(1, 1).int64(), 4);
}

TEST(CsvTest, Errors) {
  EXPECT_TRUE(ReadCsv("").status().IsInvalidArgument());
  EXPECT_TRUE(ReadCsv("a,b\n1\n").status().IsParseError());
  EXPECT_TRUE(ReadCsv("a\n\"oops\n").status().IsParseError());
  EXPECT_TRUE(ReadCsvFile("/nonexistent/file.csv").status().IsIOError());
}

TEST(CsvTest, NegativeAndMixedNumbers) {
  Table t = ReadCsv("v\n-5\n12\n").ValueOrDie();
  EXPECT_EQ(t.schema()->field(0).type, ValueType::kInt64);
  EXPECT_EQ(t.at(0, 0).int64(), -5);
  // "1e3" forces float; "x" forces string.
  Table f = ReadCsv("v\n1e3\n2\n").ValueOrDie();
  EXPECT_EQ(f.schema()->field(0).type, ValueType::kFloat64);
  Table s = ReadCsv("v\n1\nx\n").ValueOrDie();
  EXPECT_EQ(s.schema()->field(0).type, ValueType::kString);
}

TEST(CsvTest, RoundTripPreservesValues) {
  TpcrConfig config;
  config.num_rows = 200;
  Table original = GenerateTpcr(config);
  std::string csv = WriteCsv(original);
  Table decoded = ReadCsv(csv).ValueOrDie();
  ASSERT_EQ(decoded.num_rows(), original.num_rows());
  EXPECT_TRUE(decoded.SameRows(original));
  EXPECT_TRUE(decoded.schema()->Equals(*original.schema()));
}

TEST(CsvTest, WriteQuotesWhenNeeded) {
  SchemaPtr schema = Schema::Make({{"s", ValueType::kString}}).ValueOrDie();
  Table t(schema);
  t.AppendUnchecked({Value("a,b")});
  t.AppendUnchecked({Value("NULL")});  // Collides with null token.
  t.AppendUnchecked({Value::Null()});
  std::string csv = WriteCsv(t);
  EXPECT_EQ(csv, "s\n\"a,b\"\n\"NULL\"\nNULL\n");
  Table back = ReadCsv(csv).ValueOrDie();
  EXPECT_TRUE(back.SameRows(t));
}

TEST(CsvTest, FileRoundTrip) {
  SchemaPtr schema = Schema::Make({{"a", ValueType::kInt64},
                                   {"b", ValueType::kString}})
                         .ValueOrDie();
  Table t(schema);
  t.AppendUnchecked({Value(1), Value("x")});
  std::string path = "/tmp/skalla_csv_test.csv";
  WriteCsvFile(t, path).Check();
  Table back = ReadCsvFile(path).ValueOrDie();
  EXPECT_TRUE(back.SameRows(t));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace skalla
