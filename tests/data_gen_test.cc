// Data generators: determinism, schema shape, and the structural
// properties the benches rely on (partition correlations, cardinalities).

#include <gtest/gtest.h>

#include "data/flow_gen.h"
#include "data/tpcr_gen.h"
#include "storage/partition.h"
#include "types/value_set.h"

namespace skalla {
namespace {

TEST(TpcrGenTest, DeterministicForSameSeed) {
  TpcrConfig config;
  config.num_rows = 500;
  Table a = GenerateTpcr(config);
  Table b = GenerateTpcr(config);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_TRUE(RowEquals(a.row(r), b.row(r))) << "row " << r;
  }
  config.seed = 43;
  Table c = GenerateTpcr(config);
  bool any_diff = false;
  for (size_t r = 0; r < std::min(a.num_rows(), c.num_rows()); ++r) {
    if (!RowEquals(a.row(r), c.row(r))) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(TpcrGenTest, SchemaAndRanges) {
  TpcrConfig config;
  config.num_rows = 2000;
  config.num_customers = 100;
  config.num_nations = 25;
  config.num_clerks = 10;
  Table t = GenerateTpcr(config);
  EXPECT_EQ(t.num_rows(), 2000u);
  ASSERT_TRUE(t.schema()->Contains("CustKey"));
  ASSERT_TRUE(t.schema()->Contains("NationKey"));
  ASSERT_TRUE(t.schema()->Contains("Clerk"));

  size_t cust = static_cast<size_t>(t.schema()->IndexOf("CustKey"));
  size_t nation = static_cast<size_t>(t.schema()->IndexOf("NationKey"));
  size_t qty = static_cast<size_t>(t.schema()->IndexOf("Quantity"));
  ValueSet clerks;
  size_t clerk = static_cast<size_t>(t.schema()->IndexOf("Clerk"));
  for (size_t r = 0; r < t.num_rows(); ++r) {
    int64_t ck = t.at(r, cust).int64();
    EXPECT_GE(ck, 1);
    EXPECT_LE(ck, 100);
    // NationKey is functionally determined by CustKey.
    EXPECT_EQ(t.at(r, nation).int64(), NationOfCustomer(ck, 25));
    EXPECT_GE(t.at(r, qty).int64(), 1);
    EXPECT_LE(t.at(r, qty).int64(), 50);
    clerks.Insert(t.at(r, clerk));
  }
  EXPECT_LE(clerks.size(), 10u);
  EXPECT_GE(clerks.size(), 5u);
}

TEST(TpcrGenTest, CustKeyIsPartitionCorrelatedWithNationKey) {
  TpcrConfig config;
  config.num_rows = 4000;
  config.num_customers = 300;
  Table t = GenerateTpcr(config);
  auto parts = PartitionByModulo(t, "NationKey", 8).ValueOrDie();
  PartitionInfo info = PartitionInfo::ComputeFromPartitions(
                           parts, {"NationKey", "CustKey", "CustName",
                                   "Clerk"})
                           .ValueOrDie();
  EXPECT_TRUE(info.IsPartitionAttribute("NationKey"));
  EXPECT_TRUE(info.IsPartitionAttribute("CustKey"));
  EXPECT_TRUE(info.IsPartitionAttribute("CustName"));
  // Clerks are uniform across sites — NOT a partition attribute.
  EXPECT_FALSE(info.IsPartitionAttribute("Clerk"));
}

TEST(FlowGenTest, DeterministicAndSchema) {
  FlowConfig config;
  config.num_flows = 300;
  Table a = GenerateFlows(config);
  Table b = GenerateFlows(config);
  ASSERT_EQ(a.num_rows(), 300u);
  for (size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_TRUE(RowEquals(a.row(r), b.row(r)));
  }
  EXPECT_EQ(a.num_columns(), 13u);  // The paper's Flow schema.
  EXPECT_TRUE(a.schema()->Contains("RouterId"));
  EXPECT_TRUE(a.schema()->Contains("NumBytes"));
}

TEST(FlowGenTest, AsRouterAffinityMakesSourceAsPartitionAttribute) {
  FlowConfig config;
  config.num_flows = 3000;
  config.num_routers = 4;
  Table flow = GenerateFlows(config);
  auto parts = PartitionByValue(flow, "RouterId", 4).ValueOrDie();
  PartitionInfo info = PartitionInfo::ComputeFromPartitions(
                           parts, {"RouterId", "SourceAS", "DestAS"})
                           .ValueOrDie();
  EXPECT_TRUE(info.IsPartitionAttribute("SourceAS"));
  EXPECT_FALSE(info.IsPartitionAttribute("DestAS"));

  config.as_router_affinity = false;
  Table spread = GenerateFlows(config);
  auto parts2 = PartitionByValue(spread, "RouterId", 4).ValueOrDie();
  PartitionInfo info2 =
      PartitionInfo::ComputeFromPartitions(parts2, {"SourceAS"})
          .ValueOrDie();
  EXPECT_FALSE(info2.IsPartitionAttribute("SourceAS"));
}

TEST(FlowGenTest, StructuralInvariants) {
  FlowConfig config;
  config.num_flows = 2000;
  config.num_routers = 8;
  config.num_hours = 12;
  config.web_fraction = 0.5;
  Table flow = GenerateFlows(config);
  size_t start = static_cast<size_t>(flow.schema()->IndexOf("StartTime"));
  size_t end = static_cast<size_t>(flow.schema()->IndexOf("EndTime"));
  size_t packets =
      static_cast<size_t>(flow.schema()->IndexOf("NumPackets"));
  size_t bytes = static_cast<size_t>(flow.schema()->IndexOf("NumBytes"));
  size_t port = static_cast<size_t>(flow.schema()->IndexOf("DestPort"));
  size_t web = 0;
  for (size_t r = 0; r < flow.num_rows(); ++r) {
    EXPECT_LT(flow.at(r, start).int64(), flow.at(r, end).int64());
    EXPECT_LT(flow.at(r, start).int64(), 12 * 3600);
    EXPECT_GE(flow.at(r, packets).int64(), 1);
    // Bytes consistent with packet sizes of 40..1500.
    EXPECT_GE(flow.at(r, bytes).int64(), flow.at(r, packets).int64() * 40);
    EXPECT_LE(flow.at(r, bytes).int64(),
              flow.at(r, packets).int64() * 1500);
    int64_t p = flow.at(r, port).int64();
    if (p == 80 || p == 443) ++web;
  }
  // Web fraction should be near the configured 50%.
  double fraction = static_cast<double>(web) /
                    static_cast<double>(flow.num_rows());
  EXPECT_NEAR(fraction, 0.5, 0.05);
}

}  // namespace
}  // namespace skalla
