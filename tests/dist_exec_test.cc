// Golden property of the Skalla system: the distributed evaluation of a
// GMDJ expression — under ANY combination of optimizations, site counts,
// and partitioning styles — produces exactly the centralized result.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "dist/warehouse.h"
#include "expr/builder.h"

namespace skalla {
namespace {

Table MakeFlowTable(uint64_t seed, size_t rows, int64_t num_sas,
                    int64_t num_das) {
  Random rng(seed);
  SchemaPtr schema = Schema::Make({{"SAS", ValueType::kInt64},
                                   {"DAS", ValueType::kInt64},
                                   {"NB", ValueType::kInt64},
                                   {"NP", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendUnchecked({Value(rng.UniformInt(0, num_sas - 1)),
                       Value(rng.UniformInt(0, num_das - 1)),
                       Value(rng.UniformInt(1, 1000)),
                       Value(rng.UniformInt(1, 50))});
  }
  return t;
}

// The paper's Example 1: per (SAS, DAS) group, total flows and flows whose
// NB exceeds the group average.
GmdjExpr Example1Expr() {
  GmdjExpr expr;
  expr.base = BaseQuery{"flow", {"SAS", "DAS"}, true, nullptr};
  ExprPtr group = And(Eq(RCol("SAS"), BCol("SAS")),
                      Eq(RCol("DAS"), BCol("DAS")));
  GmdjOp md1;
  md1.detail_table = "flow";
  md1.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "cnt1"}, {AggKind::kSum, "NB", "sum1"}},
      group});
  GmdjOp md2;
  md2.detail_table = "flow";
  md2.blocks.push_back(
      GmdjBlock{{{AggKind::kCountStar, "", "cnt2"}},
                And(group, Ge(RCol("NB"), Div(BCol("sum1"), BCol("cnt1"))))});
  expr.ops = {md1, md2};
  return expr;
}

// A coalescable two-operator expression: the second op's conditions do not
// reference the first op's outputs.
GmdjExpr CoalescableExpr() {
  GmdjExpr expr;
  expr.base = BaseQuery{"flow", {"SAS"}, true, nullptr};
  GmdjOp md1;
  md1.detail_table = "flow";
  md1.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "cnt1"}, {AggKind::kAvg, "NB", "avg1"}},
      Eq(RCol("SAS"), BCol("SAS"))});
  GmdjOp md2;
  md2.detail_table = "flow";
  md2.blocks.push_back(
      GmdjBlock{{{AggKind::kCountStar, "", "cnt2"}},
                And(Eq(RCol("SAS"), BCol("SAS")),
                    Ge(RCol("NB"), Lit(Value(500))))});
  expr.ops = {md1, md2};
  return expr;
}

enum class PartitionStyle { kByGroupAttr, kRoundRobin };

struct Config {
  size_t num_sites;
  PartitionStyle style;
  OptimizerOptions opts;
  std::string name;
};

std::vector<Config> AllConfigs() {
  std::vector<Config> configs;
  for (size_t sites : {1u, 2u, 5u}) {
    for (PartitionStyle style :
         {PartitionStyle::kByGroupAttr, PartitionStyle::kRoundRobin}) {
      for (int mask = 0; mask < 16; ++mask) {
        OptimizerOptions o;
        o.coalescing = mask & 1;
        o.indep_group_reduction = mask & 2;
        o.aware_group_reduction = mask & 4;
        o.sync_reduction = mask & 8;
        configs.push_back(Config{
            sites, style, o,
            StrCat("sites", sites, "_",
                   style == PartitionStyle::kByGroupAttr ? "attr" : "rr",
                   "_opt", mask)});
      }
    }
  }
  return configs;
}

class DistEquivalenceTest : public ::testing::TestWithParam<Config> {};

DistributedWarehouse MakeWarehouse(const Config& config, const Table& flow) {
  DistributedWarehouse dw(config.num_sites);
  if (config.style == PartitionStyle::kByGroupAttr) {
    dw.AddTablePartitionedBy("flow", flow, "SAS", {"DAS", "NB"}).Check();
  } else {
    std::vector<Table> parts =
        PartitionRoundRobin(flow, config.num_sites).ValueOrDie();
    dw.AddPartitionedTable("flow", std::move(parts), {"SAS", "DAS", "NB"})
        .Check();
  }
  return dw;
}

TEST_P(DistEquivalenceTest, Example1MatchesCentralized) {
  const Config& config = GetParam();
  Table flow = MakeFlowTable(/*seed=*/7, /*rows=*/400, 12, 6);
  DistributedWarehouse dw = MakeWarehouse(config, flow);

  GmdjExpr expr = Example1Expr();
  Table expected = dw.ExecuteCentralized(expr).ValueOrDie();
  ExecStats stats;
  Table actual = dw.Execute(expr, config.opts, &stats).ValueOrDie();
  EXPECT_TRUE(actual.SameRows(expected))
      << "config " << config.name << "\nplan:\n"
      << dw.Plan(expr, config.opts).ValueOrDie().ToString(config.num_sites)
      << "expected:\n"
      << expected.ToString(50) << "actual:\n"
      << actual.ToString(50);
}

TEST_P(DistEquivalenceTest, CoalescableMatchesCentralized) {
  const Config& config = GetParam();
  Table flow = MakeFlowTable(/*seed=*/13, /*rows=*/300, 9, 4);
  DistributedWarehouse dw = MakeWarehouse(config, flow);

  GmdjExpr expr = CoalescableExpr();
  Table expected = dw.ExecuteCentralized(expr).ValueOrDie();
  Table actual = dw.Execute(expr, config.opts, nullptr).ValueOrDie();
  EXPECT_TRUE(actual.SameRows(expected)) << "config " << config.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, DistEquivalenceTest, ::testing::ValuesIn(AllConfigs()),
    [](const ::testing::TestParamInfo<Config>& info) {
      return info.param.name;
    });

TEST(DistExecTest, PlanShapesMatchPaper) {
  Table flow = MakeFlowTable(3, 200, 8, 4);
  DistributedWarehouse dw(4);
  dw.AddTablePartitionedBy("flow", flow, "SAS", {"DAS", "NB"}).Check();

  GmdjExpr expr = Example1Expr();

  // Unoptimized: m + 1 = 3 synchronization rounds.
  DistributedPlan naive =
      dw.Plan(expr, OptimizerOptions::None()).ValueOrDie();
  EXPECT_EQ(naive.NumSyncRounds(), 3u);

  // Example 5: SAS partition attribute + (SAS, DAS) key => Prop. 2 and
  // Cor. 1 both apply; a single synchronization remains.
  OptimizerOptions sync_only;
  sync_only.sync_reduction = true;
  DistributedPlan reduced = dw.Plan(expr, sync_only).ValueOrDie();
  EXPECT_EQ(reduced.NumSyncRounds(), 1u);
  EXPECT_FALSE(reduced.sync_base);
  EXPECT_FALSE(reduced.stages[0].sync_after);
  EXPECT_TRUE(reduced.stages[1].sync_after);

  // Example 1 is NOT coalescable (md2 references sum1/cnt1): coalescing
  // alone must leave both operators in place.
  OptimizerOptions coal_only;
  coal_only.coalescing = true;
  DistributedPlan coalesced = dw.Plan(expr, coal_only).ValueOrDie();
  EXPECT_EQ(coalesced.stages.size(), 2u);

  // The coalescable expression merges into one operator and, with sync
  // reduction, runs in a single round (Fig. 3's coalesced curve).
  OptimizerOptions coal_sync;
  coal_sync.coalescing = true;
  coal_sync.sync_reduction = true;
  DistributedPlan merged =
      dw.Plan(CoalescableExpr(), coal_sync).ValueOrDie();
  EXPECT_EQ(merged.stages.size(), 1u);
  EXPECT_EQ(merged.NumSyncRounds(), 1u);
}

TEST(DistExecTest, GroupReductionReducesBytes) {
  Table flow = MakeFlowTable(11, 600, 24, 6);
  DistributedWarehouse dw(6);
  dw.AddTablePartitionedBy("flow", flow, "SAS", {"DAS", "NB"}).Check();

  GmdjExpr expr = Example1Expr();
  ExecStats none_stats;
  ExecStats gr_stats;
  Table expected = dw.ExecuteCentralized(expr).ValueOrDie();

  Table none_result =
      dw.Execute(expr, OptimizerOptions::None(), &none_stats).ValueOrDie();
  OptimizerOptions gr;
  gr.indep_group_reduction = true;
  gr.aware_group_reduction = true;
  Table gr_result = dw.Execute(expr, gr, &gr_stats).ValueOrDie();

  EXPECT_TRUE(none_result.SameRows(expected));
  EXPECT_TRUE(gr_result.SameRows(expected));
  // SAS is the partition attribute: each site holds ~1/6 of the groups, so
  // both directions of traffic must shrink substantially.
  EXPECT_LT(gr_stats.TotalBytesToCoord(), none_stats.TotalBytesToCoord());
  EXPECT_LT(gr_stats.TotalBytesToSites(), none_stats.TotalBytesToSites());
}

TEST(DistExecTest, Theorem2TransferBound) {
  // Max data transferred <= sum_i(2 * s_i * |Q|) + s_0 * |Q|, measured in
  // tuples, independent of |R|.
  for (size_t rows : {200u, 800u}) {
    Table flow = MakeFlowTable(17, rows, 10, 4);
    size_t n = 5;
    DistributedWarehouse dw(n);
    dw.AddTablePartitionedBy("flow", flow, "SAS", {"DAS", "NB"}).Check();
    GmdjExpr expr = Example1Expr();
    ExecStats stats;
    Table result =
        dw.Execute(expr, OptimizerOptions::None(), &stats).ValueOrDie();
    uint64_t q = result.num_rows();
    uint64_t bound = 0;
    for (size_t i = 0; i < expr.ops.size(); ++i) bound += 2 * n * q;
    bound += n * q;
    EXPECT_LE(stats.TotalTuplesTransferred(), bound)
        << "rows=" << rows;
  }
}

TEST(DistExecTest, ParallelSitesMatchesSequential) {
  Table flow = MakeFlowTable(23, 500, 16, 4);
  ExecutorOptions par;
  par.parallel_sites = true;
  DistributedWarehouse seq_dw(4);
  DistributedWarehouse par_dw(4, NetworkConfig{}, par);
  seq_dw.AddTablePartitionedBy("flow", flow, "SAS", {"DAS", "NB"}).Check();
  par_dw.AddTablePartitionedBy("flow", flow, "SAS", {"DAS", "NB"}).Check();

  GmdjExpr expr = Example1Expr();
  Table seq = seq_dw.Execute(expr, OptimizerOptions::All()).ValueOrDie();
  Table par_result =
      par_dw.Execute(expr, OptimizerOptions::All()).ValueOrDie();
  EXPECT_TRUE(seq.SameRows(par_result));
}

TEST(DistExecTest, ConstantPredicatePruningSkipsSites) {
  // Detail partitioned by `region`; the query's second condition pins
  // region = 2, so distribution-aware analysis proves every other site
  // holds nothing relevant and they sit the GMDJ round out (S_MD ⊂ S_B).
  SchemaPtr schema = Schema::Make({{"region", ValueType::kInt64},
                                   {"cat", ValueType::kInt64},
                                   {"v", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  Random rng(53);
  for (int i = 0; i < 400; ++i) {
    t.AppendUnchecked({Value(rng.UniformInt(0, 3)),
                       Value(rng.UniformInt(0, 9)),
                       Value(rng.UniformInt(0, 99))});
  }
  DistributedWarehouse dw(4);
  std::vector<Table> parts = PartitionByModulo(t, "region", 4).ValueOrDie();
  dw.AddPartitionedTable("t", std::move(parts), {"region", "cat", "v"})
      .Check();

  GmdjExpr expr;
  expr.base = BaseQuery{"t", {"cat"}, true, nullptr};
  GmdjOp op;
  op.detail_table = "t";
  op.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c"}},
      And(Eq(RCol("cat"), BCol("cat")),
          Eq(RCol("region"), Lit(Value(2))))});
  expr.ops.push_back(op);

  Table expected = dw.ExecuteCentralized(expr).ValueOrDie();
  OptimizerOptions aware;
  aware.aware_group_reduction = true;
  ExecStats stats;
  Table result = dw.Execute(expr, aware, &stats).ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
  // Stage round is rounds[1]; three of four sites skipped.
  ASSERT_EQ(stats.rounds.size(), 2u);
  EXPECT_EQ(stats.rounds[1].sites_skipped, 3u);
}

TEST(DistExecTest, RowBlockingPreservesResultsAndTuples) {
  Table flow = MakeFlowTable(37, 400, 10, 4);
  ExecutorOptions blocked;
  blocked.ship_block_rows = 7;
  DistributedWarehouse plain_dw(4);
  DistributedWarehouse blocked_dw(4, NetworkConfig{}, blocked);
  plain_dw.AddTablePartitionedBy("flow", flow, "SAS", {"DAS", "NB"}).Check();
  blocked_dw.AddTablePartitionedBy("flow", flow, "SAS", {"DAS", "NB"})
      .Check();

  GmdjExpr expr = Example1Expr();
  ExecStats plain_stats;
  ExecStats blocked_stats;
  Table plain =
      plain_dw.Execute(expr, OptimizerOptions::None(), &plain_stats)
          .ValueOrDie();
  Table blocked_result =
      blocked_dw.Execute(expr, OptimizerOptions::None(), &blocked_stats)
          .ValueOrDie();
  EXPECT_TRUE(plain.SameRows(blocked_result));
  // Same tuples travel; blocking adds per-block header bytes and
  // per-message latency.
  EXPECT_EQ(plain_stats.TotalTuplesTransferred(),
            blocked_stats.TotalTuplesTransferred());
  EXPECT_GT(blocked_stats.TotalBytes(), plain_stats.TotalBytes());
  EXPECT_GT(blocked_stats.TotalCommTime(), plain_stats.TotalCommTime());
}

TEST(DistExecTest, EmptyPartitionSitesAreHarmless) {
  // More sites than distinct partition values: some sites hold no rows.
  Table flow = MakeFlowTable(29, 100, 3, 2);
  DistributedWarehouse dw(8);
  dw.AddTablePartitionedBy("flow", flow, "SAS", {"DAS", "NB"}).Check();
  GmdjExpr expr = Example1Expr();
  Table expected = dw.ExecuteCentralized(expr).ValueOrDie();
  for (const OptimizerOptions& o :
       {OptimizerOptions::None(), OptimizerOptions::All()}) {
    Table actual = dw.Execute(expr, o).ValueOrDie();
    EXPECT_TRUE(actual.SameRows(expected));
  }
}

TEST(DistExecTest, UnknownTableFails) {
  DistributedWarehouse dw(2);
  GmdjExpr expr = Example1Expr();
  auto result = dw.Execute(expr, OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(DistExecTest, MismatchedPartitionCountFails) {
  DistributedWarehouse dw(3);
  Table flow = MakeFlowTable(1, 10, 2, 2);
  std::vector<Table> two_parts = PartitionRoundRobin(flow, 2).ValueOrDie();
  Status s = dw.AddPartitionedTable("flow", std::move(two_parts), {});
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(DistExecTest, StatsAccounting) {
  Table flow = MakeFlowTable(31, 300, 8, 3);
  DistributedWarehouse dw(4);
  dw.AddTablePartitionedBy("flow", flow, "SAS", {"DAS", "NB"}).Check();
  GmdjExpr expr = Example1Expr();
  ExecStats stats;
  dw.Execute(expr, OptimizerOptions::None(), &stats).ValueOrDie();
  // Unoptimized Example 1: base round + 2 GMDJ rounds, all synchronized.
  ASSERT_EQ(stats.rounds.size(), 3u);
  EXPECT_EQ(stats.NumSyncRounds(), 3u);
  EXPECT_GT(stats.TotalBytesToCoord(), 0u);
  EXPECT_GT(stats.rounds[1].bytes_to_sites, 0u);   // X shipped to sites.
  EXPECT_EQ(stats.rounds[0].bytes_to_sites, 0u);   // Base round only sends up.
  EXPECT_GT(stats.ResponseTime(), 0.0);
  EXPECT_GE(stats.TotalSiteTimeSum(), stats.TotalSiteTimeMax());
}

}  // namespace
}  // namespace skalla
