// Multi-tier coordinator (spanning-tree) executor: identical results to
// the flat star executor across optimizer configs and fanouts, with
// reduced root-link traffic.

#include "dist/tree.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "dist/warehouse.h"
#include "expr/builder.h"
#include "storage/partition.h"

namespace skalla {
namespace {

Table MakeFlow(uint64_t seed, size_t rows, int64_t num_sas) {
  Random rng(seed);
  SchemaPtr schema = Schema::Make({{"SAS", ValueType::kInt64},
                                   {"DAS", ValueType::kInt64},
                                   {"NB", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendUnchecked({Value(rng.UniformInt(0, num_sas - 1)),
                       Value(rng.UniformInt(0, 4)),
                       Value(rng.UniformInt(1, 500))});
  }
  return t;
}

GmdjExpr Example1() {
  GmdjExpr expr;
  expr.base = BaseQuery{"flow", {"SAS", "DAS"}, true, nullptr};
  ExprPtr group = And(Eq(RCol("SAS"), BCol("SAS")),
                      Eq(RCol("DAS"), BCol("DAS")));
  GmdjOp md1;
  md1.detail_table = "flow";
  md1.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "cnt1"}, {AggKind::kAvg, "NB", "avg1"}},
      group});
  GmdjOp md2;
  md2.detail_table = "flow";
  md2.blocks.push_back(
      GmdjBlock{{{AggKind::kCountStar, "", "cnt2"}},
                And(group, Ge(RCol("NB"), BCol("avg1")))});
  expr.ops = {md1, md2};
  return expr;
}

TEST(CoordinatorTreeTest, BalancedShapes) {
  // fanout >= n degenerates to a star.
  CoordinatorTree star = CoordinatorTree::Balanced(4, 8);
  ASSERT_EQ(star.nodes.size(), 1u);
  EXPECT_EQ(star.nodes[0].child_sites.size(), 4u);
  EXPECT_EQ(star.depth(), 1u);

  // 8 sites, fanout 2: root with 2 children, each covering 4 sites.
  CoordinatorTree tree = CoordinatorTree::Balanced(8, 2);
  EXPECT_GE(tree.depth(), 3u);
  std::vector<int> all = tree.SitesUnder(0);
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(all[static_cast<size_t>(i)], i);

  // Every site appears under exactly one child of the root.
  size_t covered = 0;
  for (int child : tree.nodes[0].child_nodes) {
    covered += tree.SitesUnder(child).size();
  }
  covered += tree.nodes[0].child_sites.size();
  EXPECT_EQ(covered, 8u);
}

class TreeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(TreeEquivalenceTest, MatchesFlatExecutorAndCentralized) {
  auto [fanout, opt_mask] = GetParam();
  OptimizerOptions opts;
  opts.coalescing = opt_mask & 1;
  opts.indep_group_reduction = opt_mask & 2;
  opts.aware_group_reduction = opt_mask & 4;
  opts.sync_reduction = opt_mask & 8;

  const size_t kSites = 6;
  Table flow = MakeFlow(41, 500, 18);
  DistributedWarehouse dw(kSites);
  dw.AddTablePartitionedBy("flow", flow, "SAS", {"DAS", "NB"}).Check();

  GmdjExpr expr = Example1();
  Table expected = dw.ExecuteCentralized(expr).ValueOrDie();
  DistributedPlan plan = dw.Plan(expr, opts).ValueOrDie();

  std::vector<Table> parts = PartitionByValue(flow, "SAS", kSites)
                                 .ValueOrDie();
  std::vector<Site> sites;
  for (size_t i = 0; i < kSites; ++i) {
    Catalog catalog;
    catalog.Register("flow", parts[i]);
    sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  TreeExecutor executor(std::move(sites),
                        CoordinatorTree::Balanced(kSites, fanout));
  ExecStats stats;
  Table result = executor.Execute(plan, &stats).ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected))
      << "fanout " << fanout << " opts " << opt_mask << "\n"
      << executor.tree().ToString();
  EXPECT_EQ(stats.rounds.size(), plan.stages.size() + 1);
}

INSTANTIATE_TEST_SUITE_P(
    FanoutsAndOpts, TreeEquivalenceTest,
    ::testing::Combine(::testing::Values(size_t{2}, size_t{3}, size_t{8}),
                       ::testing::Values(0, 2, 6, 8, 15)));

TEST(TreeExecutorTest, RootTrafficShrinksVersusStar) {
  const size_t kSites = 8;
  Table flow = MakeFlow(43, 1200, 64);
  std::vector<Table> parts =
      PartitionByValue(flow, "SAS", kSites).ValueOrDie();

  DistributedWarehouse dw(kSites);
  dw.AddPartitionedTable("flow", parts, {"SAS", "DAS", "NB"}).Check();
  // Unoptimized plan: every round synchronizes, so the root is the
  // bottleneck in the star.
  DistributedPlan plan =
      dw.Plan(Example1(), OptimizerOptions::None()).ValueOrDie();

  auto run = [&](size_t fanout) {
    std::vector<Site> sites;
    for (size_t i = 0; i < kSites; ++i) {
      Catalog catalog;
      catalog.Register("flow", parts[i]);
      sites.emplace_back(static_cast<int>(i), std::move(catalog));
    }
    TreeExecutor executor(std::move(sites),
                          CoordinatorTree::Balanced(kSites, fanout));
    ExecStats stats;
    Table result = executor.Execute(plan, &stats).ValueOrDie();
    return std::make_pair(result, stats);
  };

  auto [star_result, star_stats] = run(8);
  auto [tree_result, tree_stats] = run(2);
  EXPECT_TRUE(star_result.SameRows(tree_result));
  // The star's root carries all traffic; the binary tree's root carries
  // only its two children's links.
  EXPECT_EQ(star_stats.RootBytes(), star_stats.TotalBytes());
  EXPECT_LT(tree_stats.RootBytes(), star_stats.RootBytes());
}

TEST(TreeExecutorTest, ValidatesPlans) {
  std::vector<Site> sites;
  Catalog catalog;
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64}}).ValueOrDie();
  catalog.Register("t", Table(schema));
  sites.emplace_back(0, catalog);
  TreeExecutor executor(std::move(sites), CoordinatorTree::Balanced(1, 2));

  DistributedPlan bad;
  bad.base = BaseQuery{"t", {"g"}, true, nullptr};
  bad.sync_base = false;
  auto result = executor.Execute(bad, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace skalla
