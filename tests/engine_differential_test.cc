// Row-vs-columnar differential test: the row engine is the oracle and
// the columnar kernels must reproduce its output BYTE for byte across
// randomized condition shapes (equality atoms, ranges, IN-sets, NOT,
// mixed residual conjuncts, correlated comparisons, empty base/detail),
// thread counts, buffer budgets, and chunk pruning on/off.
//
// All generated values are representation-matching (int64 columns get
// int64 Values, float64 columns get doubles), the well-typed-table
// contract both engines' byte-identity is defined over
// (docs/KERNELS.md).

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "columnar/column_table.h"
#include "columnar/vector_eval.h"
#include "common/random.h"
#include "core/local_eval.h"
#include "expr/builder.h"
#include "net/serde.h"
#include "obs/obs.h"
#include "relalg/operators.h"
#include "storage/chunk_file.h"
#include "storage/data_provider.h"
#include "types/value_set.h"

namespace skalla {
namespace {

std::vector<uint8_t> Bytes(const Table& t) {
  std::vector<uint8_t> bytes;
  WriteTable(t, &bytes);
  return bytes;
}

// Random detail relation over the fixed differential schema. Values are
// representation-matching per column type; iv and dv carry NULLs.
Table MakeDetail(uint64_t seed, size_t rows) {
  Random rng(seed);
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"h", ValueType::kString},
                                   {"iv", ValueType::kInt64},
                                   {"dv", ValueType::kFloat64}})
                         .ValueOrDie();
  const char* labels[] = {"x", "y", "z", "w"};
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    Row row = {Value(rng.UniformInt(0, 9)),
               Value(std::string(labels[rng.Uniform(4)])),
               Value(rng.UniformInt(-40, 40)),
               Value(static_cast<double>(rng.UniformInt(-200, 200)) / 8.0)};
    if (rng.Bernoulli(0.12)) row[2] = Value::Null();
    if (rng.Bernoulli(0.12)) row[3] = Value::Null();
    t.AppendUnchecked(std::move(row));
  }
  return t;
}

// One random conjunct over the detail side (and sometimes the base
// side), drawn from every shape the predicate compiler classifies:
// typed comparisons, IN-sets, NOT, arithmetic (kGeneric), correlated
// comparisons, base-only gates.
ExprPtr RandomConjunct(Random* rng) {
  switch (rng->Uniform(9)) {
    case 0:  // int range atom (prunable)
      return Gt(RCol("iv"), Lit(Value(rng->UniformInt(-30, 30))));
    case 1:  // double range atom (prunable)
      return Le(RCol("dv"),
                Lit(Value(static_cast<double>(rng->UniformInt(-20, 20)))));
    case 2:  // equality atom on a measure (prunable)
      return Eq(RCol("iv"), Lit(Value(rng->UniformInt(-10, 10))));
    case 3: {  // IN-set over strings
      auto set = std::make_shared<ValueSet>();
      set->Insert(Value("x"));
      if (rng->Bernoulli(0.5)) set->Insert(Value("z"));
      return Expr::InSet(RCol("h"), std::move(set));
    }
    case 4: {  // IN-set over ints
      auto set = std::make_shared<ValueSet>();
      for (int k = 0; k < 3; ++k) set->Insert(Value(rng->UniformInt(-5, 5)));
      return Expr::InSet(RCol("iv"), std::move(set));
    }
    case 5:  // NOT of a comparison (generic fallback)
      return Not(Ge(RCol("iv"), Lit(Value(rng->UniformInt(-15, 15)))));
    case 6:  // arithmetic on the detail side (generic fallback)
      return Lt(Add(RCol("iv"), Lit(Value(int64_t{1}))),
                Lit(Value(rng->UniformInt(-20, 20))));
    case 7:  // not-equal (unprunable typed comparison)
      return Ne(RCol("h"), Lit(Value("y")));
    default:  // correlated comparison (candidates / scan paths)
      return rng->Bernoulli(0.5) ? Ge(RCol("iv"), BCol("g"))
                                 : Lt(RCol("dv"), BCol("bd"));
  }
}

// A random θ: optionally equality atoms (exercising grouped/candidates
// vs scan), plus 0-3 conjuncts of random shape, plus sometimes a
// base-only gate.
ExprPtr RandomTheta(Random* rng) {
  ExprPtr theta;
  auto conjoin = [&theta](ExprPtr c) {
    theta = theta == nullptr ? std::move(c)
                             : And(std::move(theta), std::move(c));
  };
  if (rng->Bernoulli(0.7)) conjoin(Eq(RCol("g"), BCol("g")));
  if (rng->Bernoulli(0.25)) conjoin(Eq(RCol("h"), BCol("bh")));
  const size_t extra = rng->Uniform(4);
  for (size_t i = 0; i < extra; ++i) conjoin(RandomConjunct(rng));
  if (rng->Bernoulli(0.2)) conjoin(Gt(BCol("g"), Lit(Value(int64_t{2}))));
  if (theta == nullptr) theta = Lit(Value(int64_t{1}));  // cross product
  return theta;
}

GmdjOp RandomOp(Random* rng) {
  GmdjOp op;
  op.detail_table = "d";
  const size_t blocks = 1 + rng->Uniform(2);
  for (size_t b = 0; b < blocks; ++b) {
    op.blocks.push_back(GmdjBlock{{{AggKind::kCountStar, "", "c"},
                                   {AggKind::kCount, "iv", "ci"},
                                   {AggKind::kSum, "iv", "si"},
                                   {AggKind::kSum, "dv", "sd"},
                                   {AggKind::kAvg, "dv", "ad"},
                                   {AggKind::kMin, "iv", "lo"},
                                   {AggKind::kMax, "dv", "hi"},
                                   {AggKind::kVarPop, "iv", "vp"}},
                                  RandomTheta(rng)});
    // Distinct output names per block.
    for (AggSpec& agg : op.blocks.back().aggs) {
      agg.output += std::to_string(b);
    }
  }
  return op;
}

// Base relation: the distinct equality keys plus derived comparison
// inputs (bd, bh) and one guaranteed-unmatched row.
Table MakeBase(const Table& detail, Random* rng, bool empty_base) {
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"bh", ValueType::kString},
                                   {"bd", ValueType::kFloat64}})
                         .ValueOrDie();
  Table base(schema);
  if (empty_base) return base;
  const char* labels[] = {"x", "y", "z", "w"};
  for (int64_t g = 0; g <= 9; ++g) {
    base.AppendUnchecked(
        {Value(g), Value(std::string(labels[rng->Uniform(4)])),
         Value(static_cast<double>(rng->UniformInt(-40, 40)) / 4.0)});
  }
  base.AppendUnchecked({Value(int64_t{999}), Value("none"), Value(0.75)});
  (void)detail;
  return base;
}

class EngineDifferentialTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    dir_ = "/tmp/skalla_engine_differential_test";
    mkdir(dir_.c_str(), 0755);
  }
  std::string dir_;
};

TEST_P(EngineDifferentialTest, ColumnarMatchesRowOracleByteForByte) {
  const uint64_t seed = GetParam();
  Random rng(seed * 7919 + 1);
  const bool empty_detail = seed % 7 == 3;
  const bool empty_base = seed % 7 == 5;
  Table detail = MakeDetail(seed, empty_detail ? 0 : 200 + seed * 37);
  Table base = MakeBase(detail, &rng, empty_base);
  ColumnTable columnar = ColumnTable::FromRowTable(detail).ValueOrDie();
  GmdjOp op = RandomOp(&rng);

  const std::string path =
      dir_ + "/detail_" + std::to_string(seed) + ".skc";
  WriteChunkFile(detail, path, /*chunk_rows=*/64).Check();

  const size_t hw = std::max<size_t>(2, std::thread::hardware_concurrency());
  for (bool sub : {false, true}) {
    for (bool compute_rng : {false, true}) {
      EvalContext context;
      context.sub_aggregates = sub;
      context.compute_rng = compute_rng;
      context.morsel_rows = 96;
      const std::string label =
          "seed=" + std::to_string(seed) + " sub=" + std::to_string(sub) +
          " rng=" + std::to_string(compute_rng);

      Table oracle = EvalGmdj(base, detail, op, context).ValueOrDie();
      const std::vector<uint8_t> expected = Bytes(oracle);

      for (size_t threads : {size_t{1}, hw}) {
        context.eval_threads = threads;

        // Resident columnar.
        Table resident =
            EvalGmdjColumnar(base, columnar, op, context).ValueOrDie();
        EXPECT_EQ(Bytes(resident), expected)
            << label << " threads=" << threads << "\noracle:\n"
            << oracle.ToString(30) << "columnar:\n"
            << resident.ToString(30);

        // Chunk-paged columnar at a tight and an unlimited buffer
        // budget, pruning on and off.
        for (uint64_t budget : {uint64_t{16} << 20, uint64_t{0}}) {
          for (bool pruning : {true, false}) {
            auto buffers = std::make_shared<BufferManager>(budget);
            auto provider =
                ChunkFileDataProvider::Open(path, buffers).ValueOrDie();
            context.chunk_pruning = pruning;
            Table chunked =
                EvalGmdjColumnar(base, *provider, op, context).ValueOrDie();
            EXPECT_EQ(Bytes(chunked), expected)
                << label << " threads=" << threads << " budget=" << budget
                << " pruning=" << pruning << "\noracle:\n"
                << oracle.ToString(30) << "chunked:\n"
                << chunked.ToString(30);
          }
          context.chunk_pruning = true;
        }
      }
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferentialTest,
                         ::testing::Range(uint64_t{0}, uint64_t{14}));

TEST(EnginePruningTest, StatsPruneChunksWithoutChangingBytes) {
  // Clustered detail: chunk-sized runs of disjoint iv ranges, so a
  // range conjunct disqualifies most chunks by min/max alone.
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"iv", ValueType::kInt64}})
                         .ValueOrDie();
  Table detail(schema);
  for (int64_t c = 0; c < 8; ++c) {
    for (int64_t i = 0; i < 64; ++i) {
      detail.AppendUnchecked({Value(i % 4), Value(c * 1000 + i)});
    }
  }
  const std::string path = "/tmp/skalla_engine_pruning_test.skc";
  WriteChunkFile(detail, path, /*chunk_rows=*/64).Check();
  auto buffers = std::make_shared<BufferManager>(0);
  auto provider = ChunkFileDataProvider::Open(path, buffers).ValueOrDie();

  SchemaPtr base_schema =
      Schema::Make({{"g", ValueType::kInt64}}).ValueOrDie();
  Table base(base_schema);
  for (int64_t g = 0; g < 4; ++g) base.AppendUnchecked({Value(g)});

  GmdjOp op;
  op.detail_table = "d";
  // Only the last chunk (iv >= 7000) can satisfy the range conjunct.
  op.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c"}, {AggKind::kSum, "iv", "s"}},
      And(Eq(RCol("g"), BCol("g")), Ge(RCol("iv"), Lit(Value(int64_t{7000}))))});

  EvalContext context;
  EvalProfile pruned_profile;
  context.profile = &pruned_profile;
  Table with_pruning =
      EvalGmdjColumnar(base, *provider, op, context).ValueOrDie();
  EXPECT_EQ(pruned_profile.chunks_pruned.load(), 7u);

  EvalProfile full_profile;
  context.profile = &full_profile;
  context.chunk_pruning = false;
  Table without_pruning =
      EvalGmdjColumnar(base, *provider, op, context).ValueOrDie();
  EXPECT_EQ(full_profile.chunks_pruned.load(), 0u);

  EXPECT_EQ(Bytes(with_pruning), Bytes(without_pruning));
  // And both agree with the row oracle.
  Table oracle = EvalGmdj(base, detail, op).ValueOrDie();
  EXPECT_EQ(Bytes(with_pruning), Bytes(oracle));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace skalla
