// ExecStats / RoundStats accounting invariants — on hand-built stats and
// on stats produced by really executing plans on both executors — plus
// the EXPLAIN ANALYZE report's consistency with the stats it renders.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "dist/async_exec.h"
#include "dist/warehouse.h"
#include "expr/builder.h"
#include "obs/stats_report.h"
#include "storage/partition.h"

namespace skalla {
namespace {

RoundStats MakeRound(const char* label, bool sync, uint64_t down_bytes,
                     uint64_t up_bytes, double site_max, double coord,
                     double comm) {
  RoundStats r;
  r.label = label;
  r.synchronized = sync;
  r.bytes_to_sites = down_bytes;
  r.bytes_to_coord = up_bytes;
  r.tuples_to_sites = down_bytes / 10;
  r.tuples_to_coord = up_bytes / 10;
  r.site_time_max = site_max;
  r.site_time_sum = site_max * 2;
  r.coord_time = coord;
  r.comm_time = comm;
  return r;
}

TEST(ExecStatsTest, TotalsAreSumsOverRounds) {
  ExecStats stats;
  stats.rounds.push_back(MakeRound("base", true, 0, 1000, 0.5, 0.1, 0.2));
  stats.rounds.push_back(MakeRound("md1", false, 0, 0, 0.3, 0.0, 0.0));
  stats.rounds.push_back(MakeRound("md2", true, 400, 2000, 0.7, 0.2, 0.4));

  EXPECT_EQ(stats.TotalBytesToSites(), 400u);
  EXPECT_EQ(stats.TotalBytesToCoord(), 3000u);
  EXPECT_EQ(stats.TotalBytes(),
            stats.TotalBytesToSites() + stats.TotalBytesToCoord());
  EXPECT_EQ(stats.TotalTuplesTransferred(), 40u + 300u);

  double per_round = 0;
  for (const RoundStats& r : stats.rounds) per_round += r.ResponseTime();
  EXPECT_DOUBLE_EQ(stats.ResponseTime(), per_round);

  size_t sync_rounds = 0;
  for (const RoundStats& r : stats.rounds) {
    if (r.synchronized) ++sync_rounds;
  }
  EXPECT_EQ(stats.NumSyncRounds(), sync_rounds);
  EXPECT_EQ(stats.NumSyncRounds(), 2u);
}

TEST(ExecStatsTest, RoundResponseTimeCombinesCommSiteAndCoord) {
  RoundStats r = MakeRound("base", true, 0, 0, 0.25, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(r.ResponseTime(), 1.0 + 0.25 + 0.5);
}

TEST(ExecStatsTest, EmptyStatsAreAllZero) {
  ExecStats stats;
  EXPECT_EQ(stats.TotalBytes(), 0u);
  EXPECT_EQ(stats.TotalTuplesTransferred(), 0u);
  EXPECT_DOUBLE_EQ(stats.ResponseTime(), 0.0);
  EXPECT_EQ(stats.NumSyncRounds(), 0u);
}

// --- Invariants on really-executed plans -----------------------------------

Table MakeFlowTable(uint64_t seed, size_t rows) {
  Random rng(seed);
  SchemaPtr schema = Schema::Make({{"SAS", ValueType::kInt64},
                                   {"DAS", ValueType::kInt64},
                                   {"NB", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendUnchecked({Value(rng.UniformInt(0, 7)),
                       Value(rng.UniformInt(0, 5)),
                       Value(rng.UniformInt(1, 1000))});
  }
  return t;
}

GmdjExpr CorrelatedExpr() {
  GmdjExpr expr;
  expr.base = BaseQuery{"flow", {"SAS"}, true, nullptr};
  ExprPtr group = Eq(RCol("SAS"), BCol("SAS"));
  GmdjOp md1;
  md1.detail_table = "flow";
  md1.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "cnt1"}, {AggKind::kSum, "NB", "sum1"}},
      group});
  GmdjOp md2;
  md2.detail_table = "flow";
  md2.blocks.push_back(
      GmdjBlock{{{AggKind::kCountStar, "", "cnt2"}},
                And(group, Ge(RCol("NB"), Div(BCol("sum1"), BCol("cnt1"))))});
  expr.ops = {md1, md2};
  return expr;
}

void CheckInvariants(const DistributedPlan& plan, const ExecStats& stats) {
  // One RoundStats per stage plus the base round.
  ASSERT_EQ(stats.rounds.size(), plan.stages.size() + 1);

  uint64_t down = 0, up = 0, tuples = 0;
  double response = 0;
  size_t sync_rounds = 0;
  for (const RoundStats& r : stats.rounds) {
    down += r.bytes_to_sites;
    up += r.bytes_to_coord;
    tuples += r.tuples_to_sites + r.tuples_to_coord;
    response += r.ResponseTime();
    if (r.synchronized) ++sync_rounds;
  }
  EXPECT_EQ(stats.TotalBytesToSites(), down);
  EXPECT_EQ(stats.TotalBytesToCoord(), up);
  EXPECT_EQ(stats.TotalBytes(),
            stats.TotalBytesToSites() + stats.TotalBytesToCoord());
  EXPECT_EQ(stats.TotalTuplesTransferred(), tuples);
  EXPECT_DOUBLE_EQ(stats.ResponseTime(), response);
  EXPECT_EQ(stats.NumSyncRounds(), sync_rounds);
  // The plan promised exactly this many synchronization rounds.
  EXPECT_EQ(stats.NumSyncRounds(), plan.NumSyncRounds());
}

TEST(ExecStatsTest, ExecutedPlanSatisfiesInvariants) {
  Table flow = MakeFlowTable(7, 600);
  for (int mask = 0; mask < 4; ++mask) {
    OptimizerOptions opts;
    opts.indep_group_reduction = mask & 1;
    opts.sync_reduction = mask & 2;
    DistributedWarehouse dw(3);
    dw.AddTablePartitionedBy("flow", flow, "SAS", {"DAS", "NB"}).Check();
    DistributedPlan plan = dw.Plan(CorrelatedExpr(), opts).ValueOrDie();
    ExecStats stats;
    ASSERT_TRUE(dw.ExecutePlan(plan, &stats).ok());
    CheckInvariants(plan, stats);
  }
}

TEST(ExecStatsTest, AsyncExecutorSatisfiesInvariants) {
  Table flow = MakeFlowTable(11, 600);
  DistributedWarehouse dw(3);
  dw.AddTablePartitionedBy("flow", flow, "SAS", {"DAS", "NB"}).Check();
  DistributedPlan plan =
      dw.Plan(CorrelatedExpr(), OptimizerOptions::All()).ValueOrDie();

  std::vector<Table> parts =
      PartitionByModulo(flow, "SAS", 3).ValueOrDie();
  std::vector<Site> sites;
  for (size_t i = 0; i < parts.size(); ++i) {
    Catalog catalog;
    catalog.Register("flow", parts[i]);
    sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  AsyncExecutor executor(std::move(sites));
  ExecStats stats;
  ASSERT_TRUE(executor.Execute(plan, &stats).ok());
  CheckInvariants(plan, stats);
}

// --- EXPLAIN ANALYZE consistency --------------------------------------------

TEST(ExecStatsTest, StatsReportRendersPerStageAndTotalCounts) {
  Table flow = MakeFlowTable(13, 500);
  DistributedWarehouse dw(3);
  dw.AddTablePartitionedBy("flow", flow, "SAS", {"DAS", "NB"}).Check();
  DistributedPlan plan =
      dw.Plan(CorrelatedExpr(), OptimizerOptions::None()).ValueOrDie();
  ExecStats stats;
  ASSERT_TRUE(dw.ExecutePlan(plan, &stats).ok());

  std::string report = obs::FormatStatsReport(plan, stats, 3);
  // One "analyzed:" line per round (base + each stage).
  size_t lines = 0;
  for (size_t pos = report.find("analyzed:"); pos != std::string::npos;
       pos = report.find("analyzed:", pos + 1)) {
    ++lines;
  }
  EXPECT_EQ(lines, stats.rounds.size());
  // Every per-round byte/tuple figure appears verbatim.
  for (const RoundStats& r : stats.rounds) {
    EXPECT_NE(report.find(StrCat(r.bytes_to_coord, " bytes")),
              std::string::npos)
        << report;
    EXPECT_NE(report.find(StrCat(r.tuples_to_coord, " tuples")),
              std::string::npos)
        << report;
  }
  // And the totals line matches the ExecStats accessors.
  EXPECT_NE(report.find(StrCat("total: ", stats.TotalBytes(), " bytes (",
                               stats.TotalBytesToSites(), " down, ",
                               stats.TotalBytesToCoord(), " up)")),
            std::string::npos)
      << report;
  EXPECT_NE(
      report.find(StrCat(stats.NumSyncRounds(), " sync rounds")),
      std::string::npos)
      << report;
}

TEST(ExecStatsTest, StatsReportFlagsMismatchedStats) {
  DistributedPlan plan;
  plan.base = BaseQuery{"flow", {"SAS"}, true, nullptr};
  ExecStats stats;  // No rounds: cannot belong to any executed plan.
  std::string report = obs::FormatStatsReport(plan, stats, 3);
  EXPECT_NE(report.find("was this ExecStats produced by this plan?"),
            std::string::npos)
      << report;
}

}  // namespace
}  // namespace skalla
