// Cross-executor consistency matrix: the same optimized plan executed by
// every engine variant — synchronous star, parallel sites, row-blocked,
// columnar sites, asynchronous/pipelined, and coordinator trees of two
// fanouts — through the unified skalla::Executor interface, crossed with
// coordinator_shards ∈ {1, 4}. Every combination must produce results
// identical to the centralized evaluator; sharding must leave results
// (including row order, for the engines with deterministic fragment
// arrival), transfer bytes, and tuple counts exactly as the sequential
// merge produced them; where byte accounting is defined the same way as
// the star's (all variants but the tree), byte counts match the star
// baseline too.

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "dist/async_exec.h"
#include "dist/tree.h"
#include "dist/warehouse.h"
#include "sql/parser.h"
#include "storage/partition.h"
#include "types/row.h"

namespace skalla {
namespace {

constexpr size_t kSites = 6;

Table MakeData() {
  Random rng(97);
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"h", ValueType::kInt64},
                                   {"v", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (int i = 0; i < 1500; ++i) {
    t.AppendUnchecked({Value(rng.UniformInt(0, 39)),
                       Value(rng.UniformInt(0, 7)),
                       Value(rng.UniformInt(0, 999))});
  }
  return t;
}

std::vector<Site> MakeSites(const std::vector<Table>& parts) {
  std::vector<Site> sites;
  for (size_t i = 0; i < parts.size(); ++i) {
    Catalog catalog;
    catalog.Register("d", parts[i]);
    sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  return sites;
}

// Row-for-row equality including order — pins that sharded merging
// reproduces the sequential merge's output exactly, not just as a set.
bool ExactlyEqual(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    if (!RowEquals(a.row(r), b.row(r))) return false;
  }
  return true;
}

struct Variant {
  const char* name;
  ExecutorOptions options;
  // How byte accounting relates to the star baseline: "exact" variants
  // ship identical messages; "blocked" splits them (more headers);
  // "tree" adds inter-coordinator links.
  bool bytes_match_star;
};

// Builds the variant's engine behind the unified interface.
std::unique_ptr<Executor> MakeExecutor(const std::string& name,
                                       const std::vector<Table>& parts,
                                       const ExecutorOptions& options) {
  if (name == "async") {
    return std::make_unique<AsyncExecutor>(MakeSites(parts), NetworkConfig{},
                                           options);
  }
  if (name == "tree2" || name == "tree3") {
    size_t fanout = name == "tree2" ? 2 : 3;
    return std::make_unique<TreeExecutor>(
        MakeSites(parts), CoordinatorTree::Balanced(kSites, fanout),
        NetworkConfig{}, options);
  }
  return std::make_unique<DistributedExecutor>(MakeSites(parts),
                                               NetworkConfig{}, options);
}

TEST(ExecutorMatrixTest, AllEnginesAgreeAcrossShardCounts) {
  Table data = MakeData();
  std::vector<Table> parts = PartitionByValue(data, "g", kSites).ValueOrDie();

  DistributedWarehouse dw(kSites);
  {
    std::vector<Table> copy = parts;
    dw.AddPartitionedTable("d", std::move(copy), {"g", "h", "v"}).Check();
  }

  GmdjExpr query = ParseQuery(R"(
    BASE SELECT DISTINCT g FROM d;
    MD USING d
       COMPUTE COUNT(*) AS c1, SUM(v) AS s1, MAX(v) AS m1
       WHERE r.g = b.g;
    MD USING d
       COMPUTE COUNT(*) AS c2
       WHERE r.g = b.g AND r.v * 2 >= b.m1;
  )").ValueOrDie();

  ExecutorOptions parallel;
  parallel.parallel_sites = true;
  ExecutorOptions blocked;
  blocked.ship_block_rows = 11;
  ExecutorOptions columnar;
  columnar.columnar_sites = true;
  const Variant variants[] = {
      {"star", {}, true},        {"parallel", parallel, true},
      {"blocked", blocked, false}, {"columnar", columnar, true},
      {"async", {}, true},       {"tree2", {}, false},
      {"tree3", {}, false},
  };

  for (int opt_mask : {0, 15}) {
    OptimizerOptions opts;
    opts.coalescing = opt_mask & 1;
    opts.indep_group_reduction = opt_mask & 2;
    opts.aware_group_reduction = opt_mask & 4;
    opts.sync_reduction = opt_mask & 8;
    DistributedPlan plan = dw.Plan(query, opts).ValueOrDie();

    Table reference = dw.ExecuteCentralized(query).ValueOrDie();

    // Star baseline for cross-variant byte accounting.
    ExecStats star_stats;
    {
      std::unique_ptr<Executor> star = MakeExecutor("star", parts, {});
      Table star_result = star->Execute(plan, &star_stats).ValueOrDie();
      ASSERT_TRUE(star_result.SameRows(reference))
          << "star, opts " << opt_mask;
    }

    for (const Variant& variant : variants) {
      // Sequential-merge run: the pinned baseline for this variant.
      ExecutorOptions seq_options = variant.options;
      seq_options.coordinator_shards = 1;
      std::unique_ptr<Executor> seq_exec =
          MakeExecutor(variant.name, parts, seq_options);
      ExecStats seq_stats;
      Table seq_result = seq_exec->Execute(plan, &seq_stats).ValueOrDie();
      EXPECT_TRUE(seq_result.SameRows(reference))
          << variant.name << ", opts " << opt_mask;
      EXPECT_EQ(seq_stats.rounds.size(), plan.stages.size() + 1)
          << variant.name << ", opts " << opt_mask;

      if (variant.bytes_match_star) {
        EXPECT_EQ(seq_stats.TotalBytes(), star_stats.TotalBytes())
            << variant.name << ", opts " << opt_mask;
      }
      if (std::string(variant.name).rfind("tree", 0) != 0) {
        EXPECT_EQ(seq_stats.TotalTuplesTransferred(),
                  star_stats.TotalTuplesTransferred())
            << variant.name << ", opts " << opt_mask;
      }

      // Sharded-merge run: results (row for row), bytes, and tuples must
      // be exactly what the sequential merge produced. The async engine
      // is the one exception to row-order pinning: its output order
      // follows fragment *arrival* order, which varies between two
      // executions regardless of the shard count (the sharded merge
      // reproduces the sequential merge for a given arrival stream —
      // pinned at the coordinator level in coordinator_test.cc — but two
      // async runs see different streams).
      ExecutorOptions sharded_options = variant.options;
      sharded_options.coordinator_shards = 4;
      std::unique_ptr<Executor> sharded_exec =
          MakeExecutor(variant.name, parts, sharded_options);
      ExecStats sharded_stats;
      Table sharded_result =
          sharded_exec->Execute(plan, &sharded_stats).ValueOrDie();
      if (std::string(variant.name) == "async") {
        EXPECT_TRUE(sharded_result.SameRows(seq_result))
            << variant.name << " shards=4, opts " << opt_mask;
      } else {
        EXPECT_TRUE(ExactlyEqual(sharded_result, seq_result))
            << variant.name << " shards=4, opts " << opt_mask;
      }
      EXPECT_EQ(sharded_stats.TotalBytes(), seq_stats.TotalBytes())
          << variant.name << " shards=4, opts " << opt_mask;
      EXPECT_EQ(sharded_stats.TotalBytesToSites(),
                seq_stats.TotalBytesToSites())
          << variant.name << " shards=4, opts " << opt_mask;
      EXPECT_EQ(sharded_stats.TotalBytesToCoord(),
                seq_stats.TotalBytesToCoord())
          << variant.name << " shards=4, opts " << opt_mask;
      EXPECT_EQ(sharded_stats.TotalTuplesTransferred(),
                seq_stats.TotalTuplesTransferred())
          << variant.name << " shards=4, opts " << opt_mask;
      EXPECT_EQ(sharded_stats.RootBytes(), seq_stats.RootBytes())
          << variant.name << " shards=4, opts " << opt_mask;

      // Intra-site parallel run: eval_threads is scheduling-only, so
      // results (row for row, async excepted as above) and every byte
      // count must be exactly the sequential-evaluation baseline's.
      ExecutorOptions threaded_options = variant.options;
      threaded_options.eval_threads = 4;
      std::unique_ptr<Executor> threaded_exec =
          MakeExecutor(variant.name, parts, threaded_options);
      ExecStats threaded_stats;
      Table threaded_result =
          threaded_exec->Execute(plan, &threaded_stats).ValueOrDie();
      if (std::string(variant.name) == "async") {
        EXPECT_TRUE(threaded_result.SameRows(seq_result))
            << variant.name << " eval_threads=4, opts " << opt_mask;
      } else {
        EXPECT_TRUE(ExactlyEqual(threaded_result, seq_result))
            << variant.name << " eval_threads=4, opts " << opt_mask;
      }
      EXPECT_EQ(threaded_stats.TotalBytes(), seq_stats.TotalBytes())
          << variant.name << " eval_threads=4, opts " << opt_mask;
      EXPECT_EQ(threaded_stats.TotalTuplesTransferred(),
                seq_stats.TotalTuplesTransferred())
          << variant.name << " eval_threads=4, opts " << opt_mask;
    }
  }
}

}  // namespace
}  // namespace skalla
