// Cross-executor consistency matrix: the same optimized plan executed by
// every engine variant — synchronous star, parallel sites, row-blocked,
// columnar sites, asynchronous/pipelined, and coordinator trees of two
// fanouts — produces identical results; where byte accounting is defined
// the same way (all but the tree), identical transfer counts too.

#include <gtest/gtest.h>

#include "common/random.h"
#include "dist/async_exec.h"
#include "dist/tree.h"
#include "dist/warehouse.h"
#include "sql/parser.h"
#include "storage/partition.h"

namespace skalla {
namespace {

constexpr size_t kSites = 6;

Table MakeData() {
  Random rng(97);
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"h", ValueType::kInt64},
                                   {"v", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (int i = 0; i < 1500; ++i) {
    t.AppendUnchecked({Value(rng.UniformInt(0, 39)),
                       Value(rng.UniformInt(0, 7)),
                       Value(rng.UniformInt(0, 999))});
  }
  return t;
}

std::vector<Site> MakeSites(const std::vector<Table>& parts) {
  std::vector<Site> sites;
  for (size_t i = 0; i < parts.size(); ++i) {
    Catalog catalog;
    catalog.Register("d", parts[i]);
    sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  return sites;
}

TEST(ExecutorMatrixTest, AllEnginesAgree) {
  Table data = MakeData();
  std::vector<Table> parts = PartitionByValue(data, "g", kSites).ValueOrDie();

  DistributedWarehouse dw(kSites);
  {
    std::vector<Table> copy = parts;
    dw.AddPartitionedTable("d", std::move(copy), {"g", "h", "v"}).Check();
  }

  GmdjExpr query = ParseQuery(R"(
    BASE SELECT DISTINCT g FROM d;
    MD USING d
       COMPUTE COUNT(*) AS c1, SUM(v) AS s1, MAX(v) AS m1
       WHERE r.g = b.g;
    MD USING d
       COMPUTE COUNT(*) AS c2
       WHERE r.g = b.g AND r.v * 2 >= b.m1;
  )").ValueOrDie();

  for (int opt_mask : {0, 15}) {
    OptimizerOptions opts;
    opts.coalescing = opt_mask & 1;
    opts.indep_group_reduction = opt_mask & 2;
    opts.aware_group_reduction = opt_mask & 4;
    opts.sync_reduction = opt_mask & 8;
    DistributedPlan plan = dw.Plan(query, opts).ValueOrDie();

    Table reference = dw.ExecuteCentralized(query).ValueOrDie();

    // 1. Synchronous star (baseline for byte accounting).
    ExecStats star_stats;
    DistributedExecutor star(MakeSites(parts));
    Table star_result = star.Execute(plan, &star_stats).ValueOrDie();
    ASSERT_TRUE(star_result.SameRows(reference)) << "star, opts " << opt_mask;

    struct Variant {
      const char* name;
      ExecutorOptions options;
    };
    ExecutorOptions parallel;
    parallel.parallel_sites = true;
    ExecutorOptions blocked;
    blocked.ship_block_rows = 11;
    ExecutorOptions columnar;
    columnar.columnar_sites = true;
    const Variant variants[] = {
        {"parallel", parallel},
        {"blocked", blocked},
        {"columnar", columnar},
    };
    for (const Variant& variant : variants) {
      std::vector<Site> sites = MakeSites(parts);
      if (variant.options.columnar_sites) {
        for (Site& site : sites) site.EnableColumnarCache().Check();
      }
      DistributedExecutor executor(std::move(sites), NetworkConfig{},
                                   variant.options);
      ExecStats stats;
      Table result = executor.Execute(plan, &stats).ValueOrDie();
      EXPECT_TRUE(result.SameRows(reference))
          << variant.name << ", opts " << opt_mask;
      EXPECT_EQ(stats.TotalTuplesTransferred(),
                star_stats.TotalTuplesTransferred())
          << variant.name << ", opts " << opt_mask;
      if (variant.options.ship_block_rows == 0) {
        EXPECT_EQ(stats.TotalBytes(), star_stats.TotalBytes())
            << variant.name << ", opts " << opt_mask;
      }
    }

    // 2. Asynchronous pipelined executor.
    AsyncExecutor async(MakeSites(parts));
    ExecStats async_stats;
    Table async_result = async.Execute(plan, &async_stats).ValueOrDie();
    EXPECT_TRUE(async_result.SameRows(reference)) << "async, opts "
                                                  << opt_mask;
    EXPECT_EQ(async_stats.TotalBytes(), star_stats.TotalBytes())
        << "async, opts " << opt_mask;

    // 3. Coordinator trees.
    for (size_t fanout : {size_t{2}, size_t{3}}) {
      TreeExecutor tree(MakeSites(parts),
                        CoordinatorTree::Balanced(kSites, fanout));
      TreeExecStats tree_stats;
      Table tree_result = tree.Execute(plan, &tree_stats).ValueOrDie();
      EXPECT_TRUE(tree_result.SameRows(reference))
          << "tree fanout " << fanout << ", opts " << opt_mask;
    }
  }
}

}  // namespace
}  // namespace skalla
