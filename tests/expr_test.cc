#include "expr/expr.h"

#include <gtest/gtest.h>

#include "expr/builder.h"
#include "types/schema.h"

namespace skalla {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = Schema::Make({{"gk", ValueType::kInt64},
                          {"avg1", ValueType::kFloat64}})
                .ValueOrDie();
    detail_ = Schema::Make({{"gk", ValueType::kInt64},
                            {"v", ValueType::kInt64},
                            {"name", ValueType::kString}})
                  .ValueOrDie();
  }

  Value EvalOn(const ExprPtr& e, const Row& b, const Row& r) {
    ExprPtr bound = e->Bind(base_.get(), detail_.get()).ValueOrDie();
    return bound->Eval(&b, &r);
  }

  SchemaPtr base_;
  SchemaPtr detail_;
};

TEST_F(ExprTest, LiteralEval) {
  EXPECT_EQ(EvalOn(Lit(Value(7)), {}, {}).int64(), 7);
}

TEST_F(ExprTest, ColumnRefBothSides) {
  Row b = {Value(10), Value(2.5)};
  Row r = {Value(10), Value(99), Value("x")};
  EXPECT_EQ(EvalOn(BCol("gk"), b, r).int64(), 10);
  EXPECT_EQ(EvalOn(RCol("v"), b, r).int64(), 99);
  EXPECT_DOUBLE_EQ(EvalOn(BCol("avg1"), b, r).float64(), 2.5);
}

TEST_F(ExprTest, BindFailsOnUnknownColumn) {
  auto r = BCol("missing")->Bind(base_.get(), detail_.get());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(ExprTest, BindFailsOnMissingSideSchema) {
  auto r = RCol("v")->Bind(base_.get(), nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(ExprTest, IntArithmeticStaysInt) {
  Row b = {Value(10), Value(0.0)};
  Row r = {Value(3), Value(4), Value("")};
  Value sum = EvalOn(Add(RCol("gk"), RCol("v")), b, r);
  EXPECT_TRUE(sum.is_int64());
  EXPECT_EQ(sum.int64(), 7);
  Value prod = EvalOn(Mul(RCol("gk"), RCol("v")), b, r);
  EXPECT_EQ(prod.int64(), 12);
}

TEST_F(ExprTest, DivisionAlwaysReal) {
  Row b = {Value(10), Value(0.0)};
  Row r = {Value(7), Value(2), Value("")};
  Value q = EvalOn(Div(RCol("gk"), RCol("v")), b, r);
  ASSERT_TRUE(q.is_float64());
  EXPECT_DOUBLE_EQ(q.float64(), 3.5);
}

TEST_F(ExprTest, DivisionByZeroIsNull) {
  Row b = {Value(10), Value(0.0)};
  Row r = {Value(7), Value(0), Value("")};
  EXPECT_TRUE(EvalOn(Div(RCol("gk"), RCol("v")), b, r).is_null());
}

TEST_F(ExprTest, NullPropagationInArithmetic) {
  Row b = {Value::Null(), Value(0.0)};
  Row r = {Value(7), Value(2), Value("")};
  EXPECT_TRUE(EvalOn(Add(BCol("gk"), RCol("v")), b, r).is_null());
}

TEST_F(ExprTest, ComparisonWithNullIsFalse) {
  Row b = {Value::Null(), Value(0.0)};
  Row r = {Value(7), Value(2), Value("")};
  ExprPtr cmp = Eq(BCol("gk"), RCol("gk"));
  ExprPtr bound = cmp->Bind(base_.get(), detail_.get()).ValueOrDie();
  EXPECT_FALSE(bound->EvalBool(&b, &r));
  // And NOT(null-comparison) is also not true under 3VL-lite: Eval gives
  // NULL, which EvalBool maps to false; NOT(NULL) stays NULL.
  ExprPtr neg = Not(cmp)->Bind(base_.get(), detail_.get()).ValueOrDie();
  EXPECT_FALSE(neg->EvalBool(&b, &r));
}

TEST_F(ExprTest, ComparisonOperators) {
  Row b = {Value(5), Value(0.0)};
  Row r = {Value(5), Value(9), Value("abc")};
  EXPECT_TRUE(EvalOn(Eq(BCol("gk"), RCol("gk")), b, r).int64());
  EXPECT_TRUE(EvalOn(Le(BCol("gk"), RCol("v")), b, r).int64());
  EXPECT_FALSE(EvalOn(Gt(BCol("gk"), RCol("v")), b, r).int64());
  EXPECT_TRUE(EvalOn(Ne(RCol("name"), Lit(Value("abd"))), b, r).int64());
  EXPECT_TRUE(EvalOn(Lt(RCol("name"), Lit(Value("abd"))), b, r).int64());
}

TEST_F(ExprTest, CrossTypeNumericComparison) {
  Row b = {Value(5), Value(5.0)};
  Row r = {Value(5), Value(9), Value("")};
  EXPECT_TRUE(EvalOn(Eq(BCol("avg1"), RCol("gk")), b, r).int64());
  EXPECT_TRUE(EvalOn(Ge(RCol("v"), BCol("avg1")), b, r).int64());
}

TEST_F(ExprTest, BooleanConnectives) {
  Row b = {Value(5), Value(0.0)};
  Row r = {Value(5), Value(9), Value("")};
  ExprPtr t = Eq(BCol("gk"), RCol("gk"));
  ExprPtr f = Gt(BCol("gk"), RCol("v"));
  EXPECT_TRUE(EvalOn(And(t, t), b, r).int64());
  EXPECT_FALSE(EvalOn(And(t, f), b, r).int64());
  EXPECT_TRUE(EvalOn(Or(f, t), b, r).int64());
  EXPECT_FALSE(EvalOn(Or(f, f), b, r).int64());
  EXPECT_TRUE(EvalOn(Not(f), b, r).int64());
}

TEST_F(ExprTest, UnaryNeg) {
  Row b = {Value(5), Value(2.5)};
  Row r = {Value(0), Value(0), Value("")};
  EXPECT_EQ(EvalOn(Expr::Unary(UnaryOp::kNeg, BCol("gk")), b, r).int64(), -5);
  EXPECT_DOUBLE_EQ(
      EvalOn(Expr::Unary(UnaryOp::kNeg, BCol("avg1")), b, r).float64(), -2.5);
}

TEST_F(ExprTest, Example1CorrelatedCondition) {
  // F1.NB >= sum1/cnt1 from the paper's Example 1.
  SchemaPtr b_schema = Schema::Make({{"SAS", ValueType::kInt64},
                                     {"DAS", ValueType::kInt64},
                                     {"cnt1", ValueType::kInt64},
                                     {"sum1", ValueType::kInt64}})
                           .ValueOrDie();
  SchemaPtr r_schema = Schema::Make({{"SAS", ValueType::kInt64},
                                     {"DAS", ValueType::kInt64},
                                     {"NB", ValueType::kInt64}})
                           .ValueOrDie();
  ExprPtr theta = And(And(Eq(RCol("SAS"), BCol("SAS")),
                          Eq(RCol("DAS"), BCol("DAS"))),
                      Ge(RCol("NB"), Div(BCol("sum1"), BCol("cnt1"))));
  ExprPtr bound = theta->Bind(b_schema.get(), r_schema.get()).ValueOrDie();
  Row b = {Value(1), Value(2), Value(4), Value(100)};  // avg = 25.
  Row r_hi = {Value(1), Value(2), Value(30)};
  Row r_lo = {Value(1), Value(2), Value(20)};
  Row r_other = {Value(9), Value(2), Value(30)};
  EXPECT_TRUE(bound->EvalBool(&b, &r_hi));
  EXPECT_FALSE(bound->EvalBool(&b, &r_lo));
  EXPECT_FALSE(bound->EvalBool(&b, &r_other));
}

TEST_F(ExprTest, StructuralEquality) {
  ExprPtr a = And(Eq(BCol("gk"), RCol("gk")), Lt(RCol("v"), Lit(Value(5))));
  ExprPtr b = And(Eq(BCol("gk"), RCol("gk")), Lt(RCol("v"), Lit(Value(5))));
  ExprPtr c = And(Eq(BCol("gk"), RCol("gk")), Lt(RCol("v"), Lit(Value(6))));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
}

TEST_F(ExprTest, CollectColumnsAndReferencesSide) {
  ExprPtr e = And(Eq(BCol("gk"), RCol("gk")),
                  Ge(RCol("v"), Div(BCol("avg1"), Lit(Value(2)))));
  std::vector<std::string> base_cols;
  e->CollectColumns(ExprSide::kBase, &base_cols);
  ASSERT_EQ(base_cols.size(), 2u);
  EXPECT_EQ(base_cols[0], "gk");
  EXPECT_EQ(base_cols[1], "avg1");
  EXPECT_TRUE(e->ReferencesSide(ExprSide::kDetail));
  EXPECT_FALSE(Lit(Value(1))->ReferencesSide(ExprSide::kBase));
}

TEST_F(ExprTest, ToStringRendering) {
  ExprPtr e = Eq(BCol("x"), RCol("y"));
  EXPECT_EQ(e->ToString(), "(b.x = r.y)");
}

}  // namespace
}  // namespace skalla
