// Fault injection and site-retry recovery, in the synchronous executor
// and in the pipelined AsyncExecutor (which shares the retry policy via
// ExecutorOptions).

#include "dist/fault.h"

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/random.h"
#include <memory>

#include "dist/async_exec.h"
#include "dist/warehouse.h"
#include "expr/builder.h"
#include "rpc/rpc_executor.h"
#include "rpc/transport.h"
#include "storage/partition.h"

namespace skalla {
namespace {

Table MakeFlow(size_t rows) {
  Random rng(61);
  SchemaPtr schema = Schema::Make({{"SAS", ValueType::kInt64},
                                   {"NB", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendUnchecked(
        {Value(rng.UniformInt(0, 11)), Value(rng.UniformInt(1, 300))});
  }
  return t;
}

GmdjExpr SimpleQuery() {
  GmdjExpr expr;
  expr.base = BaseQuery{"flow", {"SAS"}, true, nullptr};
  GmdjOp md1;
  md1.detail_table = "flow";
  md1.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c"}, {AggKind::kAvg, "NB", "a"}},
      Eq(RCol("SAS"), BCol("SAS"))});
  GmdjOp md2;
  md2.detail_table = "flow";
  md2.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c2"}},
      And(Eq(RCol("SAS"), BCol("SAS")), Ge(RCol("NB"), BCol("a")))});
  expr.ops = {md1, md2};
  return expr;
}

Result<Table> RunWithFaults(const Table& flow, FaultInjector* injector,
                            size_t retries, ExecStats* stats,
                            const OptimizerOptions& opts) {
  ExecutorOptions exec_options;
  exec_options.fault_injector = injector;
  exec_options.max_site_retries = retries;
  DistributedWarehouse dw(4, NetworkConfig{}, exec_options);
  Status s = dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"});
  if (!s.ok()) return s;
  return dw.Execute(SimpleQuery(), opts, stats);
}

TEST(FaultTest, TransientFailuresRecoverWithRetry) {
  Table flow = MakeFlow(600);
  DistributedWarehouse reference_dw(4);
  reference_dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"}).Check();
  Table expected =
      reference_dw.ExecuteCentralized(SimpleQuery()).ValueOrDie();

  TransientFaultInjector injector(/*failures=*/1);
  ExecStats stats;
  Table result = RunWithFaults(flow, &injector, /*retries=*/2, &stats,
                               OptimizerOptions::None())
                     .ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
  EXPECT_GT(injector.injected(), 0);
  size_t total_retries = 0;
  for (const RoundStats& r : stats.rounds) total_retries += r.site_retries;
  // Every (site, round) pair failed once: 4 sites x 3 rounds.
  EXPECT_EQ(total_retries, 12u);
}

TEST(FaultTest, ExhaustedRetriesSurfaceTheFailure) {
  Table flow = MakeFlow(200);
  TransientFaultInjector injector(/*failures=*/3);
  ExecStats stats;
  auto result = RunWithFaults(flow, &injector, /*retries=*/1, &stats,
                              OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(FaultTest, PermanentSiteFailureAborts) {
  Table flow = MakeFlow(200);
  PermanentSiteFailure injector(/*site=*/2);
  auto result = RunWithFaults(flow, &injector, /*retries=*/5, nullptr,
                              OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("site 2"), std::string::npos);
}

TEST(FaultTest, RecoveryWorksUnderAllOptimizations) {
  Table flow = MakeFlow(600);
  DistributedWarehouse reference_dw(4);
  reference_dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"}).Check();
  Table expected =
      reference_dw.ExecuteCentralized(SimpleQuery()).ValueOrDie();

  TransientFaultInjector injector(/*failures=*/1);
  Table result = RunWithFaults(flow, &injector, /*retries=*/1, nullptr,
                               OptimizerOptions::All())
                     .ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
}

// Same scenario through the AsyncExecutor: plans built by the warehouse,
// sites constructed directly so the executor choice is explicit.
Result<Table> RunAsyncWithFaults(const Table& flow, FaultInjector* injector,
                                 size_t retries, ExecStats* stats,
                                 const OptimizerOptions& opts) {
  const size_t kSites = 4;
  DistributedWarehouse dw(kSites);
  Status s = dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"});
  if (!s.ok()) return s;
  SKALLA_ASSIGN_OR_RETURN(DistributedPlan plan, dw.Plan(SimpleQuery(), opts));
  SKALLA_ASSIGN_OR_RETURN(std::vector<Table> parts,
                          PartitionByValue(flow, "SAS", kSites));
  std::vector<Site> sites;
  for (size_t i = 0; i < kSites; ++i) {
    Catalog catalog;
    catalog.Register("flow", parts[i]);
    sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  ExecutorOptions exec_options;
  exec_options.fault_injector = injector;
  exec_options.max_site_retries = retries;
  AsyncExecutor executor(std::move(sites), NetworkConfig{}, exec_options);
  return executor.Execute(plan, stats);
}

TEST(FaultTest, AsyncTransientFailuresRecoverWithRetry) {
  Table flow = MakeFlow(600);
  DistributedWarehouse reference_dw(4);
  reference_dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"}).Check();
  Table expected =
      reference_dw.ExecuteCentralized(SimpleQuery()).ValueOrDie();

  TransientFaultInjector injector(/*failures=*/1);
  ExecStats stats;
  Table result = RunAsyncWithFaults(flow, &injector, /*retries=*/2, &stats,
                                    OptimizerOptions::None())
                     .ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
  EXPECT_GT(injector.injected(), 0);
  size_t total_retries = 0;
  for (const RoundStats& r : stats.rounds) total_retries += r.site_retries;
  // Every (site, round) pair failed once: 4 sites x 3 rounds.
  EXPECT_EQ(total_retries, 12u);
}

TEST(FaultTest, AsyncExhaustedRetriesSurfaceTheFailure) {
  Table flow = MakeFlow(200);
  TransientFaultInjector injector(/*failures=*/3);
  auto result = RunAsyncWithFaults(flow, &injector, /*retries=*/1, nullptr,
                                   OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(FaultTest, AsyncPermanentSiteFailureAborts) {
  Table flow = MakeFlow(200);
  PermanentSiteFailure injector(/*site=*/2);
  auto result = RunAsyncWithFaults(flow, &injector, /*retries=*/5, nullptr,
                                   OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("site 2"), std::string::npos);
}

// Same scenario again through the RpcExecutor (in-process transport):
// the retry loop is the shared ExecuteSiteRound, so recovery and
// accounting must be identical to the simulated engines.
Result<Table> RunRpcWithFaults(const Table& flow, FaultInjector* injector,
                               size_t retries, ExecStats* stats,
                               const OptimizerOptions& opts) {
  const size_t kSites = 4;
  DistributedWarehouse dw(kSites);
  Status s = dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"});
  if (!s.ok()) return s;
  SKALLA_ASSIGN_OR_RETURN(DistributedPlan plan, dw.Plan(SimpleQuery(), opts));
  SKALLA_ASSIGN_OR_RETURN(std::vector<Table> parts,
                          PartitionByValue(flow, "SAS", kSites));
  std::vector<Site> sites;
  for (size_t i = 0; i < kSites; ++i) {
    Catalog catalog;
    catalog.Register("flow", parts[i]);
    sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  ExecutorOptions exec_options;
  exec_options.fault_injector = injector;
  exec_options.max_site_retries = retries;
  rpc::RpcExecutor executor(
      std::make_unique<rpc::InProcessTransport>(std::move(sites)),
      exec_options);
  return executor.Execute(plan, stats);
}

TEST(FaultTest, RpcTransientFailuresRecoverWithRetry) {
  Table flow = MakeFlow(600);
  DistributedWarehouse reference_dw(4);
  reference_dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"}).Check();
  Table expected =
      reference_dw.ExecuteCentralized(SimpleQuery()).ValueOrDie();

  TransientFaultInjector injector(/*failures=*/1);
  ExecStats stats;
  Table result = RunRpcWithFaults(flow, &injector, /*retries=*/2, &stats,
                                  OptimizerOptions::None())
                     .ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
  EXPECT_GT(injector.injected(), 0);
  size_t total_retries = 0;
  for (const RoundStats& r : stats.rounds) total_retries += r.site_retries;
  // Every (site, round) pair failed once: 4 sites x 3 rounds.
  EXPECT_EQ(total_retries, 12u);
}

TEST(FaultTest, RpcExhaustedRetriesSurfaceTheFailure) {
  Table flow = MakeFlow(200);
  TransientFaultInjector injector(/*failures=*/3);
  auto result = RunRpcWithFaults(flow, &injector, /*retries=*/1, nullptr,
                                 OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(FaultTest, RpcPermanentSiteFailureAborts) {
  Table flow = MakeFlow(200);
  PermanentSiteFailure injector(/*site=*/2);
  auto result = RunRpcWithFaults(flow, &injector, /*retries=*/5, nullptr,
                                 OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("site 2"), std::string::npos);
}

TEST(FaultTest, RetryAccountingMatchesAcrossEngines) {
  // The same transient-fault schedule must produce the same per-round
  // site_retries in every engine: the retry loop is shared, and the
  // round labels the injector keys on are part of the executor contract.
  Table flow = MakeFlow(600);

  TransientFaultInjector dist_injector(/*failures=*/1);
  ExecStats dist_stats;
  RunWithFaults(flow, &dist_injector, /*retries=*/2, &dist_stats,
                OptimizerOptions::None())
      .ValueOrDie();

  TransientFaultInjector async_injector(/*failures=*/1);
  ExecStats async_stats;
  RunAsyncWithFaults(flow, &async_injector, /*retries=*/2, &async_stats,
                     OptimizerOptions::None())
      .ValueOrDie();

  TransientFaultInjector rpc_injector(/*failures=*/1);
  ExecStats rpc_stats;
  RunRpcWithFaults(flow, &rpc_injector, /*retries=*/2, &rpc_stats,
                   OptimizerOptions::None())
      .ValueOrDie();

  ASSERT_EQ(dist_stats.rounds.size(), async_stats.rounds.size());
  ASSERT_EQ(dist_stats.rounds.size(), rpc_stats.rounds.size());
  for (size_t r = 0; r < dist_stats.rounds.size(); ++r) {
    SCOPED_TRACE(dist_stats.rounds[r].label);
    EXPECT_EQ(async_stats.rounds[r].label, dist_stats.rounds[r].label);
    EXPECT_EQ(rpc_stats.rounds[r].label, dist_stats.rounds[r].label);
    EXPECT_EQ(async_stats.rounds[r].site_retries,
              dist_stats.rounds[r].site_retries);
    EXPECT_EQ(rpc_stats.rounds[r].site_retries,
              dist_stats.rounds[r].site_retries);
  }
  EXPECT_EQ(dist_injector.injected(), async_injector.injected());
  EXPECT_EQ(dist_injector.injected(), rpc_injector.injected());
}

TEST(FaultTest, NoInjectorMeansNoRetries) {
  Table flow = MakeFlow(200);
  ExecStats stats;
  Table result = RunWithFaults(flow, nullptr, /*retries=*/3, &stats,
                               OptimizerOptions::None())
                     .ValueOrDie();
  for (const RoundStats& r : stats.rounds) {
    EXPECT_EQ(r.site_retries, 0u);
  }
  EXPECT_GT(result.num_rows(), 0u);
}

}  // namespace
}  // namespace skalla
