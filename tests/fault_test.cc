// Fault injection and recovery across all four engines: site retries,
// replica failover, degraded execution (OnSiteLoss::kDegrade), and
// query/round deadlines, which share one policy via ExecutorOptions.

#include "dist/fault.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "common/macros.h"
#include "common/random.h"
#include "core/cancellation.h"
#include "core/local_eval.h"
#include "dist/async_exec.h"
#include "dist/exec.h"
#include "dist/tree.h"
#include "dist/warehouse.h"
#include "expr/builder.h"
#include "rpc/rpc_executor.h"
#include "rpc/transport.h"
#include "storage/partition.h"

namespace skalla {
namespace {

Table MakeFlow(size_t rows) {
  Random rng(61);
  SchemaPtr schema = Schema::Make({{"SAS", ValueType::kInt64},
                                   {"NB", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendUnchecked(
        {Value(rng.UniformInt(0, 11)), Value(rng.UniformInt(1, 300))});
  }
  return t;
}

GmdjExpr SimpleQuery() {
  GmdjExpr expr;
  expr.base = BaseQuery{"flow", {"SAS"}, true, nullptr};
  GmdjOp md1;
  md1.detail_table = "flow";
  md1.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c"}, {AggKind::kAvg, "NB", "a"}},
      Eq(RCol("SAS"), BCol("SAS"))});
  GmdjOp md2;
  md2.detail_table = "flow";
  md2.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c2"}},
      And(Eq(RCol("SAS"), BCol("SAS")), Ge(RCol("NB"), BCol("a")))});
  expr.ops = {md1, md2};
  return expr;
}

Result<Table> RunWithFaults(const Table& flow, FaultInjector* injector,
                            size_t retries, ExecStats* stats,
                            const OptimizerOptions& opts) {
  ExecutorOptions exec_options;
  exec_options.fault_injector = injector;
  exec_options.max_site_retries = retries;
  DistributedWarehouse dw(4, NetworkConfig{}, exec_options);
  Status s = dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"});
  if (!s.ok()) return s;
  return dw.Execute(SimpleQuery(), opts, stats);
}

TEST(FaultTest, TransientFailuresRecoverWithRetry) {
  Table flow = MakeFlow(600);
  DistributedWarehouse reference_dw(4);
  reference_dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"}).Check();
  Table expected =
      reference_dw.ExecuteCentralized(SimpleQuery()).ValueOrDie();

  TransientFaultInjector injector(/*failures=*/1);
  ExecStats stats;
  Table result = RunWithFaults(flow, &injector, /*retries=*/2, &stats,
                               OptimizerOptions::None())
                     .ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
  EXPECT_GT(injector.injected(), 0);
  size_t total_retries = 0;
  for (const RoundStats& r : stats.rounds) total_retries += r.site_retries;
  // Every (site, round) pair failed once: 4 sites x 3 rounds.
  EXPECT_EQ(total_retries, 12u);
}

TEST(FaultTest, ExhaustedRetriesSurfaceTheFailure) {
  Table flow = MakeFlow(200);
  TransientFaultInjector injector(/*failures=*/3);
  ExecStats stats;
  auto result = RunWithFaults(flow, &injector, /*retries=*/1, &stats,
                              OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(FaultTest, PermanentSiteFailureAborts) {
  Table flow = MakeFlow(200);
  PermanentSiteFailure injector(/*site=*/2);
  auto result = RunWithFaults(flow, &injector, /*retries=*/5, nullptr,
                              OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("site 2"), std::string::npos);
}

TEST(FaultTest, RecoveryWorksUnderAllOptimizations) {
  Table flow = MakeFlow(600);
  DistributedWarehouse reference_dw(4);
  reference_dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"}).Check();
  Table expected =
      reference_dw.ExecuteCentralized(SimpleQuery()).ValueOrDie();

  TransientFaultInjector injector(/*failures=*/1);
  Table result = RunWithFaults(flow, &injector, /*retries=*/1, nullptr,
                               OptimizerOptions::All())
                     .ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
}

// Same scenario through the AsyncExecutor: plans built by the warehouse,
// sites constructed directly so the executor choice is explicit.
Result<Table> RunAsyncWithFaults(const Table& flow, FaultInjector* injector,
                                 size_t retries, ExecStats* stats,
                                 const OptimizerOptions& opts) {
  const size_t kSites = 4;
  DistributedWarehouse dw(kSites);
  Status s = dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"});
  if (!s.ok()) return s;
  SKALLA_ASSIGN_OR_RETURN(DistributedPlan plan, dw.Plan(SimpleQuery(), opts));
  SKALLA_ASSIGN_OR_RETURN(std::vector<Table> parts,
                          PartitionByValue(flow, "SAS", kSites));
  std::vector<Site> sites;
  for (size_t i = 0; i < kSites; ++i) {
    Catalog catalog;
    catalog.Register("flow", parts[i]);
    sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  ExecutorOptions exec_options;
  exec_options.fault_injector = injector;
  exec_options.max_site_retries = retries;
  AsyncExecutor executor(std::move(sites), NetworkConfig{}, exec_options);
  return executor.Execute(plan, stats);
}

TEST(FaultTest, AsyncTransientFailuresRecoverWithRetry) {
  Table flow = MakeFlow(600);
  DistributedWarehouse reference_dw(4);
  reference_dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"}).Check();
  Table expected =
      reference_dw.ExecuteCentralized(SimpleQuery()).ValueOrDie();

  TransientFaultInjector injector(/*failures=*/1);
  ExecStats stats;
  Table result = RunAsyncWithFaults(flow, &injector, /*retries=*/2, &stats,
                                    OptimizerOptions::None())
                     .ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
  EXPECT_GT(injector.injected(), 0);
  size_t total_retries = 0;
  for (const RoundStats& r : stats.rounds) total_retries += r.site_retries;
  // Every (site, round) pair failed once: 4 sites x 3 rounds.
  EXPECT_EQ(total_retries, 12u);
}

TEST(FaultTest, AsyncExhaustedRetriesSurfaceTheFailure) {
  Table flow = MakeFlow(200);
  TransientFaultInjector injector(/*failures=*/3);
  auto result = RunAsyncWithFaults(flow, &injector, /*retries=*/1, nullptr,
                                   OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(FaultTest, AsyncPermanentSiteFailureAborts) {
  Table flow = MakeFlow(200);
  PermanentSiteFailure injector(/*site=*/2);
  auto result = RunAsyncWithFaults(flow, &injector, /*retries=*/5, nullptr,
                                   OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("site 2"), std::string::npos);
}

// Same scenario through the TreeExecutor: the retry loop is the shared
// ExecuteSiteRound, so recovery and accounting must match the star.
Result<Table> RunTreeWithFaults(const Table& flow, FaultInjector* injector,
                                size_t retries, ExecStats* stats,
                                const OptimizerOptions& opts) {
  const size_t kSites = 4;
  DistributedWarehouse dw(kSites);
  Status s = dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"});
  if (!s.ok()) return s;
  SKALLA_ASSIGN_OR_RETURN(DistributedPlan plan, dw.Plan(SimpleQuery(), opts));
  SKALLA_ASSIGN_OR_RETURN(std::vector<Table> parts,
                          PartitionByValue(flow, "SAS", kSites));
  std::vector<Site> sites;
  for (size_t i = 0; i < kSites; ++i) {
    Catalog catalog;
    catalog.Register("flow", parts[i]);
    sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  ExecutorOptions exec_options;
  exec_options.fault_injector = injector;
  exec_options.max_site_retries = retries;
  TreeExecutor executor(std::move(sites),
                        CoordinatorTree::Balanced(kSites, 2), NetworkConfig{},
                        exec_options);
  return executor.Execute(plan, stats);
}

TEST(FaultTest, TreeTransientFailuresRecoverWithRetry) {
  Table flow = MakeFlow(600);
  DistributedWarehouse reference_dw(4);
  reference_dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"}).Check();
  Table expected =
      reference_dw.ExecuteCentralized(SimpleQuery()).ValueOrDie();

  TransientFaultInjector injector(/*failures=*/1);
  ExecStats stats;
  Table result = RunTreeWithFaults(flow, &injector, /*retries=*/2, &stats,
                                   OptimizerOptions::None())
                     .ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
  EXPECT_GT(injector.injected(), 0);
  size_t total_retries = 0;
  for (const RoundStats& r : stats.rounds) total_retries += r.site_retries;
  // Every (site, round) pair failed once: 4 sites x 3 rounds.
  EXPECT_EQ(total_retries, 12u);
}

TEST(FaultTest, TreeExhaustedRetriesSurfaceTheFailure) {
  Table flow = MakeFlow(200);
  TransientFaultInjector injector(/*failures=*/3);
  auto result = RunTreeWithFaults(flow, &injector, /*retries=*/1, nullptr,
                                  OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(FaultTest, TreePermanentSiteFailureAborts) {
  Table flow = MakeFlow(200);
  PermanentSiteFailure injector(/*site=*/2);
  auto result = RunTreeWithFaults(flow, &injector, /*retries=*/5, nullptr,
                                  OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("site 2"), std::string::npos);
}

// Same scenario again through the RpcExecutor (in-process transport):
// the retry loop is the shared ExecuteSiteRound, so recovery and
// accounting must be identical to the simulated engines.
Result<Table> RunRpcWithFaults(const Table& flow, FaultInjector* injector,
                               size_t retries, ExecStats* stats,
                               const OptimizerOptions& opts) {
  const size_t kSites = 4;
  DistributedWarehouse dw(kSites);
  Status s = dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"});
  if (!s.ok()) return s;
  SKALLA_ASSIGN_OR_RETURN(DistributedPlan plan, dw.Plan(SimpleQuery(), opts));
  SKALLA_ASSIGN_OR_RETURN(std::vector<Table> parts,
                          PartitionByValue(flow, "SAS", kSites));
  std::vector<Site> sites;
  for (size_t i = 0; i < kSites; ++i) {
    Catalog catalog;
    catalog.Register("flow", parts[i]);
    sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  ExecutorOptions exec_options;
  exec_options.fault_injector = injector;
  exec_options.max_site_retries = retries;
  rpc::RpcExecutor executor(
      std::make_unique<rpc::InProcessTransport>(std::move(sites)),
      exec_options);
  return executor.Execute(plan, stats);
}

TEST(FaultTest, RpcTransientFailuresRecoverWithRetry) {
  Table flow = MakeFlow(600);
  DistributedWarehouse reference_dw(4);
  reference_dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"}).Check();
  Table expected =
      reference_dw.ExecuteCentralized(SimpleQuery()).ValueOrDie();

  TransientFaultInjector injector(/*failures=*/1);
  ExecStats stats;
  Table result = RunRpcWithFaults(flow, &injector, /*retries=*/2, &stats,
                                  OptimizerOptions::None())
                     .ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
  EXPECT_GT(injector.injected(), 0);
  size_t total_retries = 0;
  for (const RoundStats& r : stats.rounds) total_retries += r.site_retries;
  // Every (site, round) pair failed once: 4 sites x 3 rounds.
  EXPECT_EQ(total_retries, 12u);
}

TEST(FaultTest, RpcExhaustedRetriesSurfaceTheFailure) {
  Table flow = MakeFlow(200);
  TransientFaultInjector injector(/*failures=*/3);
  auto result = RunRpcWithFaults(flow, &injector, /*retries=*/1, nullptr,
                                 OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(FaultTest, RpcPermanentSiteFailureAborts) {
  Table flow = MakeFlow(200);
  PermanentSiteFailure injector(/*site=*/2);
  auto result = RunRpcWithFaults(flow, &injector, /*retries=*/5, nullptr,
                                 OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("site 2"), std::string::npos);
}

TEST(FaultTest, RetryAccountingMatchesAcrossEngines) {
  // The same transient-fault schedule must produce the same per-round
  // site_retries in every engine: the retry loop is shared, and the
  // round labels the injector keys on are part of the executor contract.
  Table flow = MakeFlow(600);

  TransientFaultInjector dist_injector(/*failures=*/1);
  ExecStats dist_stats;
  RunWithFaults(flow, &dist_injector, /*retries=*/2, &dist_stats,
                OptimizerOptions::None())
      .ValueOrDie();

  TransientFaultInjector async_injector(/*failures=*/1);
  ExecStats async_stats;
  RunAsyncWithFaults(flow, &async_injector, /*retries=*/2, &async_stats,
                     OptimizerOptions::None())
      .ValueOrDie();

  TransientFaultInjector tree_injector(/*failures=*/1);
  ExecStats tree_stats;
  RunTreeWithFaults(flow, &tree_injector, /*retries=*/2, &tree_stats,
                    OptimizerOptions::None())
      .ValueOrDie();

  TransientFaultInjector rpc_injector(/*failures=*/1);
  ExecStats rpc_stats;
  RunRpcWithFaults(flow, &rpc_injector, /*retries=*/2, &rpc_stats,
                   OptimizerOptions::None())
      .ValueOrDie();

  ASSERT_EQ(dist_stats.rounds.size(), async_stats.rounds.size());
  ASSERT_EQ(dist_stats.rounds.size(), tree_stats.rounds.size());
  ASSERT_EQ(dist_stats.rounds.size(), rpc_stats.rounds.size());
  for (size_t r = 0; r < dist_stats.rounds.size(); ++r) {
    SCOPED_TRACE(dist_stats.rounds[r].label);
    EXPECT_EQ(async_stats.rounds[r].label, dist_stats.rounds[r].label);
    EXPECT_EQ(tree_stats.rounds[r].label, dist_stats.rounds[r].label);
    EXPECT_EQ(rpc_stats.rounds[r].label, dist_stats.rounds[r].label);
    EXPECT_EQ(async_stats.rounds[r].site_retries,
              dist_stats.rounds[r].site_retries);
    EXPECT_EQ(tree_stats.rounds[r].site_retries,
              dist_stats.rounds[r].site_retries);
    EXPECT_EQ(rpc_stats.rounds[r].site_retries,
              dist_stats.rounds[r].site_retries);
  }
  EXPECT_EQ(dist_injector.injected(), async_injector.injected());
  EXPECT_EQ(dist_injector.injected(), tree_injector.injected());
  EXPECT_EQ(dist_injector.injected(), rpc_injector.injected());
}

TEST(FaultTest, NoInjectorMeansNoRetries) {
  Table flow = MakeFlow(200);
  ExecStats stats;
  Table result = RunWithFaults(flow, nullptr, /*retries=*/3, &stats,
                               OptimizerOptions::None())
                     .ValueOrDie();
  for (const RoundStats& r : stats.rounds) {
    EXPECT_EQ(r.site_retries, 0u);
  }
  EXPECT_GT(result.num_rows(), 0u);
}

// ---- Replica failover ----------------------------------------------------

// Shared scaffolding: partitions of `flow` as directly-constructed
// sites, so each engine's replica registration can be exercised.
struct TestFleet {
  DistributedPlan plan;
  std::vector<Site> sites;
  std::vector<Table> parts;
  Table expected;
};

Result<TestFleet> MakeFleet(const Table& flow, const OptimizerOptions& opts) {
  const size_t kSites = 4;
  TestFleet fleet;
  DistributedWarehouse dw(kSites);
  SKALLA_RETURN_NOT_OK(dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"}));
  SKALLA_ASSIGN_OR_RETURN(fleet.plan, dw.Plan(SimpleQuery(), opts));
  SKALLA_ASSIGN_OR_RETURN(fleet.parts,
                          PartitionByValue(flow, "SAS", kSites));
  for (size_t i = 0; i < kSites; ++i) {
    Catalog catalog;
    catalog.Register("flow", fleet.parts[i]);
    fleet.sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  SKALLA_ASSIGN_OR_RETURN(fleet.expected,
                          dw.ExecuteCentralized(SimpleQuery()));
  return fleet;
}

// A replica of partition `i` under its own site id (100 + i).
Site MakeReplica(const TestFleet& fleet, size_t i) {
  Catalog catalog;
  catalog.Register("flow", fleet.parts[i]);
  return Site(static_cast<int>(100 + i), std::move(catalog));
}

ExecutorOptions FaultOptions(FaultInjector* injector, size_t retries) {
  ExecutorOptions options;
  options.fault_injector = injector;
  options.max_site_retries = retries;
  return options;
}

TEST(FailoverTest, StarFailsOverToReplicaOnPermanentLoss) {
  Table flow = MakeFlow(600);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  PermanentSiteFailure injector(/*site=*/2);
  DistributedExecutor executor(std::move(fleet.sites), NetworkConfig{},
                               FaultOptions(&injector, /*retries=*/1));
  executor.AddReplica(2, MakeReplica(fleet, 2));
  ExecStats stats;
  Table result = executor.Execute(fleet.plan, &stats).ValueOrDie();
  EXPECT_TRUE(result.SameRows(fleet.expected));
  // The primary is consulted (and exhausted) every round; each of the 3
  // rounds fails over to the replica exactly once.
  EXPECT_EQ(stats.TotalSiteFailovers(), 3u);
  EXPECT_TRUE(stats.complete());
  EXPECT_TRUE(stats.lost_sites.empty());
}

TEST(FailoverTest, AsyncFailsOverToReplicaOnPermanentLoss) {
  Table flow = MakeFlow(600);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  PermanentSiteFailure injector(/*site=*/2);
  AsyncExecutor executor(std::move(fleet.sites), NetworkConfig{},
                         FaultOptions(&injector, /*retries=*/1));
  executor.AddReplica(2, MakeReplica(fleet, 2));
  ExecStats stats;
  Table result = executor.Execute(fleet.plan, &stats).ValueOrDie();
  EXPECT_TRUE(result.SameRows(fleet.expected));
  EXPECT_EQ(stats.TotalSiteFailovers(), 3u);
  EXPECT_TRUE(stats.complete());
}

TEST(FailoverTest, TreeFailsOverToReplicaOnPermanentLoss) {
  Table flow = MakeFlow(600);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  PermanentSiteFailure injector(/*site=*/2);
  TreeExecutor executor(std::move(fleet.sites),
                        CoordinatorTree::Balanced(4, 2), NetworkConfig{},
                        FaultOptions(&injector, /*retries=*/1));
  executor.AddReplica(2, MakeReplica(fleet, 2));
  ExecStats stats;
  Table result = executor.Execute(fleet.plan, &stats).ValueOrDie();
  EXPECT_TRUE(result.SameRows(fleet.expected));
  EXPECT_EQ(stats.TotalSiteFailovers(), 3u);
  EXPECT_TRUE(stats.complete());
}

TEST(FailoverTest, RpcFailsOverToReplicaEndpoint) {
  Table flow = MakeFlow(600);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  // Endpoint 4 is a second process hosting partition 2's data.
  Catalog replica_catalog;
  replica_catalog.Register("flow", fleet.parts[2]);
  fleet.sites.emplace_back(4, std::move(replica_catalog));
  PermanentSiteFailure injector(/*site=*/2);
  rpc::RpcExecutor executor(
      std::make_unique<rpc::InProcessTransport>(std::move(fleet.sites)),
      FaultOptions(&injector, /*retries=*/1));
  executor.AddReplica(/*partition=*/2, /*endpoint=*/4);
  EXPECT_EQ(executor.num_sites(), 4u);
  ExecStats stats;
  Table result = executor.Execute(fleet.plan, &stats).ValueOrDie();
  EXPECT_TRUE(result.SameRows(fleet.expected));
  EXPECT_EQ(stats.TotalSiteFailovers(), 3u);
  EXPECT_TRUE(stats.complete());
}

TEST(FailoverTest, WarehouseReplicationSurvivesPermanentLoss) {
  // SetReplication(k) registers k-1 extra copies of every partition
  // under fresh site ids, so any single primary can die.
  Table flow = MakeFlow(600);
  PermanentSiteFailure injector(/*site=*/2);
  ExecutorOptions options = FaultOptions(&injector, /*retries=*/1);
  DistributedWarehouse dw(4, NetworkConfig{}, options);
  dw.AddTablePartitionedBy("flow", flow, "SAS", {"NB"}).Check();
  dw.SetReplication(2);
  Table expected = dw.ExecuteCentralized(SimpleQuery()).ValueOrDie();
  ExecStats stats;
  Table result =
      dw.Execute(SimpleQuery(), OptimizerOptions::None(), &stats)
          .ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
  EXPECT_GT(stats.TotalSiteFailovers(), 0u);
}

TEST(FailoverTest, FailoverCountsSurfaceInRoundStats) {
  Table flow = MakeFlow(400);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  PermanentSiteFailure injector(/*site=*/1);
  DistributedExecutor executor(std::move(fleet.sites), NetworkConfig{},
                               FaultOptions(&injector, /*retries=*/2));
  executor.AddReplica(1, MakeReplica(fleet, 1));
  ExecStats stats;
  executor.Execute(fleet.plan, &stats).ValueOrDie();
  for (const RoundStats& r : stats.rounds) {
    SCOPED_TRACE(r.label);
    EXPECT_EQ(r.site_failovers, 1u);
    // The primary burned its full retry budget before failing over.
    EXPECT_GE(r.site_retries, 2u);
  }
}

// ---- Degraded execution (OnSiteLoss::kDegrade) ---------------------------

// Expected result when partition `lost` never contributes: centralized
// evaluation over the union of the surviving partitions.
Table DegradedExpected(const TestFleet& fleet, size_t lost) {
  Table survivors(fleet.parts[0].schema());
  for (size_t i = 0; i < fleet.parts.size(); ++i) {
    if (i == lost) continue;
    for (size_t r = 0; r < fleet.parts[i].num_rows(); ++r) {
      survivors.AppendUnchecked(fleet.parts[i].row(r));
    }
  }
  Catalog catalog;
  catalog.Register("flow", survivors);
  return EvalCentralized(SimpleQuery(), catalog).ValueOrDie();
}

TEST(DegradeTest, UnreplicatedPermanentLossCompletesAndReportsTheSite) {
  Table flow = MakeFlow(600);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  Table expected = DegradedExpected(fleet, 2);
  PermanentSiteFailure injector(/*site=*/2);
  ExecutorOptions options = FaultOptions(&injector, /*retries=*/1);
  options.on_site_loss = OnSiteLoss::kDegrade;
  DistributedExecutor executor(std::move(fleet.sites), NetworkConfig{},
                               options);
  ExecStats stats;
  Table result = executor.Execute(fleet.plan, &stats).ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
  EXPECT_FALSE(stats.complete());
  ASSERT_EQ(stats.lost_sites.size(), 1u);
  EXPECT_EQ(stats.lost_sites[0], 2);
  // Per-round completeness: the site is lost from the first round on.
  for (const RoundStats& r : stats.rounds) {
    SCOPED_TRACE(r.label);
    EXPECT_EQ(r.sites_lost, 1u);
  }
}

TEST(DegradeTest, DegradePrefersReplicaWhenOneExists) {
  Table flow = MakeFlow(600);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  PermanentSiteFailure injector(/*site=*/2);
  ExecutorOptions options = FaultOptions(&injector, /*retries=*/1);
  options.on_site_loss = OnSiteLoss::kDegrade;
  DistributedExecutor executor(std::move(fleet.sites), NetworkConfig{},
                               options);
  executor.AddReplica(2, MakeReplica(fleet, 2));
  ExecStats stats;
  Table result = executor.Execute(fleet.plan, &stats).ValueOrDie();
  // With a live replica nothing is lost: kDegrade only covers the case
  // where the whole replica chain is gone.
  EXPECT_TRUE(result.SameRows(fleet.expected));
  EXPECT_TRUE(stats.complete());
  EXPECT_EQ(stats.TotalSiteFailovers(), 3u);
}

TEST(DegradeTest, AsyncDegradeCompletesOverSurvivors) {
  Table flow = MakeFlow(600);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  Table expected = DegradedExpected(fleet, 2);
  PermanentSiteFailure injector(/*site=*/2);
  ExecutorOptions options = FaultOptions(&injector, /*retries=*/1);
  options.on_site_loss = OnSiteLoss::kDegrade;
  AsyncExecutor executor(std::move(fleet.sites), NetworkConfig{}, options);
  ExecStats stats;
  Table result = executor.Execute(fleet.plan, &stats).ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
  ASSERT_EQ(stats.lost_sites.size(), 1u);
  EXPECT_EQ(stats.lost_sites[0], 2);
}

TEST(DegradeTest, TreeDegradeCompletesOverSurvivors) {
  Table flow = MakeFlow(600);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  Table expected = DegradedExpected(fleet, 2);
  PermanentSiteFailure injector(/*site=*/2);
  ExecutorOptions options = FaultOptions(&injector, /*retries=*/1);
  options.on_site_loss = OnSiteLoss::kDegrade;
  TreeExecutor executor(std::move(fleet.sites),
                        CoordinatorTree::Balanced(4, 2), NetworkConfig{},
                        options);
  ExecStats stats;
  Table result = executor.Execute(fleet.plan, &stats).ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
  ASSERT_EQ(stats.lost_sites.size(), 1u);
  EXPECT_EQ(stats.lost_sites[0], 2);
}

TEST(DegradeTest, RpcDegradeCompletesOverSurvivors) {
  Table flow = MakeFlow(600);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  Table expected = DegradedExpected(fleet, 2);
  PermanentSiteFailure injector(/*site=*/2);
  ExecutorOptions options = FaultOptions(&injector, /*retries=*/1);
  options.on_site_loss = OnSiteLoss::kDegrade;
  rpc::RpcExecutor executor(
      std::make_unique<rpc::InProcessTransport>(std::move(fleet.sites)),
      options);
  ExecStats stats;
  Table result = executor.Execute(fleet.plan, &stats).ValueOrDie();
  EXPECT_TRUE(result.SameRows(expected));
  ASSERT_EQ(stats.lost_sites.size(), 1u);
  EXPECT_EQ(stats.lost_sites[0], 2);
}

// ---- Deadlines -----------------------------------------------------------

// Injector that makes every site round take at least `ms` milliseconds,
// so millisecond-scale deadlines fire deterministically.
class DelayInjector : public FaultInjector {
 public:
  explicit DelayInjector(uint64_t ms) : ms_(ms) {}
  Status BeforeSiteRound(int site, const std::string& round) override {
    (void)site;
    (void)round;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms_));
    return Status::OK();
  }

 private:
  uint64_t ms_;
};

TEST(DeadlineTest, StarQueryDeadlineSurfacesTyped) {
  Table flow = MakeFlow(400);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  DelayInjector injector(/*ms=*/5);
  ExecutorOptions options = FaultOptions(&injector, /*retries=*/3);
  options.query_deadline_ms = 1;
  DistributedExecutor executor(std::move(fleet.sites), NetworkConfig{},
                               options);
  auto result = executor.Execute(fleet.plan, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
}

TEST(DeadlineTest, AsyncQueryDeadlineSurfacesTyped) {
  Table flow = MakeFlow(400);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  DelayInjector injector(/*ms=*/5);
  ExecutorOptions options = FaultOptions(&injector, /*retries=*/3);
  options.query_deadline_ms = 1;
  AsyncExecutor executor(std::move(fleet.sites), NetworkConfig{}, options);
  auto result = executor.Execute(fleet.plan, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
}

TEST(DeadlineTest, TreeQueryDeadlineSurfacesTyped) {
  Table flow = MakeFlow(400);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  DelayInjector injector(/*ms=*/5);
  ExecutorOptions options = FaultOptions(&injector, /*retries=*/3);
  options.query_deadline_ms = 1;
  TreeExecutor executor(std::move(fleet.sites),
                        CoordinatorTree::Balanced(4, 2), NetworkConfig{},
                        options);
  auto result = executor.Execute(fleet.plan, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
}

TEST(DeadlineTest, RpcQueryDeadlineSurfacesTyped) {
  Table flow = MakeFlow(400);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  DelayInjector injector(/*ms=*/5);
  ExecutorOptions options = FaultOptions(&injector, /*retries=*/3);
  options.query_deadline_ms = 1;
  rpc::RpcExecutor executor(
      std::make_unique<rpc::InProcessTransport>(std::move(fleet.sites)),
      options);
  auto result = executor.Execute(fleet.plan, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
}

TEST(DeadlineTest, DeadlineFailuresDoNotRetryOrFailOver) {
  // A fired deadline is not a transient fault: retrying or failing over
  // would only burn more of a budget that is already gone.
  Table flow = MakeFlow(400);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  DelayInjector injector(/*ms=*/5);
  ExecutorOptions options = FaultOptions(&injector, /*retries=*/5);
  options.query_deadline_ms = 1;
  DistributedExecutor executor(std::move(fleet.sites), NetworkConfig{},
                               options);
  executor.AddReplica(2, MakeReplica(fleet, 2));
  ExecStats stats;
  auto result = executor.Execute(fleet.plan, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
  EXPECT_EQ(stats.TotalSiteFailovers(), 0u);
}

TEST(DeadlineTest, GenerousDeadlineDoesNotFire) {
  Table flow = MakeFlow(400);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  ExecutorOptions options;
  options.query_deadline_ms = 60'000;
  options.round_deadline_ms = 30'000;
  DistributedExecutor executor(std::move(fleet.sites), NetworkConfig{},
                               options);
  Table result = executor.Execute(fleet.plan, nullptr).ValueOrDie();
  EXPECT_TRUE(result.SameRows(fleet.expected));
}

TEST(DeadlineTest, CancellationStopsKernelEvaluation) {
  // A pre-cancelled token must stop EvalGmdjRound before (or between)
  // morsels and surface the latched status — the mechanism a fired
  // round deadline uses to stop in-flight site work.
  Table flow = MakeFlow(400);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  Table base = fleet.sites[0].ExecuteBaseQuery(fleet.plan.base).ValueOrDie();
  CancellationToken token;
  token.Cancel(Status::DeadlineExceeded("test: cancelled before eval"));
  EvalContext context;
  context.cancellation = &token;
  auto result = fleet.sites[0].EvalGmdjRound(
      base, fleet.plan.stages[0].op, context);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
}

// ---- Injector satellites -------------------------------------------------

TEST(FaultInjectorTest, TransientInjectorClearsTrackingOnSuccess) {
  // Regression: attempts_ grew one entry per (site, round) forever; a
  // long-lived injector across many queries leaked. Entries must be
  // erased once the pair is past its failure budget.
  Table flow = MakeFlow(200);
  TransientFaultInjector injector(/*failures=*/1);
  RunWithFaults(flow, &injector, /*retries=*/2, nullptr,
                OptimizerOptions::None())
      .ValueOrDie();
  EXPECT_EQ(injector.tracked_entries(), 0u);
  // And the schedule is reusable: the same injector fails each pair
  // once more on the next query.
  ExecStats stats;
  RunWithFaults(flow, &injector, /*retries=*/2, &stats,
                OptimizerOptions::None())
      .ValueOrDie();
  size_t total_retries = 0;
  for (const RoundStats& r : stats.rounds) total_retries += r.site_retries;
  EXPECT_EQ(total_retries, 12u);
  EXPECT_EQ(injector.tracked_entries(), 0u);
}

// Injector that corrupts a round *after* the site evaluated it — the
// response-lost case, distinct from BeforeSiteRound's request-lost.
class AfterRoundInjector : public FaultInjector {
 public:
  AfterRoundInjector(int site, std::string round)
      : site_(site), round_(std::move(round)) {}
  Status BeforeSiteRound(int site, const std::string& round) override {
    (void)site;
    (void)round;
    return Status::OK();
  }
  Status AfterSiteRound(int site, const std::string& round,
                        const Status& status) override {
    ++calls_;
    if (!status.ok()) statuses_seen_not_ok_ = true;
    if (site == site_ && round == round_ && !fired_) {
      fired_ = true;
      return Status::IOError("injected: response lost after evaluation");
    }
    return Status::OK();
  }
  int calls() const { return calls_; }
  bool fired() const { return fired_; }
  bool saw_non_ok() const { return statuses_seen_not_ok_; }

 private:
  int site_;
  std::string round_;
  int calls_ = 0;
  bool fired_ = false;
  bool statuses_seen_not_ok_ = false;
};

TEST(FaultInjectorTest, AfterSiteRoundFaultRecoversWithRetry) {
  Table flow = MakeFlow(600);
  TestFleet fleet = MakeFleet(flow, OptimizerOptions::None()).ValueOrDie();
  AfterRoundInjector injector(/*site=*/1, "md1");
  DistributedExecutor executor(std::move(fleet.sites), NetworkConfig{},
                               FaultOptions(&injector, /*retries=*/2));
  ExecStats stats;
  Table result = executor.Execute(fleet.plan, &stats).ValueOrDie();
  EXPECT_TRUE(result.SameRows(fleet.expected));
  EXPECT_TRUE(injector.fired());
  EXPECT_GT(injector.calls(), 0);
  EXPECT_EQ(stats.TotalSiteRetries(), 1u);
}

}  // namespace
}  // namespace skalla
