// FlagSet: every binding type, both value spellings, unknown-flag
// errors, keep_unknown compaction, ignored prefixes, and duplicate
// registration semantics.

#include "common/flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace skalla {
namespace {

// Builds a mutable argv from literals; keeps the backing strings alive.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    strings_.insert(strings_.begin(), "prog");
    for (std::string& s : strings_) argv_.push_back(s.data());
    argc_ = static_cast<int>(argv_.size());
  }

  int* argc() { return &argc_; }
  char** argv() { return argv_.data(); }
  std::vector<std::string> remaining() const {
    std::vector<std::string> out;
    for (int i = 0; i < argc_; ++i) out.push_back(argv_[i]);
    return out;
  }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> argv_;
  int argc_ = 0;
};

TEST(FlagSetTest, ParsesEveryTypeBothSpellings) {
  std::string s;
  int i = 0;
  int64_t i64 = 0;
  size_t st = 0;
  uint64_t u64 = 0;
  double d = 0.0;
  bool b = false;
  std::string func_value;

  FlagSet flags;
  flags.String("--s", &s, "");
  flags.Int("--i", &i, "");
  flags.Int64("--i64", &i64, "");
  flags.SizeT("--st", &st, "");
  flags.Uint64("--u64", &u64, "");
  flags.Double("--d", &d, "");
  flags.Bool("--b", &b, "");
  flags.Func("--f",
             [&func_value](const std::string& v) {
               func_value = v;
               return Status::OK();
             },
             "");

  Argv args({"--s", "hello", "--i=42", "--i64", "-7", "--st=9",
             "--u64=123456789012345", "--d", "2.5", "--b", "--f=custom"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(i, 42);
  EXPECT_EQ(i64, -7);
  EXPECT_EQ(st, 9u);
  EXPECT_EQ(u64, 123456789012345ull);
  EXPECT_EQ(d, 2.5);
  EXPECT_TRUE(b);
  EXPECT_EQ(func_value, "custom");
  EXPECT_EQ(*args.argc(), 1);  // everything consumed
}

TEST(FlagSetTest, DefaultsSurviveWhenFlagAbsent) {
  std::string s = "default";
  int i = 17;
  FlagSet flags;
  flags.String("--s", &s, "");
  flags.Int("--i", &i, "");
  Argv args({"--i", "3"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(s, "default");
  EXPECT_EQ(i, 3);
}

TEST(FlagSetTest, RejectsBadValues) {
  int i = 0;
  size_t st = 0;
  uint64_t u64 = 0;
  double d = 0.0;

  FlagSet flags;
  flags.Int("--i", &i, "");
  flags.SizeT("--st", &st, "");
  flags.Uint64("--u64", &u64, "");
  flags.Double("--d", &d, "");

  {
    Argv args({"--i", "forty"});
    Status s = flags.Parse(args.argc(), args.argv());
    EXPECT_TRUE(s.IsInvalidArgument());
    EXPECT_NE(s.ToString().find("--i"), std::string::npos);
  }
  {
    // Trailing garbage is rejected, not truncated.
    Argv args({"--i=12x"});
    EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
  }
  {
    // Unsigned flags reject negatives.
    Argv args({"--st=-1"});
    EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
  }
  {
    Argv args({"--u64", "-5"});
    EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
  }
  {
    Argv args({"--d", "fast"});
    EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
  }
}

TEST(FlagSetTest, UnknownFlagIsAnErrorNamingIt) {
  int i = 0;
  FlagSet flags;
  flags.Int("--i", &i, "");
  Argv args({"--i", "1", "--mystery", "2"});
  Status s = flags.Parse(args.argc(), args.argv());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("--mystery"), std::string::npos);
}

TEST(FlagSetTest, MissingValueIsAnError) {
  int i = 0;
  FlagSet flags;
  flags.Int("--i", &i, "");
  Argv args({"--i"});
  Status s = flags.Parse(args.argc(), args.argv());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("needs a value"), std::string::npos);
}

TEST(FlagSetTest, BoolRejectsAttachedValue) {
  bool b = false;
  FlagSet flags;
  flags.Bool("--b", &b, "");
  Argv args({"--b=true"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagSetTest, KeepUnknownCompactsForDownstreamParser) {
  int i = 0;
  FlagSet flags;
  flags.Int("--i", &i, "");
  Argv args({"--benchmark_filter=fig5", "--i", "4", "--extra"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv(), true).ok());
  EXPECT_EQ(i, 4);
  // Unknown arguments compacted to argv[1..], order preserved.
  EXPECT_EQ(args.remaining(),
            (std::vector<std::string>{"prog", "--benchmark_filter=fig5",
                                      "--extra"}));
}

TEST(FlagSetTest, IgnoredPrefixesPassThrough) {
  int i = 0;
  FlagSet flags;
  flags.Int("--i", &i, "");
  flags.IgnorePrefix("--trace-out=");
  Argv args({"--trace-out=/tmp/t.json", "--i=2"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(i, 2);
  // The ignored argument is kept for its consumer (ObsSession).
  EXPECT_EQ(args.remaining(),
            (std::vector<std::string>{"prog", "--trace-out=/tmp/t.json"}));
}

TEST(FlagSetTest, DuplicateRegistrationFirstWins) {
  int first = 0;
  int second = 0;
  FlagSet flags;
  flags.Int("--i", &first, "");
  flags.Int("--i", &second, "");
  Argv args({"--i", "5"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(first, 5);
  EXPECT_EQ(second, 0);
}

TEST(FlagSetTest, FuncErrorsSurfaceVerbatim) {
  FlagSet flags;
  flags.Func("--mode",
             [](const std::string& v) -> Status {
               if (v != "fast" && v != "safe") {
                 return Status::InvalidArgument("--mode: fast|safe only");
               }
               return Status::OK();
             },
             "");
  {
    Argv args({"--mode", "safe"});
    EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  }
  {
    Argv args({"--mode", "reckless"});
    Status s = flags.Parse(args.argc(), args.argv());
    EXPECT_TRUE(s.IsInvalidArgument());
    EXPECT_EQ(s.message(), "--mode: fast|safe only");
  }
}

TEST(FlagSetTest, UsageListsEveryFlag) {
  int i = 0;
  bool b = false;
  FlagSet flags;
  flags.Int("--port", &i, "listen port");
  flags.Bool("--verbose", &b, "chatty mode");
  const std::string usage = flags.Usage("tool");
  EXPECT_NE(usage.find("tool"), std::string::npos);
  EXPECT_NE(usage.find("--port VALUE"), std::string::npos);
  EXPECT_NE(usage.find("listen port"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_EQ(usage.find("--verbose VALUE"), std::string::npos);
}

}  // namespace
}  // namespace skalla
