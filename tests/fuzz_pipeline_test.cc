// Pipeline fuzzer: randomly generated schemas, data, GMDJ expressions
// (random condition shapes: equality atoms, constants, correlated
// comparisons, disjunctions), random partitionings and random optimizer
// configurations — every combination must agree with the naive
// nested-loop centralized oracle.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "dist/warehouse.h"
#include "expr/analysis.h"
#include "expr/builder.h"
#include "storage/partition.h"

namespace skalla {
namespace {

struct FuzzCase {
  Table detail;
  GmdjExpr expr;
  std::string description;
};

// Random detail relation: g0/g1 grouping columns, m0/m1 measures.
Table MakeDetail(Random* rng) {
  SchemaPtr schema = Schema::Make({{"g0", ValueType::kInt64},
                                   {"g1", ValueType::kInt64},
                                   {"m0", ValueType::kInt64},
                                   {"m1", ValueType::kFloat64}})
                         .ValueOrDie();
  Table t(schema);
  size_t rows = 30 + rng->Uniform(150);
  int64_t g0_card = 2 + static_cast<int64_t>(rng->Uniform(8));
  int64_t g1_card = 2 + static_cast<int64_t>(rng->Uniform(4));
  for (size_t i = 0; i < rows; ++i) {
    Row row = {Value(rng->UniformInt(0, g0_card - 1)),
               Value(rng->UniformInt(0, g1_card - 1)),
               Value(rng->UniformInt(-30, 30)),
               Value(rng->NextDouble() * 40 - 20)};
    if (rng->Bernoulli(0.06)) row[2] = Value::Null();
    if (rng->Bernoulli(0.06)) row[3] = Value::Null();
    t.AppendUnchecked(std::move(row));
  }
  return t;
}

// A random extra conjunct beyond the grouping equalities.
ExprPtr RandomResidual(Random* rng, bool allow_correlated,
                       const std::vector<std::string>& generated) {
  switch (rng->Uniform(allow_correlated && !generated.empty() ? 4 : 3)) {
    case 0:  // measure vs constant.
      return Ge(RCol("m0"), Lit(Value(rng->UniformInt(-10, 10))));
    case 1:  // strict comparison on the float measure.
      return Lt(RCol("m1"), Lit(Value(rng->NextDouble() * 20 - 10)));
    case 2:  // disjunction of two constants on g1.
      return Or(Eq(RCol("g1"), Lit(Value(rng->UniformInt(0, 2)))),
                Eq(RCol("g1"), Lit(Value(rng->UniformInt(0, 2)))));
    default: {  // correlated: measure vs previously generated aggregate.
      const std::string& ref =
          generated[rng->Uniform(generated.size())];
      return Ge(RCol("m0"), BCol(ref));
    }
  }
}

// Integer-only aggregates: exact equality holds under any association
// order, so the oracle comparison can be strict.
AggSpec RandomAgg(Random* rng, int index) {
  std::string name = StrCat("a", index);
  // VAR over small integers: the SUMSQ part sums integers exactly in
  // doubles, so strict equality with the oracle still holds.
  switch (rng->Uniform(6)) {
    case 0:
      return {AggKind::kCountStar, "", name};
    case 1:
      return {AggKind::kCount, "m0", name};
    case 2:
      return {AggKind::kSum, "m0", name};
    case 3:
      return {AggKind::kMin, "m0", name};
    case 4:
      return {AggKind::kVarPop, "m0", name};
    default:
      return {AggKind::kMax, "m0", name};
  }
}

FuzzCase MakeCase(uint64_t seed) {
  Random rng(seed);
  FuzzCase fuzz;
  fuzz.detail = MakeDetail(&rng);

  bool two_group_cols = rng.Bernoulli(0.5);
  std::vector<std::string> group_cols = {"g0"};
  if (two_group_cols) group_cols.push_back("g1");

  fuzz.expr.base = BaseQuery{"d", group_cols, true, nullptr};
  if (rng.Bernoulli(0.3)) {
    fuzz.expr.base.where = Ge(RCol("m0"), Lit(Value(rng.UniformInt(-5, 5))));
  }

  size_t num_ops = 1 + rng.Uniform(3);
  std::vector<std::string> generated;
  int agg_index = 0;
  for (size_t k = 0; k < num_ops; ++k) {
    GmdjOp op;
    op.detail_table = "d";
    size_t num_blocks = 1 + rng.Uniform(2);
    for (size_t bi = 0; bi < num_blocks; ++bi) {
      std::vector<ExprPtr> conjuncts;
      for (const std::string& col : group_cols) {
        conjuncts.push_back(Eq(RCol(col), BCol(col)));
      }
      if (rng.Bernoulli(0.7)) {
        conjuncts.push_back(RandomResidual(&rng, k > 0, generated));
      }
      GmdjBlock block;
      block.theta = MakeConjunction(std::move(conjuncts));
      size_t num_aggs = 1 + rng.Uniform(2);
      for (size_t a = 0; a < num_aggs; ++a) {
        block.aggs.push_back(RandomAgg(&rng, agg_index++));
      }
      op.blocks.push_back(std::move(block));
    }
    for (const GmdjBlock& block : op.blocks) {
      for (const AggSpec& spec : block.aggs) generated.push_back(spec.output);
    }
    fuzz.expr.ops.push_back(std::move(op));
  }
  fuzz.description =
      StrCat("seed=", seed, " ops=", num_ops, " ", fuzz.expr.ToString());
  return fuzz;
}

class PipelineFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineFuzzTest, AllConfigurationsMatchNaiveOracle) {
  uint64_t seed = GetParam();
  FuzzCase fuzz = MakeCase(seed);
  Random rng(seed * 31 + 7);

  // Naive oracle: nested loops, centralized.
  Catalog central;
  central.Register("d", fuzz.detail);
  EvalContext oracle_context;
  oracle_context.use_index = false;
  Table oracle =
      EvalCentralized(fuzz.expr, central, oracle_context).ValueOrDie();

  for (int trial = 0; trial < 3; ++trial) {
    size_t sites = 1 + rng.Uniform(5);
    bool by_attr = rng.Bernoulli(0.5);
    DistributedWarehouse dw(sites);
    std::vector<Table> parts =
        (by_attr ? PartitionByValue(fuzz.detail, "g0", sites)
                 : PartitionRoundRobin(fuzz.detail, sites))
            .ValueOrDie();
    dw.AddPartitionedTable("d", std::move(parts),
                           {"g0", "g1", "m0", "m1"})
        .Check();

    OptimizerOptions opts;
    opts.coalescing = rng.Bernoulli(0.5);
    opts.indep_group_reduction = rng.Bernoulli(0.5);
    opts.aware_group_reduction = rng.Bernoulli(0.5);
    opts.sync_reduction = rng.Bernoulli(0.5);

    auto result = dw.Execute(fuzz.expr, opts, nullptr);
    ASSERT_TRUE(result.ok())
        << fuzz.description << "\n"
        << result.status().ToString();
    EXPECT_TRUE(result->SameRows(oracle))
        << fuzz.description << "\nsites=" << sites
        << " by_attr=" << by_attr << " opts=" << opts.ToString()
        << "\nplan:\n"
        << dw.Plan(fuzz.expr, opts).ValueOrDie().ToString(sites)
        << "oracle:\n"
        << oracle.ToString(60) << "actual:\n"
        << result->ToString(60);
    if (::testing::Test::HasFailure()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzzTest,
                         ::testing::Range(uint64_t{0}, uint64_t{60}));

}  // namespace
}  // namespace skalla
