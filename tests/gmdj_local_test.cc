// Tests for local GMDJ evaluation, including the paper's Example 1 and the
// index-vs-naive equivalence property.

#include "core/local_eval.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "expr/builder.h"
#include "relalg/operators.h"

namespace skalla {
namespace {

// Builds the paper's Flow-like detail table:
//   (SAS, DAS, NB) with deterministic contents.
Table MakeFlow() {
  SchemaPtr schema = Schema::Make({{"SAS", ValueType::kInt64},
                                   {"DAS", ValueType::kInt64},
                                   {"NB", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  // Group (1,1): NB 10, 20, 30 -> avg 20, two >= avg.
  t.Append({Value(1), Value(1), Value(10)}).Check();
  t.Append({Value(1), Value(1), Value(20)}).Check();
  t.Append({Value(1), Value(1), Value(30)}).Check();
  // Group (1,2): NB 5 -> avg 5, one >= avg.
  t.Append({Value(1), Value(2), Value(5)}).Check();
  // Group (2,1): NB 8, 12 -> avg 10, one >= avg.
  t.Append({Value(2), Value(1), Value(8)}).Check();
  t.Append({Value(2), Value(1), Value(12)}).Check();
  return t;
}

ExprPtr GroupCondition() {
  return And(Eq(RCol("SAS"), BCol("SAS")), Eq(RCol("DAS"), BCol("DAS")));
}

GmdjOp FirstOp() {
  GmdjOp op;
  op.detail_table = "flow";
  op.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "cnt1"}, {AggKind::kSum, "NB", "sum1"}},
      GroupCondition()});
  return op;
}

GmdjOp SecondOp() {
  GmdjOp op;
  op.detail_table = "flow";
  op.blocks.push_back(
      GmdjBlock{{{AggKind::kCountStar, "", "cnt2"}},
                And(GroupCondition(),
                    Ge(RCol("NB"), Div(BCol("sum1"), BCol("cnt1"))))});
  return op;
}

class GmdjLocalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flow_ = MakeFlow();
    catalog_.Register("flow", flow_);
  }

  Table flow_;
  Catalog catalog_;
};

TEST_F(GmdjLocalTest, Example1FullEvaluation) {
  GmdjExpr expr;
  expr.base = BaseQuery{"flow", {"SAS", "DAS"}, /*distinct=*/true, nullptr};
  expr.ops = {FirstOp(), SecondOp()};

  Table result = EvalCentralized(expr, catalog_).ValueOrDie();
  ASSERT_EQ(result.num_rows(), 3u);
  // Schema: SAS, DAS, cnt1, sum1, cnt2.
  ASSERT_EQ(result.num_columns(), 5u);
  result.SortRowsBy({0, 1});

  // (1,1): cnt1=3, sum1=60, cnt2=2 (20 and 30 >= avg 20).
  EXPECT_EQ(result.at(0, 2).int64(), 3);
  EXPECT_EQ(result.at(0, 3).int64(), 60);
  EXPECT_EQ(result.at(0, 4).int64(), 2);
  // (1,2): cnt1=1, sum1=5, cnt2=1.
  EXPECT_EQ(result.at(1, 2).int64(), 1);
  EXPECT_EQ(result.at(1, 3).int64(), 5);
  EXPECT_EQ(result.at(1, 4).int64(), 1);
  // (2,1): cnt1=2, sum1=20, cnt2=1 (12 >= 10).
  EXPECT_EQ(result.at(2, 2).int64(), 2);
  EXPECT_EQ(result.at(2, 3).int64(), 20);
  EXPECT_EQ(result.at(2, 4).int64(), 1);
}

TEST_F(GmdjLocalTest, EmptyGroupGetsZeroCountNullSum) {
  SchemaPtr base_schema =
      Schema::Make({{"SAS", ValueType::kInt64}, {"DAS", ValueType::kInt64}})
          .ValueOrDie();
  Table base(base_schema);
  base.Append({Value(99), Value(99)}).Check();  // No matching flow rows.
  Table result = EvalGmdj(base, flow_, FirstOp()).ValueOrDie();
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.at(0, 2).int64(), 0);
  EXPECT_TRUE(result.at(0, 3).is_null());
}

TEST_F(GmdjLocalTest, AvgMinMaxAggregates) {
  SchemaPtr base_schema =
      Schema::Make({{"SAS", ValueType::kInt64}}).ValueOrDie();
  Table base(base_schema);
  base.Append({Value(1)}).Check();
  base.Append({Value(2)}).Check();

  GmdjOp op;
  op.detail_table = "flow";
  op.blocks.push_back(GmdjBlock{{{AggKind::kAvg, "NB", "avg_nb"},
                                 {AggKind::kMin, "NB", "min_nb"},
                                 {AggKind::kMax, "NB", "max_nb"}},
                                Eq(RCol("SAS"), BCol("SAS"))});
  Table result = EvalGmdj(base, flow_, op).ValueOrDie();
  result.SortRowsBy({0});
  // SAS=1 rows: NB 10,20,30,5 -> avg 16.25, min 5, max 30.
  EXPECT_DOUBLE_EQ(result.at(0, 1).float64(), 16.25);
  EXPECT_EQ(result.at(0, 2).int64(), 5);
  EXPECT_EQ(result.at(0, 3).int64(), 30);
  // SAS=2 rows: NB 8,12 -> avg 10.
  EXPECT_DOUBLE_EQ(result.at(1, 1).float64(), 10.0);
}

TEST_F(GmdjLocalTest, OverlappingRangesNonEquiCondition) {
  // Non-disjoint RNG sets: count of detail rows with NB >= b.threshold.
  SchemaPtr base_schema =
      Schema::Make({{"threshold", ValueType::kInt64}}).ValueOrDie();
  Table base(base_schema);
  base.Append({Value(10)}).Check();
  base.Append({Value(20)}).Check();

  GmdjOp op;
  op.detail_table = "flow";
  op.blocks.push_back(GmdjBlock{{{AggKind::kCountStar, "", "cnt"}},
                                Ge(RCol("NB"), BCol("threshold"))});
  Table result = EvalGmdj(base, flow_, op).ValueOrDie();
  result.SortRowsBy({0});
  EXPECT_EQ(result.at(0, 1).int64(), 4);  // 10, 20, 30, 12 >= 10.
  EXPECT_EQ(result.at(1, 1).int64(), 2);  // 20, 30 >= 20.
}

TEST_F(GmdjLocalTest, SubAggregateModeProducesParts) {
  SchemaPtr base_schema =
      Schema::Make({{"SAS", ValueType::kInt64}}).ValueOrDie();
  Table base(base_schema);
  base.Append({Value(1)}).Check();

  GmdjOp op;
  op.detail_table = "flow";
  op.blocks.push_back(GmdjBlock{{{AggKind::kAvg, "NB", "a"}},
                                Eq(RCol("SAS"), BCol("SAS"))});
  EvalContext options;
  options.sub_aggregates = true;
  Table result = EvalGmdj(base, flow_, op, options).ValueOrDie();
  // Schema: SAS, a__sum, a__cnt.
  ASSERT_EQ(result.num_columns(), 3u);
  EXPECT_EQ(result.schema()->field(1).name, "a__sum");
  EXPECT_EQ(result.schema()->field(2).name, "a__cnt");
  EXPECT_EQ(result.at(0, 1).int64(), 65);  // 10+20+30+5.
  EXPECT_EQ(result.at(0, 2).int64(), 4);
}

TEST_F(GmdjLocalTest, RngIndicatorColumn) {
  SchemaPtr base_schema =
      Schema::Make({{"SAS", ValueType::kInt64}}).ValueOrDie();
  Table base(base_schema);
  base.Append({Value(1)}).Check();
  base.Append({Value(42)}).Check();  // No matches.

  GmdjOp op;
  op.detail_table = "flow";
  op.blocks.push_back(GmdjBlock{{{AggKind::kCountStar, "", "c"}},
                                Eq(RCol("SAS"), BCol("SAS"))});
  EvalContext options;
  options.compute_rng = true;
  Table result = EvalGmdj(base, flow_, op, options).ValueOrDie();
  int rng_idx = result.schema()->IndexOf(kRngCountColumn);
  ASSERT_GE(rng_idx, 0);
  result.SortRowsBy({0});
  EXPECT_EQ(result.at(0, static_cast<size_t>(rng_idx)).int64(), 1);
  EXPECT_EQ(result.at(1, static_cast<size_t>(rng_idx)).int64(), 0);
}

TEST_F(GmdjLocalTest, MissingAggregateInputColumnFails) {
  SchemaPtr base_schema =
      Schema::Make({{"SAS", ValueType::kInt64}}).ValueOrDie();
  Table base(base_schema);
  base.Append({Value(1)}).Check();
  GmdjOp op;
  op.detail_table = "flow";
  op.blocks.push_back(GmdjBlock{{{AggKind::kSum, "NoSuchColumn", "s"}},
                                Eq(RCol("SAS"), BCol("SAS"))});
  auto result = EvalGmdj(base, flow_, op);
  ASSERT_FALSE(result.ok());
}

TEST_F(GmdjLocalTest, MissingConditionFails) {
  SchemaPtr base_schema =
      Schema::Make({{"SAS", ValueType::kInt64}}).ValueOrDie();
  Table base(base_schema);
  GmdjOp op;
  op.detail_table = "flow";
  op.blocks.push_back(GmdjBlock{{{AggKind::kCountStar, "", "c"}}, nullptr});
  auto result = EvalGmdj(base, flow_, op);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

// Property: indexed evaluation == naive nested-loop evaluation on random
// data, for a mixed equality + inequality condition.
class GmdjIndexEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GmdjIndexEquivalenceTest, IndexMatchesNaive) {
  Random rng(GetParam());
  SchemaPtr detail_schema = Schema::Make({{"g", ValueType::kInt64},
                                          {"h", ValueType::kInt64},
                                          {"v", ValueType::kInt64}})
                                .ValueOrDie();
  Table detail(detail_schema);
  size_t n = 50 + rng.Uniform(100);
  for (size_t i = 0; i < n; ++i) {
    Row row = {Value(rng.UniformInt(0, 5)), Value(rng.UniformInt(0, 3)),
               Value(rng.UniformInt(-20, 20))};
    if (rng.Bernoulli(0.05)) row[2] = Value::Null();
    detail.AppendUnchecked(std::move(row));
  }
  Table base = Project(detail, {"g", "h"}, /*distinct=*/true).ValueOrDie();

  GmdjOp op;
  op.detail_table = "d";
  op.blocks.push_back(
      GmdjBlock{{{AggKind::kCountStar, "", "c"},
                 {AggKind::kSum, "v", "s"},
                 {AggKind::kAvg, "v", "a"},
                 {AggKind::kMin, "v", "lo"},
                 {AggKind::kMax, "v", "hi"}},
                And(And(Eq(RCol("g"), BCol("g")), Eq(RCol("h"), BCol("h"))),
                    Ge(RCol("v"), Lit(Value(0))))});
  op.blocks.push_back(GmdjBlock{{{AggKind::kCountStar, "", "c2"}},
                                Lt(RCol("v"), BCol("g"))});

  EvalContext indexed;
  indexed.use_index = true;
  indexed.compute_rng = true;
  EvalContext naive;
  naive.use_index = false;
  naive.compute_rng = true;

  Table via_index = EvalGmdj(base, detail, op, indexed).ValueOrDie();
  Table via_naive = EvalGmdj(base, detail, op, naive).ValueOrDie();
  EXPECT_TRUE(via_index.SameRows(via_naive))
      << "index:\n"
      << via_index.ToString(200) << "\nnaive:\n"
      << via_naive.ToString(200);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GmdjIndexEquivalenceTest,
                         ::testing::Range(uint64_t{0}, uint64_t{12}));

}  // namespace
}  // namespace skalla
