#include "net/network.h"

#include <gtest/gtest.h>

namespace skalla {
namespace {

TEST(NetworkTest, TransferTimeModel) {
  NetworkConfig config;
  config.latency_s = 0.002;
  config.bandwidth_bytes_per_s = 1000.0;
  SimulatedNetwork net(config);
  // 500 bytes at 1000 B/s = 0.5s plus 2ms latency.
  EXPECT_DOUBLE_EQ(net.TransferTime(500), 0.502);
  EXPECT_DOUBLE_EQ(net.TransferTime(0), 0.002);
}

TEST(NetworkTest, AccountingPerLinkAndTotal) {
  SimulatedNetwork net;
  net.Transfer(0, kCoordinatorId, 100);
  net.Transfer(0, kCoordinatorId, 50);
  net.Transfer(kCoordinatorId, 1, 10);
  EXPECT_EQ(net.total_bytes(), 160u);
  EXPECT_EQ(net.total_messages(), 3u);
  LinkStats up = net.Link(0, kCoordinatorId);
  EXPECT_EQ(up.messages, 2u);
  EXPECT_EQ(up.bytes, 150u);
  LinkStats down = net.Link(kCoordinatorId, 1);
  EXPECT_EQ(down.bytes, 10u);
  // Unused link reads as zero.
  EXPECT_EQ(net.Link(5, 6).messages, 0u);
}

TEST(NetworkTest, ResetClears) {
  SimulatedNetwork net;
  net.Transfer(0, 1, 100);
  net.Reset();
  EXPECT_EQ(net.total_bytes(), 0u);
  EXPECT_EQ(net.Link(0, 1).bytes, 0u);
}

TEST(NetworkTest, TransferReturnsModeledTime) {
  NetworkConfig config;
  config.latency_s = 0.001;
  config.bandwidth_bytes_per_s = 1e6;
  SimulatedNetwork net(config);
  double t = net.Transfer(2, kCoordinatorId, 1000000);
  EXPECT_DOUBLE_EQ(t, 1.001);
}

}  // namespace
}  // namespace skalla
