// Verifies the SKALLA_TRACING=OFF contract of obs/obs.h: every
// instrumentation macro expands to a no-op statement and never evaluates
// its argument expressions — the disabled hot path carries zero
// observability work regardless of how the rest of the build was
// configured.
//
// This translation unit force-disables the macro layer before the first
// include of obs/obs.h, so the test is meaningful in both CI
// configurations (-DSKALLA_TRACING=ON and OFF).

#undef SKALLA_TRACING
#define SKALLA_TRACING 0
#include "obs/obs.h"

#include <gtest/gtest.h>

namespace skalla {
namespace {

static_assert(!obs::TracingCompiledIn(),
              "obs.h must report tracing compiled out in this TU");

// Each call bumps the counter: the disabled macros must never run these.
int g_evaluations = 0;

// [[maybe_unused]]: proof of the contract — the disabled macros discard
// these calls entirely, so the compiler sees no use of either function.
[[maybe_unused]] const char* EvalName() {
  ++g_evaluations;
  return "skalla.test.should_never_exist";
}

[[maybe_unused]] int64_t EvalValue() {
  ++g_evaluations;
  return 1;
}

TEST(ObsDisabledTest, MacrosDoNotEvaluateTheirArguments) {
  {
    SKALLA_TRACE_SPAN(span, EvalName(), EvalName());
    SKALLA_SPAN_ATTR(span, EvalName(), EvalValue());
    SKALLA_SPAN_END(span);
  }
  SKALLA_TRACE_INSTANT(EvalName(), EvalName());
  SKALLA_TRACE_INSTANT_ATTRS(EvalName(), EvalName(),
                             {{EvalName(), EvalName()}});
  SKALLA_COUNTER_ADD(EvalName(), EvalValue());
  SKALLA_GAUGE_SET(EvalName(), EvalValue());
  SKALLA_HISTOGRAM_RECORD(EvalName(), EvalValue());
  EXPECT_EQ(g_evaluations, 0);
}

TEST(ObsDisabledTest, ObsOnlyBlockDisappears) {
  SKALLA_OBS_ONLY(g_evaluations = 100;)
  EXPECT_EQ(g_evaluations, 0);
}

TEST(ObsDisabledTest, NothingReachesTheGlobalTracerOrRegistry) {
  // The macros above must not have touched the process-wide sinks: the
  // registry never saw the instrument name the argument would have built.
  EXPECT_EQ(obs::MetricsRegistry::Global().ToJson().find(
                "skalla.test.should_never_exist"),
            std::string::npos);
}

TEST(ObsDisabledTest, MacrosAreStatementsNotDeclarations) {
  // The disabled forms must still parse as single statements so they can
  // sit in un-braced control flow exactly like the enabled forms.
  if (g_evaluations == 0)
    SKALLA_TRACE_INSTANT(EvalName(), EvalName());
  else
    SKALLA_COUNTER_ADD(EvalName(), EvalValue());
  for (int i = 0; i < 2; ++i) SKALLA_HISTOGRAM_RECORD(EvalName(), i);
  EXPECT_EQ(g_evaluations, 0);
}

}  // namespace
}  // namespace skalla
