// MetricsRegistry unit tests: counter/gauge semantics, histogram
// bucketing (boundary placement, overflow, default latency buckets),
// concurrent updates, JSON shape, and Reset.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace skalla {
namespace obs {
namespace {

TEST(MetricsTest, CounterAddsAndResets) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("skalla.test.counter");
  c.Add(5);
  c.Increment();
  EXPECT_EQ(c.value(), 6u);
  // Lookups by the same name return the same instrument.
  EXPECT_EQ(&registry.GetCounter("skalla.test.counter"), &c);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, GaugeIsLastValueWins) {
  MetricsRegistry registry;
  Gauge& g = registry.GetGauge("skalla.test.gauge");
  g.Set(2.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(MetricsTest, HistogramPlacesSamplesInClosedUpperBoundBuckets) {
  Histogram h({10.0, 100.0, 1000.0});
  // Bucket i counts samples <= bounds[i]; index 3 is overflow.
  h.Record(0.0);     // <= 10        -> bucket 0
  h.Record(10.0);    // == bound     -> bucket 0 (closed upper bound)
  h.Record(10.5);    // <= 100       -> bucket 1
  h.Record(100.0);   // == bound     -> bucket 1
  h.Record(999.9);   // <= 1000      -> bucket 2
  h.Record(1000.1);  // > last bound -> overflow
  h.Record(1e9);     //              -> overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0 + 10.0 + 10.5 + 100.0 + 999.9 + 1000.1 + 1e9);
  EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 7.0);
}

TEST(MetricsTest, EmptyHistogramHasZeroMean) {
  Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(MetricsTest, DefaultLatencyBucketsAre125SpacedAndSorted) {
  std::vector<double> bounds = Histogram::LatencyBucketsUs();
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
  EXPECT_DOUBLE_EQ(bounds.back(), 1e7);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  // The 1-2-5 pattern: each decade contributes 1x, 2x, 5x.
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(bounds[2], 5.0);
  EXPECT_DOUBLE_EQ(bounds[3], 10.0);
}

TEST(MetricsTest, RegistryHistogramUsesDefaultBucketsWhenUnspecified) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("skalla.test.latency");
  EXPECT_EQ(h.bounds(), Histogram::LatencyBucketsUs());
  // Custom bounds apply only on first creation.
  Histogram& again = registry.GetHistogram("skalla.test.latency", {1.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.bounds().size(), Histogram::LatencyBucketsUs().size());
}

TEST(MetricsTest, ConcurrentUpdatesAreNotLost) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 10000;
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter& c = registry.GetCounter("skalla.test.mt_counter");
      Histogram& h = registry.GetHistogram("skalla.test.mt_hist", {0.5});
      for (int i = 0; i < kOpsPerThread; ++i) {
        c.Add(1);
        h.Record(static_cast<double>(i % 2));  // Half bucket 0, half overflow.
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("skalla.test.mt_counter").value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  Histogram& h = registry.GetHistogram("skalla.test.mt_hist");
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(h.bucket_count(0), h.count() / 2);
  EXPECT_EQ(h.bucket_count(1), h.count() / 2);
}

TEST(MetricsTest, ToJsonRendersEveryInstrumentKind) {
  MetricsRegistry registry;
  registry.GetCounter("skalla.test.c").Add(7);
  registry.GetGauge("skalla.test.g").Set(1.5);
  Histogram& h = registry.GetHistogram("skalla.test.h", {10.0});
  h.Record(3.0);
  h.Record(30.0);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"skalla.test.c\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"skalla.test.g\": 1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"le\":10,\"n\":1}"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"le\":\"inf\",\"n\":1}"), std::string::npos) << json;
}

TEST(MetricsTest, ResetZeroesEverythingButKeepsReferencesValid) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("skalla.test.c");
  Gauge& g = registry.GetGauge("skalla.test.g");
  Histogram& h = registry.GetHistogram("skalla.test.h", {1.0});
  c.Add(3);
  g.Set(9.0);
  h.Record(0.5);
  registry.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  // The pre-Reset reference is still the live instrument (Reset works in
  // place; it never replaces instrument objects).
  EXPECT_EQ(&registry.GetHistogram("skalla.test.h"), &h);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_EQ(h.bounds(), std::vector<double>{1.0});
  c.Add(1);  // Pre-Reset references still feed the registry's instruments.
  EXPECT_NE(registry.ToJson().find("\"skalla.test.c\": 1"),
            std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace skalla
