// Tracer unit tests: span lifecycle, nesting/parent links, attributes,
// instants, thread-safety of concurrent recording, Chrome-JSON export
// shape, and the run-time enable gate.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace skalla {
namespace obs {
namespace {

TEST(TracerTest, DisabledTracerHandsOutDisarmedSpans) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  Span span = tracer.StartSpan("noop", "test");
  EXPECT_FALSE(span.armed());
  span.AddAttr("key", "value");  // Must be a safe no-op.
  span.End();
  tracer.Instant("noop", "test");
  EXPECT_EQ(tracer.NumEvents(), 0u);
}

TEST(TracerTest, SpanRecordsOnEndNotOnStart) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span span = tracer.StartSpan("work", "test");
    EXPECT_TRUE(span.armed());
    EXPECT_EQ(tracer.NumEvents(), 0u);  // Open spans are not yet events.
  }
  EXPECT_EQ(tracer.NumEvents(), 1u);
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].category, "test");
  EXPECT_GE(events[0].dur_us, 0);
  EXPECT_EQ(events[0].parent_id, 0u);
}

TEST(TracerTest, EndIsIdempotent) {
  Tracer tracer;
  tracer.set_enabled(true);
  Span span = tracer.StartSpan("once", "test");
  span.End();
  span.End();          // Second End is a no-op...
  span.End();          // ...and so is the destructor later.
  EXPECT_FALSE(span.armed());
  EXPECT_EQ(tracer.NumEvents(), 1u);
}

TEST(TracerTest, NestedSpansLinkToTheirParents) {
  Tracer tracer;
  tracer.set_enabled(true);
  uint64_t outer_id, inner_id;
  {
    Span outer = tracer.StartSpan("outer", "test");
    outer_id = outer.id();
    {
      Span inner = tracer.StartSpan("inner", "test");
      inner_id = inner.id();
      tracer.Instant("mark", "test");
    }
    Span sibling = tracer.StartSpan("sibling", "test");
  }
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (const TraceEvent& e : events) {
    if (e.name == "outer") {
      EXPECT_EQ(e.parent_id, 0u);
    } else if (e.name == "inner") {
      EXPECT_EQ(e.parent_id, outer_id);
    } else if (e.name == "mark") {
      // The instant fired while `inner` was the innermost open span.
      EXPECT_EQ(e.parent_id, inner_id);
      EXPECT_EQ(e.dur_us, -1);
    } else if (e.name == "sibling") {
      // `inner` had closed; `outer` was on top of the stack again.
      EXPECT_EQ(e.parent_id, outer_id);
    } else {
      FAIL() << "unexpected event " << e.name;
    }
  }
}

TEST(TracerTest, MovedFromSpanDoesNotDoubleRecord) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span outer = tracer.StartSpan("outer", "test");
    Span moved = std::move(outer);
    EXPECT_FALSE(outer.armed());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(moved.armed());
  }
  EXPECT_EQ(tracer.NumEvents(), 1u);
}

TEST(TracerTest, AttributesSurviveToTheSnapshot) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span span = tracer.StartSpan("attrs", "test");
    span.AddAttr("str", "value");
    span.AddAttr("int", static_cast<int64_t>(-7));
    span.AddAttr("uint", static_cast<uint64_t>(42));
    span.AddAttr("dbl", 0.5);
  }
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].attrs.size(), 4u);
  EXPECT_EQ(events[0].attrs[0], (std::pair<std::string, std::string>{
                                    "str", "value"}));
  EXPECT_EQ(events[0].attrs[1].second, "-7");
  EXPECT_EQ(events[0].attrs[2].second, "42");
  EXPECT_EQ(events[0].attrs[3].second, "0.5");
}

TEST(TracerTest, ConcurrentThreadsRecordWithoutLossAndWithOwnTids) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  Tracer tracer;
  tracer.set_enabled(true);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span outer = tracer.StartSpan("outer", "mt");
        Span inner = tracer.StartSpan("inner", "mt");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread * 2);
  // Every thread got its own dense tid, and nesting never crossed
  // threads: each inner's parent is an outer recorded on the same tid.
  std::set<uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
  for (const TraceEvent& e : events) {
    if (e.name == "inner") {
      EXPECT_NE(e.parent_id, 0u);
    }
  }
}

TEST(TracerTest, SnapshotIsSortedAndClearDropsEvents) {
  Tracer tracer;
  tracer.set_enabled(true);
  for (int i = 0; i < 10; ++i) tracer.Instant("tick", "test");
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
  tracer.Clear();
  EXPECT_EQ(tracer.NumEvents(), 0u);
  tracer.Instant("after", "test");  // Buffers stay usable after Clear.
  EXPECT_EQ(tracer.NumEvents(), 1u);
}

TEST(TracerTest, ChromeJsonHasRequiredEventFields) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span span = tracer.StartSpan("phase \"x\"", "exec");  // Needs escaping.
    span.AddAttr("bytes", static_cast<uint64_t>(123));
    tracer.Instant("fault", "fault");
  }
  std::string json = tracer.ToChromeJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"phase \\\"x\\\"\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bytes\":\"123\""), std::string::npos) << json;
}

TEST(TracerTest, TreeStringIndentsChildrenUnderParents) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Span outer = tracer.StartSpan("round:md1", "exec");
    Span inner = tracer.StartSpan("site.eval", "site");
  }
  std::string tree = tracer.ToTreeString();
  size_t outer_pos = tree.find("round:md1");
  size_t inner_pos = tree.find("site.eval");
  ASSERT_NE(outer_pos, std::string::npos) << tree;
  ASSERT_NE(inner_pos, std::string::npos) << tree;
  EXPECT_LT(outer_pos, inner_pos);
  // The child is indented two spaces deeper than its parent.
  size_t outer_indent = outer_pos - (tree.rfind('\n', outer_pos) + 1);
  size_t inner_indent = inner_pos - (tree.rfind('\n', inner_pos) + 1);
  EXPECT_EQ(inner_indent, outer_indent + 2);
}

TEST(TracerTest, SnapshotSinceReturnsOnlyNewerEvents) {
  Tracer tracer;
  tracer.set_enabled(true);
  { Span before = tracer.StartSpan("before", "test"); }
  uint64_t mark = tracer.CommitMark();
  { Span after = tracer.StartSpan("after", "test"); }
  std::vector<TraceEvent> since = tracer.SnapshotSince(mark);
  ASSERT_EQ(since.size(), 1u);
  EXPECT_EQ(since[0].name, "after");
  EXPECT_EQ(tracer.SnapshotSince(tracer.CommitMark()).size(), 0u);
}

TEST(TracerTest, ImportRemoteSpansIsDeterministic) {
  // A site's captured subtree (a root with one child) imported twice
  // into identically-prepared tracers must land identically: remapped
  // ids, preserved intra-batch parent links, batch-external roots
  // grafted under the local parent, shifted timestamps, and the given
  // process lane.
  std::vector<TraceEvent> remote;
  TraceEvent root;
  root.name = "site.round:md1";
  root.category = "site";
  root.ts_us = 100;
  root.dur_us = 80;
  root.id = 501;
  root.parent_id = 0;
  root.tid = 9;
  TraceEvent child = root;
  child.name = "morsel";
  child.ts_us = 120;
  child.dur_us = 30;
  child.id = 502;
  child.parent_id = 501;
  remote = {root, child};

  auto run_import = [&](Tracer& tracer) -> std::vector<TraceEvent> {
    tracer.set_enabled(true);
    uint64_t rpc_span_id = 0;
    {
      Span rpc_span = tracer.StartSpan("rpc.round", "rpc");
      rpc_span_id = rpc_span.id();
      tracer.ImportRemoteSpans(remote, rpc_span_id, /*ts_offset_us=*/1000,
                               /*pid=*/5, "site 3");
    }
    std::vector<TraceEvent> events = tracer.Snapshot();
    // Find the imported pair and check grafting against the rpc span.
    for (const TraceEvent& e : events) {
      if (e.name == "site.round:md1") {
        EXPECT_EQ(e.parent_id, rpc_span_id);
        EXPECT_EQ(e.pid, 5u);
        EXPECT_EQ(e.ts_us, 1100);
        EXPECT_EQ(e.dur_us, 80);
        // Remapped into the local id space, not the remote one.
        EXPECT_NE(e.id, 501u);
      }
      if (e.name == "morsel") {
        EXPECT_EQ(e.pid, 5u);
        EXPECT_EQ(e.ts_us, 1120);
      }
    }
    return events;
  };

  Tracer a;
  Tracer b;
  std::vector<TraceEvent> ea = run_import(a);
  std::vector<TraceEvent> eb = run_import(b);
  ASSERT_EQ(ea.size(), eb.size());
  ASSERT_EQ(ea.size(), 3u);  // rpc.round + two imported spans.
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].name, eb[i].name);
    EXPECT_EQ(ea[i].id, eb[i].id);
    EXPECT_EQ(ea[i].parent_id, eb[i].parent_id);
    EXPECT_EQ(ea[i].pid, eb[i].pid);
    // Local spans carry wall-clock timestamps; only the imported ones
    // (fixed remote ts + fixed offset) are deterministic.
    if (ea[i].pid != 1) {
      EXPECT_EQ(ea[i].ts_us, eb[i].ts_us);
    }
  }
  // The intra-batch parent link survived the remap in both tracers.
  const TraceEvent* imported_root = nullptr;
  const TraceEvent* imported_child = nullptr;
  for (const TraceEvent& e : ea) {
    if (e.name == "site.round:md1") imported_root = &e;
    if (e.name == "morsel") imported_child = &e;
  }
  ASSERT_NE(imported_root, nullptr);
  ASSERT_NE(imported_child, nullptr);
  EXPECT_EQ(imported_child->parent_id, imported_root->id);

  // The process lane is named in the Chrome export.
  std::string json = a.ToChromeJson();
  EXPECT_NE(json.find("process_name"), std::string::npos) << json;
  EXPECT_NE(json.find("site 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":5"), std::string::npos) << json;
}

TEST(TracerTest, RuntimeDisableStopsRecordingImmediately) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.Instant("recorded", "test");
  tracer.set_enabled(false);
  tracer.Instant("dropped", "test");
  Span span = tracer.StartSpan("dropped", "test");
  span.End();
  EXPECT_EQ(tracer.NumEvents(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace skalla
