// OLAP extensions: data cube, unpivot/marginals, multi-feature queries.

#include <gtest/gtest.h>

#include "common/random.h"
#include "olap/cube.h"
#include "olap/multifeature.h"
#include "olap/unpivot.h"
#include "storage/partition.h"

namespace skalla {
namespace {

Table SalesTable(uint64_t seed, size_t rows) {
  Random rng(seed);
  SchemaPtr schema = Schema::Make({{"region", ValueType::kInt64},
                                   {"product", ValueType::kString},
                                   {"qty", ValueType::kInt64}})
                         .ValueOrDie();
  const char* products[] = {"ink", "pen", "paper"};
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendUnchecked({Value(rng.UniformInt(0, 3)),
                       Value(std::string(products[rng.Uniform(3)])),
                       Value(rng.UniformInt(1, 10))});
  }
  return t;
}

DistributedWarehouse MakeWarehouse(const Table& sales, size_t sites) {
  DistributedWarehouse dw(sites);
  dw.AddTablePartitionedBy("sales", sales, "region", {"product", "qty"})
      .Check();
  return dw;
}

TEST(CubeTest, CuboidExprShapes) {
  CubeSpec spec;
  spec.detail_table = "sales";
  spec.dims = {"region", "product"};
  spec.aggs = {{AggKind::kCountStar, "", "n"}};

  GmdjExpr both = CuboidExpr(spec, 0b11).ValueOrDie();
  EXPECT_EQ(both.base.columns.size(), 2u);
  GmdjExpr region_only = CuboidExpr(spec, 0b01).ValueOrDie();
  ASSERT_EQ(region_only.base.columns.size(), 1u);
  EXPECT_EQ(region_only.base.columns[0], "region");
  GmdjExpr grand = CuboidExpr(spec, 0).ValueOrDie();
  EXPECT_TRUE(grand.base.columns.empty());

  EXPECT_TRUE(CuboidExpr(spec, 4).status().IsInvalidArgument());
}

TEST(CubeTest, DistributedMatchesCentralizedAndManualChecks) {
  Table sales = SalesTable(3, 500);
  DistributedWarehouse dw = MakeWarehouse(sales, 3);

  CubeSpec spec;
  spec.detail_table = "sales";
  spec.dims = {"region", "product"};
  spec.aggs = {{AggKind::kCountStar, "", "n"},
               {AggKind::kSum, "qty", "total"}};

  Table cube = ComputeCubeDistributed(dw, spec, OptimizerOptions::All())
                   .ValueOrDie();
  Table reference = ComputeCubeCentralized(dw, spec).ValueOrDie();
  EXPECT_TRUE(cube.SameRows(reference));

  // Cardinality: 4 regions x 3 products (full cuboid) + 4 + 3 + 1.
  EXPECT_EQ(cube.num_rows(), 4u * 3 + 4 + 3 + 1);

  // The grand total row counts everything.
  int64_t grand_n = -1;
  int64_t grand_total = -1;
  int64_t sum_region_n = 0;
  for (size_t r = 0; r < cube.num_rows(); ++r) {
    bool region_null = cube.at(r, 0).is_null();
    bool product_null = cube.at(r, 1).is_null();
    if (region_null && product_null) {
      grand_n = cube.at(r, 2).int64();
      grand_total = cube.at(r, 3).int64();
    } else if (!region_null && product_null) {
      sum_region_n += cube.at(r, 2).int64();
    }
  }
  EXPECT_EQ(grand_n, 500);
  EXPECT_GT(grand_total, 0);
  // Region marginals partition all rows.
  EXPECT_EQ(sum_region_n, 500);
}

TEST(CubeTest, EveryOptimizerConfigAgrees) {
  Table sales = SalesTable(11, 300);
  DistributedWarehouse dw = MakeWarehouse(sales, 4);
  CubeSpec spec;
  spec.detail_table = "sales";
  spec.dims = {"region", "product"};
  spec.aggs = {{AggKind::kAvg, "qty", "avg_qty"}};
  Table reference = ComputeCubeCentralized(dw, spec).ValueOrDie();
  for (int mask = 0; mask < 16; ++mask) {
    OptimizerOptions o;
    o.coalescing = mask & 1;
    o.indep_group_reduction = mask & 2;
    o.aware_group_reduction = mask & 4;
    o.sync_reduction = mask & 8;
    Table cube = ComputeCubeDistributed(dw, spec, o).ValueOrDie();
    EXPECT_TRUE(cube.SameRows(reference)) << "mask " << mask;
  }
}

TEST(CubeTest, RollupMatchesDirectComputation) {
  Table sales = SalesTable(29, 600);
  DistributedWarehouse dw = MakeWarehouse(sales, 4);
  CubeSpec spec;
  spec.detail_table = "sales";
  spec.dims = {"region", "product"};
  spec.aggs = {{AggKind::kCountStar, "", "n"},
               {AggKind::kSum, "qty", "total"},
               {AggKind::kAvg, "qty", "avg_qty"},
               {AggKind::kMin, "qty", "lo"},
               {AggKind::kMax, "qty", "hi"}};

  Table reference = ComputeCubeCentralized(dw, spec).ValueOrDie();
  ExecStats direct_stats;
  Table direct = ComputeCubeDistributed(dw, spec, OptimizerOptions::All(),
                                        &direct_stats)
                     .ValueOrDie();
  ExecStats rollup_stats;
  Table rollup =
      ComputeCubeByRollup(dw, spec, OptimizerOptions::All(), &rollup_stats)
          .ValueOrDie();

  EXPECT_TRUE(direct.SameRows(reference));
  EXPECT_TRUE(rollup.SameRows(reference))
      << "rollup:\n"
      << rollup.ToString(40) << "reference:\n"
      << reference.ToString(40);
  // One distributed query instead of 2^k: far fewer rounds and bytes.
  EXPECT_LT(rollup_stats.rounds.size(), direct_stats.rounds.size());
  EXPECT_LT(rollup_stats.TotalBytes(), direct_stats.TotalBytes());
}

TEST(UnpivotTest, BasicReshape) {
  SchemaPtr schema = Schema::Make({{"id", ValueType::kInt64},
                                   {"a", ValueType::kInt64},
                                   {"b", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  t.AppendUnchecked({Value(1), Value(10), Value(20)});
  t.AppendUnchecked({Value(2), Value(30), Value::Null()});
  Table u = Unpivot(t, {"a", "b"}, "attr", "val").ValueOrDie();
  // Row 1 yields two rows; row 2 yields one (NULL dropped).
  ASSERT_EQ(u.num_rows(), 3u);
  ASSERT_EQ(u.num_columns(), 3u);  // id, attr, val.
  EXPECT_EQ(u.schema()->field(1).name, "attr");
  u.SortRows();
  EXPECT_EQ(u.at(0, 0).int64(), 1);
  EXPECT_EQ(u.at(0, 1).str(), "a");
  EXPECT_EQ(u.at(0, 2).int64(), 10);
}

TEST(UnpivotTest, MixedNumericTypesWiden) {
  SchemaPtr schema = Schema::Make({{"i", ValueType::kInt64},
                                   {"f", ValueType::kFloat64}})
                         .ValueOrDie();
  Table t(schema);
  t.AppendUnchecked({Value(1), Value(2.5)});
  Table u = Unpivot(t, {"i", "f"}, "attr", "val").ValueOrDie();
  EXPECT_EQ(u.schema()->field(1).type, ValueType::kFloat64);
}

TEST(UnpivotTest, IncompatibleTypesFail) {
  SchemaPtr schema = Schema::Make({{"i", ValueType::kInt64},
                                   {"s", ValueType::kString}})
                         .ValueOrDie();
  Table t(schema);
  EXPECT_TRUE(
      Unpivot(t, {"i", "s"}, "attr", "val").status().IsTypeError());
  EXPECT_TRUE(Unpivot(t, {}, "attr", "val").status().IsInvalidArgument());
  EXPECT_TRUE(
      Unpivot(t, {"missing"}, "attr", "val").status().IsNotFound());
}

TEST(MarginalsTest, CountsMatchDirectScan) {
  Table sales = SalesTable(17, 400);
  DistributedWarehouse dw = MakeWarehouse(sales, 2);
  Table marginals = ComputeMarginalsDistributed(
                        dw, "sales", {"region", "product"},
                        OptimizerOptions::All())
                        .ValueOrDie();
  // Every count matches a direct scan of the whole relation.
  for (size_t r = 0; r < marginals.num_rows(); ++r) {
    const std::string& attr = marginals.at(r, 0).str();
    const std::string& rendered = marginals.at(r, 1).str();
    int64_t count = marginals.at(r, 2).int64();
    size_t col = static_cast<size_t>(sales.schema()->IndexOf(attr));
    int64_t expected = 0;
    for (size_t i = 0; i < sales.num_rows(); ++i) {
      if (sales.at(i, col).ToString() == rendered) ++expected;
    }
    EXPECT_EQ(count, expected) << attr << "=" << rendered;
  }
  // Per attribute, counts add up to the table size.
  int64_t region_total = 0;
  for (size_t r = 0; r < marginals.num_rows(); ++r) {
    if (marginals.at(r, 0).str() == "region") {
      region_total += marginals.at(r, 2).int64();
    }
  }
  EXPECT_EQ(region_total, 400);
}

TEST(MultiFeatureTest, CountAtMinMatchesManualComputation) {
  Table sales = SalesTable(23, 300);
  DistributedWarehouse dw = MakeWarehouse(sales, 3);

  MultiFeatureSpec spec;
  spec.detail_table = "sales";
  spec.group_columns = {"region"};
  spec.inner = {AggKind::kMin, "qty", "min_qty"};
  spec.compare_column = "qty";
  spec.compare_op = BinaryOp::kEq;
  spec.outer = {{AggKind::kCountStar, "", "at_min"}};

  GmdjExpr query = BuildMultiFeatureQuery(spec).ValueOrDie();
  Table result = dw.Execute(query, OptimizerOptions::All()).ValueOrDie();
  Table reference = dw.ExecuteCentralized(query).ValueOrDie();
  EXPECT_TRUE(result.SameRows(reference));

  result.SortRowsBy({0});
  for (size_t r = 0; r < result.num_rows(); ++r) {
    int64_t region = result.at(r, 0).int64();
    int64_t min_qty = result.at(r, 1).int64();
    int64_t at_min = result.at(r, 2).int64();
    int64_t expect_min = INT64_MAX;
    for (size_t i = 0; i < sales.num_rows(); ++i) {
      if (sales.at(i, 0).int64() == region) {
        expect_min = std::min(expect_min, sales.at(i, 2).int64());
      }
    }
    int64_t expect_count = 0;
    for (size_t i = 0; i < sales.num_rows(); ++i) {
      if (sales.at(i, 0).int64() == region &&
          sales.at(i, 2).int64() == expect_min) {
        ++expect_count;
      }
    }
    EXPECT_EQ(min_qty, expect_min);
    EXPECT_EQ(at_min, expect_count);
  }
}

TEST(MultiFeatureTest, ValidationErrors) {
  MultiFeatureSpec spec;
  spec.detail_table = "sales";
  spec.inner = {AggKind::kMin, "qty", "m"};
  spec.compare_column = "qty";
  spec.outer = {{AggKind::kCountStar, "", "c"}};
  // Missing group columns.
  EXPECT_TRUE(BuildMultiFeatureQuery(spec).status().IsInvalidArgument());
  spec.group_columns = {"region"};
  spec.outer.clear();
  EXPECT_TRUE(BuildMultiFeatureQuery(spec).status().IsInvalidArgument());
  spec.outer = {{AggKind::kCountStar, "", "c"}};
  spec.compare_op = BinaryOp::kAdd;
  EXPECT_TRUE(BuildMultiFeatureQuery(spec).status().IsInvalidArgument());
}

}  // namespace
}  // namespace skalla
