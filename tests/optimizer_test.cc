// Egil optimizer analyses: coalescing legality, Prop. 2 / Corollary 1
// eligibility, and Theorem 4 site-filter derivation (value sets and
// interval bounds, including the paper's arithmetic example).

#include "opt/optimizer.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "expr/builder.h"

namespace skalla {
namespace {

GmdjOp MakeOp(std::string detail, std::vector<GmdjBlock> blocks) {
  GmdjOp op;
  op.detail_table = std::move(detail);
  op.blocks = std::move(blocks);
  return op;
}

ExprPtr KeyEq() { return Eq(RCol("g"), BCol("g")); }

TEST(CoalescingTest, IndependentOpsCoalesce) {
  GmdjOp first = MakeOp(
      "t", {GmdjBlock{{{AggKind::kCountStar, "", "c1"}}, KeyEq()}});
  GmdjOp second = MakeOp(
      "t", {GmdjBlock{{{AggKind::kCountStar, "", "c2"}},
                      And(KeyEq(), Gt(RCol("v"), Lit(Value(5))))}});
  EXPECT_TRUE(Egil::CanCoalesce(first, second));
}

TEST(CoalescingTest, CorrelatedOpsDoNotCoalesce) {
  GmdjOp first = MakeOp(
      "t", {GmdjBlock{{{AggKind::kAvg, "v", "a1"}}, KeyEq()}});
  GmdjOp second = MakeOp(
      "t", {GmdjBlock{{{AggKind::kCountStar, "", "c2"}},
                      And(KeyEq(), Ge(RCol("v"), BCol("a1")))}});
  EXPECT_FALSE(Egil::CanCoalesce(first, second));
}

TEST(CoalescingTest, DifferentDetailTablesDoNotCoalesce) {
  GmdjOp first = MakeOp(
      "t1", {GmdjBlock{{{AggKind::kCountStar, "", "c1"}}, KeyEq()}});
  GmdjOp second = MakeOp(
      "t2", {GmdjBlock{{{AggKind::kCountStar, "", "c2"}}, KeyEq()}});
  EXPECT_FALSE(Egil::CanCoalesce(first, second));
}

TEST(CoalescingTest, ChainOfThreeCollapsesToOne) {
  GmdjExpr expr;
  expr.base = BaseQuery{"t", {"g"}, true, nullptr};
  for (int i = 0; i < 3; ++i) {
    expr.ops.push_back(MakeOp(
        "t", {GmdjBlock{{{AggKind::kCountStar, "", StrCat("c", i)}},
                        KeyEq()}}));
  }
  Egil egil(OptimizerOptions{true, false, false, false}, 2);
  DistributedPlan plan = egil.Optimize(expr).ValueOrDie();
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.stages[0].op.blocks.size(), 3u);
}

TEST(Prop2Test, Eligibility) {
  GmdjOp good = MakeOp(
      "t", {GmdjBlock{{{AggKind::kCountStar, "", "c"}}, KeyEq()}});
  BaseQuery base{"t", {"g"}, true, nullptr};
  EXPECT_TRUE(Egil::BaseSyncSkippable(base, good));

  // WHERE on the base query breaks the premise.
  BaseQuery filtered{"t", {"g"}, true, Gt(RCol("v"), Lit(Value(0)))};
  EXPECT_FALSE(Egil::BaseSyncSkippable(filtered, good));

  // Non-distinct projection breaks it.
  BaseQuery dup{"t", {"g"}, false, nullptr};
  EXPECT_FALSE(Egil::BaseSyncSkippable(dup, good));

  // Different detail relation breaks it.
  BaseQuery other{"other", {"g"}, true, nullptr};
  EXPECT_FALSE(Egil::BaseSyncSkippable(other, good));

  // A block that does not entail key equality breaks it.
  GmdjOp weak = MakeOp(
      "t", {GmdjBlock{{{AggKind::kCountStar, "", "c"}}, KeyEq()},
            GmdjBlock{{{AggKind::kCountStar, "", "c2"}},
                      Gt(RCol("v"), Lit(Value(0)))}});
  EXPECT_FALSE(Egil::BaseSyncSkippable(base, weak));

  // Multi-column keys need every column entailed.
  BaseQuery two{"t", {"g", "h"}, true, nullptr};
  EXPECT_FALSE(Egil::BaseSyncSkippable(two, good));
  GmdjOp both = MakeOp(
      "t", {GmdjBlock{{{AggKind::kCountStar, "", "c"}},
                      And(KeyEq(), Eq(RCol("h"), BCol("h")))}});
  EXPECT_TRUE(Egil::BaseSyncSkippable(two, both));
}

class FilterFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two sites; site 0 holds g in {1, 2} with v range [0, 10]; site 1
    // holds g in {3} with v range [100, 200].
    info_ = PartitionInfo(2);
    ColumnDistribution g0;
    g0.values.emplace();
    g0.values->Insert(Value(1));
    g0.values->Insert(Value(2));
    g0.min = 1;
    g0.max = 2;
    ColumnDistribution g1;
    g1.values.emplace();
    g1.values->Insert(Value(3));
    g1.min = 3;
    g1.max = 3;
    info_.SetDistribution(0, "g", std::move(g0));
    info_.SetDistribution(1, "g", std::move(g1));
    ColumnDistribution v0;
    v0.min = 0;
    v0.max = 10;
    ColumnDistribution v1;
    v1.min = 100;
    v1.max = 200;
    info_.SetDistribution(0, "v", std::move(v0));
    info_.SetDistribution(1, "v", std::move(v1));
  }

  PartitionInfo info_;
};

TEST_F(FilterFixture, PartitionAttributeDetection) {
  EXPECT_TRUE(info_.IsPartitionAttribute("g"));
  EXPECT_FALSE(info_.IsPartitionAttribute("v"));  // Only ranges known...
}

TEST_F(FilterFixture, PartitionEntailment) {
  Egil egil(OptimizerOptions::All(), 2);
  egil.SetPartitionInfo("t", &info_);
  GmdjOp op = MakeOp(
      "t", {GmdjBlock{{{AggKind::kCountStar, "", "c"}}, KeyEq()}});
  EXPECT_TRUE(egil.HasPartitionEntailment(op, {"g"}));
  EXPECT_FALSE(egil.HasPartitionEntailment(op, {"v"}));
  GmdjOp non_entailing = MakeOp(
      "t", {GmdjBlock{{{AggKind::kCountStar, "", "c"}},
                      Gt(RCol("v"), BCol("g"))}});
  EXPECT_FALSE(egil.HasPartitionEntailment(non_entailing, {"g"}));
}

TEST_F(FilterFixture, DerivedFiltersRestrictCorrectly) {
  // Sync reduction off, so the base synchronizes and the GMDJ stage gets
  // per-site aware-GR filters.
  OptimizerOptions aware_only;
  aware_only.aware_group_reduction = true;
  Egil egil(aware_only, 2);
  egil.SetPartitionInfo("t", &info_);

  GmdjExpr expr;
  expr.base = BaseQuery{"t", {"g"}, true, nullptr};
  expr.ops.push_back(MakeOp(
      "t", {GmdjBlock{{{AggKind::kCountStar, "", "c"}}, KeyEq()},
            GmdjBlock{{{AggKind::kCountStar, "", "c2"}},
                      And(KeyEq(), Gt(RCol("v"), Lit(Value(50))))}}));

  DistributedPlan plan = egil.Optimize(expr).ValueOrDie();
  ASSERT_EQ(plan.stages.size(), 1u);
  ASSERT_EQ(plan.stages[0].site_base_filters.size(), 2u);

  SchemaPtr base_schema =
      Schema::Make({{"g", ValueType::kInt64}}).ValueOrDie();
  for (size_t site = 0; site < 2; ++site) {
    const ExprPtr& filter = plan.stages[0].site_base_filters[site];
    ASSERT_NE(filter, nullptr) << "site " << site;
    ExprPtr bound = filter->Bind(base_schema.get(), nullptr).ValueOrDie();
    Row g1 = {Value(1)};
    Row g3 = {Value(3)};
    if (site == 0) {
      EXPECT_TRUE(bound->EvalBool(&g1, nullptr));
      EXPECT_FALSE(bound->EvalBool(&g3, nullptr));
    } else {
      EXPECT_FALSE(bound->EvalBool(&g1, nullptr));
      EXPECT_TRUE(bound->EvalBool(&g3, nullptr));
    }
  }
}

TEST_F(FilterFixture, PaperArithmeticExample) {
  // Sect. 4.1: θ revised to b.X + b.Y < r.v * 2. At site 0, v in [0,10]
  // so ¬ψ_0 is b.X + b.Y < 20; at site 1, v in [100,200] so < 400.
  Egil egil(OptimizerOptions::All(), 2);
  egil.SetPartitionInfo("t", &info_);
  GmdjExpr expr;
  expr.base = BaseQuery{"t", {"X", "Y"}, true, nullptr};
  expr.ops.push_back(MakeOp(
      "t", {GmdjBlock{{{AggKind::kCountStar, "", "c"}},
                      Lt(Add(BCol("X"), BCol("Y")),
                         Mul(RCol("v"), Lit(Value(2))))}}));
  DistributedPlan plan = egil.Optimize(expr).ValueOrDie();
  ASSERT_EQ(plan.stages[0].site_base_filters.size(), 2u);

  SchemaPtr base_schema = Schema::Make({{"X", ValueType::kInt64},
                                        {"Y", ValueType::kInt64}})
                              .ValueOrDie();
  ExprPtr f0 = plan.stages[0].site_base_filters[0]
                   ->Bind(base_schema.get(), nullptr)
                   .ValueOrDie();
  ExprPtr f1 = plan.stages[0].site_base_filters[1]
                   ->Bind(base_schema.get(), nullptr)
                   .ValueOrDie();
  Row sum15 = {Value(10), Value(5)};   // X+Y = 15.
  Row sum30 = {Value(20), Value(10)};  // X+Y = 30.
  Row sum500 = {Value(400), Value(100)};
  EXPECT_TRUE(f0->EvalBool(&sum15, nullptr));    // 15 < 20.
  EXPECT_FALSE(f0->EvalBool(&sum30, nullptr));   // 30 >= 20.
  EXPECT_TRUE(f1->EvalBool(&sum30, nullptr));    // 30 < 400.
  EXPECT_FALSE(f1->EvalBool(&sum500, nullptr));  // 500 >= 400.
}

TEST_F(FilterFixture, NoRestrictionMeansNullFilter) {
  Egil egil(OptimizerOptions::All(), 2);
  egil.SetPartitionInfo("t", &info_);
  GmdjExpr expr;
  expr.base = BaseQuery{"t", {"g"}, true, nullptr};
  // Condition over an untracked column: no filter derivable. Also not
  // Prop2-eligible, so the base syncs and the stage would otherwise get
  // filters.
  expr.ops.push_back(MakeOp(
      "t", {GmdjBlock{{{AggKind::kCountStar, "", "c"}},
                      Gt(RCol("untracked"), BCol("g"))}}));
  DistributedPlan plan = egil.Optimize(expr).ValueOrDie();
  EXPECT_TRUE(plan.stages[0].site_base_filters.empty());
}

TEST(OptimizerTest, NoPartitionInfoDisablesDistributionAwareParts) {
  Egil egil(OptimizerOptions::All(), 4);
  GmdjExpr expr;
  expr.base = BaseQuery{"t", {"g"}, true, nullptr};
  GmdjOp op1 = MakeOp(
      "t", {GmdjBlock{{{AggKind::kAvg, "v", "a"}}, KeyEq()}});
  GmdjOp op2 = MakeOp(
      "t", {GmdjBlock{{{AggKind::kCountStar, "", "c"}},
                      And(KeyEq(), Ge(RCol("v"), BCol("a")))}});
  expr.ops = {op1, op2};
  DistributedPlan plan = egil.Optimize(expr).ValueOrDie();
  // Prop. 2 still applies (purely syntactic), but Cor. 1 cannot without
  // partition knowledge: stage 1 must synchronize, and no site filters.
  EXPECT_FALSE(plan.sync_base);
  ASSERT_EQ(plan.stages.size(), 2u);
  EXPECT_TRUE(plan.stages[0].sync_after);
  EXPECT_TRUE(plan.stages[0].site_base_filters.empty());
  EXPECT_TRUE(plan.stages[1].site_base_filters.empty());
}

TEST(OptimizerTest, IndepGrOnlyWhenCoordinatorKnowsGroups) {
  // With sync_reduction skipping the base sync, the first synchronized
  // round is from-scratch: indep-GR must NOT be applied there (dropping a
  // zero-|RNG| group would lose it entirely), but IS applied afterwards.
  Egil egil(OptimizerOptions::All(), 2);
  GmdjExpr expr;
  expr.base = BaseQuery{"t", {"g"}, true, nullptr};
  GmdjOp op1 = MakeOp(
      "t", {GmdjBlock{{{AggKind::kAvg, "v", "a"}}, KeyEq()}});
  GmdjOp op2 = MakeOp(
      "t", {GmdjBlock{{{AggKind::kCountStar, "", "c"}},
                      And(KeyEq(), Ge(RCol("v"), BCol("a")))}});
  expr.ops = {op1, op2};
  DistributedPlan plan = egil.Optimize(expr).ValueOrDie();
  ASSERT_EQ(plan.stages.size(), 2u);
  EXPECT_FALSE(plan.sync_base);
  EXPECT_FALSE(plan.stages[0].indep_group_reduction);
  EXPECT_TRUE(plan.stages[1].indep_group_reduction);
}

}  // namespace
}  // namespace skalla
