// Morsel-parallel evaluation determinism: work decomposition is a pure
// function of EvalContext::morsel_rows, and eval_threads only schedules
// morsels onto workers, so every kernel must produce *byte-identical*
// results at every thread count — for the indexed and nested-loop row
// paths, the columnar path, sub- and super-aggregate modes, the __rng
// indicator, empty inputs, and the full query suite end to end. Also
// covers the EvalContext API surface itself: validation, the columnar
// kernel's typed rejection of the nested-loop oracle, Site's routing of
// oracle requests to the row engine, and the (base_cols, detail_cols)
// index-cache pairing.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "columnar/column_table.h"
#include "columnar/vector_eval.h"
#include "common/random.h"
#include "core/local_eval.h"
#include "data/flow_gen.h"
#include "dist/site.h"
#include "dist/warehouse.h"
#include "expr/builder.h"
#include "net/serde.h"
#include "relalg/operators.h"
#include "sql/parser.h"

namespace skalla {
namespace {

// The thread counts every case sweeps: sequential, two workers, and one
// worker per hardware thread (0 resolves to hw).
const size_t kThreadCounts[] = {1, 2, 0};

std::vector<uint8_t> Bytes(const Table& table) {
  std::vector<uint8_t> out;
  WriteTable(table, &out);
  return out;
}

// Detail relation large enough to split into several morsels at small
// morsel_rows: int64 group/measure columns plus a float64 measure (the
// type whose sums are sensitive to merge association) and some NULLs.
Table MakeDetail(uint64_t seed, size_t rows) {
  Random rng(seed);
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"h", ValueType::kInt64},
                                   {"iv", ValueType::kInt64},
                                   {"dv", ValueType::kFloat64}})
                         .ValueOrDie();
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    Row row = {Value(rng.UniformInt(0, 11)), Value(rng.UniformInt(0, 3)),
               Value(rng.UniformInt(-50, 50)),
               Value(rng.NextDouble() * 10 - 5)};
    if (rng.Bernoulli(0.05)) row[2] = Value::Null();
    if (rng.Bernoulli(0.05)) row[3] = Value::Null();
    t.AppendUnchecked(std::move(row));
  }
  return t;
}

// Two blocks: an indexable equality + residual condition over the full
// aggregate spectrum, and a pure non-equi block (always nested loop).
GmdjOp MixedOp() {
  GmdjOp op;
  op.detail_table = "d";
  op.blocks.push_back(
      GmdjBlock{{{AggKind::kCountStar, "", "c"},
                 {AggKind::kCount, "iv", "ci"},
                 {AggKind::kSum, "iv", "si"},
                 {AggKind::kSum, "dv", "sd"},
                 {AggKind::kAvg, "dv", "ad"},
                 {AggKind::kMin, "dv", "lo"},
                 {AggKind::kMax, "iv", "hi"},
                 {AggKind::kVarPop, "iv", "vp"}},
                And(Eq(RCol("g"), BCol("g")),
                    Ge(RCol("iv"), Lit(Value(-30))))});
  op.blocks.push_back(GmdjBlock{{{AggKind::kCountStar, "", "below"}},
                                Lt(RCol("h"), BCol("g"))});
  return op;
}

TEST(ParallelEvalTest, RowKernelByteIdenticalAcrossThreadCounts) {
  Table detail = MakeDetail(7, 1400);  // > kDefaultMorselRows rows.
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  GmdjOp op = MixedOp();

  for (bool use_index : {true, false}) {
    for (bool sub : {false, true}) {
      for (bool rng : {false, true}) {
        for (size_t morsel_rows : {kDefaultMorselRows, size_t{97}}) {
          EvalContext context;
          context.use_index = use_index;
          context.sub_aggregates = sub;
          context.compute_rng = rng;
          context.morsel_rows = morsel_rows;

          context.eval_threads = 1;
          Table baseline = EvalGmdj(base, detail, op, context).ValueOrDie();
          std::vector<uint8_t> expected = Bytes(baseline);
          for (size_t threads : kThreadCounts) {
            context.eval_threads = threads;
            Table result = EvalGmdj(base, detail, op, context).ValueOrDie();
            EXPECT_EQ(Bytes(result), expected)
                << "use_index=" << use_index << " sub=" << sub
                << " rng=" << rng << " morsel_rows=" << morsel_rows
                << " threads=" << threads;
          }
        }
      }
    }
  }
}

TEST(ParallelEvalTest, EmptyBaseAndEmptyDetail) {
  Table detail = MakeDetail(11, 300);
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  Table empty_base(base.schema());
  Table empty_detail(detail.schema());
  GmdjOp op = MixedOp();

  for (bool use_index : {true, false}) {
    for (size_t threads : kThreadCounts) {
      EvalContext context;
      context.use_index = use_index;
      context.eval_threads = threads;
      context.compute_rng = true;
      context.morsel_rows = 64;

      Table no_base = EvalGmdj(empty_base, detail, op, context).ValueOrDie();
      EXPECT_EQ(no_base.num_rows(), 0u) << "threads=" << threads;

      Table no_detail =
          EvalGmdj(base, empty_detail, op, context).ValueOrDie();
      ASSERT_EQ(no_detail.num_rows(), base.num_rows())
          << "threads=" << threads;
      // Every base row survives with COUNT 0 and __rng 0.
      int rng_idx = no_detail.schema()->IndexOf(kRngCountColumn);
      ASSERT_GE(rng_idx, 0);
      for (size_t r = 0; r < no_detail.num_rows(); ++r) {
        EXPECT_EQ(no_detail.at(r, 1).int64(), 0) << "row " << r;  // c
        EXPECT_EQ(
            no_detail.at(r, static_cast<size_t>(rng_idx)).int64(), 0)
            << "row " << r;
      }
    }
  }
}

TEST(ParallelEvalTest, MorselRowsZeroIsRejected) {
  Table detail = MakeDetail(3, 50);
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  GmdjOp op = MixedOp();
  EvalContext context;
  context.morsel_rows = 0;
  EXPECT_TRUE(EvalGmdj(base, detail, op, context).status().IsInvalidArgument());
  ColumnTable columnar = ColumnTable::FromRowTable(detail).ValueOrDie();
  GmdjOp eligible;
  eligible.detail_table = "d";
  eligible.blocks.push_back(GmdjBlock{{{AggKind::kCountStar, "", "c"}},
                                      Eq(RCol("g"), BCol("g"))});
  EXPECT_TRUE(EvalGmdjColumnar(base, columnar, eligible, context)
                  .status()
                  .IsInvalidArgument());
}

TEST(ParallelEvalTest, ColumnarKernelRejectsNestedLoopOracle) {
  Table detail = MakeDetail(5, 80);
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  ColumnTable columnar = ColumnTable::FromRowTable(detail).ValueOrDie();
  GmdjOp op;
  op.detail_table = "d";
  op.blocks.push_back(GmdjBlock{{{AggKind::kCountStar, "", "c"}},
                                Eq(RCol("g"), BCol("g"))});
  EvalContext oracle;
  oracle.use_index = false;
  Status status = EvalGmdjColumnar(base, columnar, op, oracle).status();
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST(ParallelEvalTest, ColumnarKernelByteIdenticalAcrossThreadCounts) {
  Table detail = MakeDetail(13, 1300);
  Table base = Project(detail, {"g", "h"}, true).ValueOrDie();
  ColumnTable columnar = ColumnTable::FromRowTable(detail).ValueOrDie();
  GmdjOp op;
  op.detail_table = "d";
  ExprPtr theta = And(Eq(RCol("g"), BCol("g")), Eq(RCol("h"), BCol("h")));
  op.blocks.push_back(GmdjBlock{{{AggKind::kCountStar, "", "c"},
                                 {AggKind::kSum, "dv", "sd"},
                                 {AggKind::kAvg, "iv", "ai"},
                                 {AggKind::kMin, "dv", "lo"}},
                                theta});
  op.blocks.push_back(
      GmdjBlock{{{AggKind::kMax, "iv", "hi"}}, Eq(RCol("g"), BCol("g"))});

  for (bool sub : {false, true}) {
    for (bool rng : {false, true}) {
      EvalContext context;
      context.sub_aggregates = sub;
      context.compute_rng = rng;
      context.morsel_rows = 128;

      context.eval_threads = 1;
      Table baseline =
          EvalGmdjColumnar(base, columnar, op, context).ValueOrDie();
      std::vector<uint8_t> expected = Bytes(baseline);
      // The columnar path also has to agree with the row engine.
      Table row_result = EvalGmdj(base, detail, op, context).ValueOrDie();
      EXPECT_TRUE(baseline.SameRows(row_result))
          << "sub=" << sub << " rng=" << rng;
      for (size_t threads : kThreadCounts) {
        context.eval_threads = threads;
        Table result =
            EvalGmdjColumnar(base, columnar, op, context).ValueOrDie();
        EXPECT_EQ(Bytes(result), expected)
            << "sub=" << sub << " rng=" << rng << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelEvalTest, SiteRoutesOracleRequestsToRowEngine) {
  Table detail = MakeDetail(17, 200);
  Table base = Project(detail, {"g"}, true).ValueOrDie();
  Catalog catalog;
  catalog.Register("d", detail);
  Site site(0, std::move(catalog));
  ASSERT_TRUE(site.EnableColumnarCache().ok());

  GmdjOp op;
  op.detail_table = "d";
  op.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c"}, {AggKind::kSum, "iv", "si"}},
      Eq(RCol("g"), BCol("g"))});

  EvalContext indexed;
  Table via_columnar = site.EvalGmdjRound(base, op, indexed).ValueOrDie();

  // With use_index = false the columnar kernel would fail; the site must
  // route to the row engine's nested loop, which agrees on results.
  EvalContext oracle;
  oracle.use_index = false;
  Table via_oracle = site.EvalGmdjRound(base, op, oracle).ValueOrDie();
  EXPECT_TRUE(via_oracle.SameRows(via_columnar));
}

TEST(ParallelEvalTest, IndexCacheKeyedOnFullPairing) {
  // Two blocks index the same detail columns (g, h) but pair them with
  // swapped base columns — they must not share probe semantics. All
  // aggregates are integer-exact, so the indexed result must match the
  // nested-loop oracle byte for byte.
  Random rng(23);
  SchemaPtr detail_schema = Schema::Make({{"g", ValueType::kInt64},
                                          {"h", ValueType::kInt64},
                                          {"v", ValueType::kInt64}})
                                .ValueOrDie();
  Table detail(detail_schema);
  for (int i = 0; i < 400; ++i) {
    detail.AppendUnchecked({Value(rng.UniformInt(0, 4)),
                            Value(rng.UniformInt(0, 4)),
                            Value(rng.UniformInt(0, 99))});
  }
  SchemaPtr base_schema =
      Schema::Make({{"x", ValueType::kInt64}, {"y", ValueType::kInt64}})
          .ValueOrDie();
  Table base(base_schema);
  for (int x = 0; x < 5; ++x) {
    for (int y = 0; y < 5; ++y) {
      base.AppendUnchecked({Value(int64_t{x}), Value(int64_t{y})});
    }
  }

  GmdjOp op;
  op.detail_table = "d";
  op.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "fwd"}},
      And(Eq(RCol("g"), BCol("x")), Eq(RCol("h"), BCol("y")))});
  op.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "rev"}},
      And(Eq(RCol("g"), BCol("y")), Eq(RCol("h"), BCol("x")))});

  for (size_t threads : kThreadCounts) {
    EvalContext indexed;
    indexed.eval_threads = threads;
    EvalContext naive = indexed;
    naive.use_index = false;
    Table via_index = EvalGmdj(base, detail, op, indexed).ValueOrDie();
    Table via_naive = EvalGmdj(base, detail, op, naive).ValueOrDie();
    EXPECT_EQ(Bytes(via_index), Bytes(via_naive)) << "threads=" << threads;
  }
}

// End to end: the full flow query battery through the distributed
// executor must come back byte-identical for every eval_threads value,
// under both extreme optimizer presets.
TEST(ParallelEvalTest, QuerySuiteByteIdenticalAcrossThreadCounts) {
  const char* queries[] = {
      R"(
      BASE SELECT DISTINCT SourceAS FROM flow;
      MD USING flow
         COMPUTE COUNT(*) AS flows, SUM(NumBytes) AS bytes,
                 MAX(NumPackets) AS max_pkts
         WHERE r.SourceAS = b.SourceAS;
      )",
      R"(
      BASE SELECT DISTINCT SourceAS, DestAS FROM flow;
      MD USING flow
         COMPUTE COUNT(*) AS cnt1, SUM(NumBytes) AS sum1
         WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS;
      MD USING flow
         COMPUTE COUNT(*) AS cnt2
         WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS
           AND r.NumBytes >= b.sum1 / b.cnt1;
      )",
      R"(
      BASE SELECT DISTINCT SourcePort FROM flow WHERE SourcePort < 1100;
      MD USING flow
         COMPUTE COUNT(*) AS lower_ports, AVG(NumBytes) AS avg_bytes
         WHERE r.SourcePort < b.SourcePort;
      )",
  };

  FlowConfig config;
  config.num_flows = 3000;
  config.num_routers = 4;
  config.num_as = 25;
  Table flows = GenerateFlows(config);

  auto make_warehouse = [&](size_t eval_threads) {
    ExecutorOptions options;
    options.eval_threads = eval_threads;
    auto dw = std::make_unique<DistributedWarehouse>(4, NetworkConfig{},
                                                     options);
    dw->AddTablePartitionedBy("flow", flows, "RouterId",
                              {"SourceAS", "DestAS", "SourcePort",
                               "NumBytes", "NumPackets"})
        .Check();
    return dw;
  };

  auto sequential = make_warehouse(1);
  for (const char* text : queries) {
    GmdjExpr expr = ParseQuery(text).ValueOrDie();
    for (const OptimizerOptions& opts :
         {OptimizerOptions::None(), OptimizerOptions::All()}) {
      Table baseline = sequential->Execute(expr, opts).ValueOrDie();
      std::vector<uint8_t> expected = Bytes(baseline);
      for (size_t threads : kThreadCounts) {
        Table result =
            make_warehouse(threads)->Execute(expr, opts).ValueOrDie();
        EXPECT_EQ(Bytes(result), expected)
            << "threads=" << threads << " opts=" << opts.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace skalla
