// Plan rendering, round counting, and the EXPLAIN report.

#include <gtest/gtest.h>

#include "common/random.h"
#include "dist/warehouse.h"
#include "opt/explain.h"
#include "sql/parser.h"

namespace skalla {
namespace {

Table MakeData() {
  Random rng(101);
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"v", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (int i = 0; i < 400; ++i) {
    t.AppendUnchecked(
        {Value(rng.UniformInt(0, 19)), Value(rng.UniformInt(0, 99))});
  }
  return t;
}

GmdjExpr CorrelatedQuery() {
  return ParseQuery(R"(
    BASE SELECT DISTINCT g FROM d;
    MD USING d COMPUTE COUNT(*) AS c, AVG(v) AS a WHERE r.g = b.g;
    MD USING d COMPUTE COUNT(*) AS c2
       WHERE r.g = b.g AND r.v >= b.a;
  )").ValueOrDie();
}

class PlanExplainTest : public ::testing::Test {
 protected:
  PlanExplainTest() : dw_(4) {
    dw_.AddTablePartitionedBy("d", MakeData(), "g", {"v"}).Check();
  }
  DistributedWarehouse dw_;
};

TEST_F(PlanExplainTest, PlanToStringShowsFlags) {
  DistributedPlan plan =
      dw_.Plan(CorrelatedQuery(), OptimizerOptions::All()).ValueOrDie();
  std::string text = plan.ToString(4);
  EXPECT_NE(text.find("[no-sync]"), std::string::npos);
  EXPECT_NE(text.find("sync rounds: 1"), std::string::npos);

  OptimizerOptions gr;
  gr.indep_group_reduction = true;
  gr.aware_group_reduction = true;
  DistributedPlan gr_plan = dw_.Plan(CorrelatedQuery(), gr).ValueOrDie();
  std::string gr_text = gr_plan.ToString(4);
  EXPECT_NE(gr_text.find("indep-GR"), std::string::npos);
  EXPECT_NE(gr_text.find("aware-GR(4/4 sites)"), std::string::npos);
  EXPECT_EQ(gr_plan.NumSyncRounds(), 3u);
}

TEST_F(PlanExplainTest, ExplainNarratesOptimizations) {
  GmdjExpr expr = CorrelatedQuery();
  OptimizerOptions opts = OptimizerOptions::All();
  DistributedPlan plan = dw_.Plan(expr, opts).ValueOrDie();
  CostModel model(4);
  model.SetPartitionInfo("d", dw_.partition_info("d"));

  std::string text = ExplainPlan(expr, plan, 4, opts, &model);
  EXPECT_NE(text.find("Prop. 2"), std::string::npos);
  EXPECT_NE(text.find("Cor. 1"), std::string::npos);
  EXPECT_NE(text.find("PREDICTED TRANSFER"), std::string::npos);
  EXPECT_NE(text.find("OPTIMIZATIONS REQUESTED"), std::string::npos);
}

TEST_F(PlanExplainTest, ExplainNaivePlanSaysSo) {
  GmdjExpr expr = CorrelatedQuery();
  DistributedPlan plan =
      dw_.Plan(expr, OptimizerOptions::None()).ValueOrDie();
  std::string text =
      ExplainPlan(expr, plan, 4, OptimizerOptions::None(), nullptr);
  EXPECT_NE(text.find("no distributed optimizations applied"),
            std::string::npos);
  EXPECT_EQ(text.find("PREDICTED TRANSFER"), std::string::npos);
}

TEST_F(PlanExplainTest, ExplainWithoutKnowledgeDegradesGracefully) {
  GmdjExpr expr = CorrelatedQuery();
  OptimizerOptions opts = OptimizerOptions::All();
  DistributedPlan plan = dw_.Plan(expr, opts).ValueOrDie();
  CostModel empty_model(4);  // No partition info registered.
  std::string text = ExplainPlan(expr, plan, 4, opts, &empty_model);
  EXPECT_NE(text.find("unavailable"), std::string::npos);
}

TEST_F(PlanExplainTest, PredictionMatchesExecutionInExplain) {
  // The exact case: prediction printed by EXPLAIN equals what execution
  // then measures.
  GmdjExpr expr = ParseQuery(R"(
    BASE SELECT DISTINCT g FROM d;
    MD USING d COMPUTE COUNT(*) AS c WHERE r.g = b.g;
  )").ValueOrDie();
  OptimizerOptions opts;
  opts.indep_group_reduction = true;
  DistributedPlan plan = dw_.Plan(expr, opts).ValueOrDie();
  CostModel model(4);
  model.SetPartitionInfo("d", dw_.partition_info("d"));
  TransferEstimate estimate = model.Estimate(plan).ValueOrDie();
  ASSERT_TRUE(estimate.exact);

  ExecStats stats;
  dw_.ExecutePlan(plan, &stats).ValueOrDie();
  EXPECT_EQ(estimate.TotalTuples(), stats.TotalTuplesTransferred());
}

}  // namespace
}  // namespace skalla
