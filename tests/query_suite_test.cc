// Integration suite: a battery of parsed OLAP queries over the two
// generated data sets, each executed distributed under both extreme
// optimizer configurations and checked against centralized evaluation.

#include <gtest/gtest.h>

#include "data/flow_gen.h"
#include "data/tpcr_gen.h"
#include "dist/warehouse.h"
#include "sql/parser.h"

namespace skalla {
namespace {

struct QueryCase {
  const char* name;
  const char* text;
};

const QueryCase kFlowQueries[] = {
    {"per_source_totals", R"(
      BASE SELECT DISTINCT SourceAS FROM flow;
      MD USING flow
         COMPUTE COUNT(*) AS flows, SUM(NumBytes) AS bytes,
                 MAX(NumPackets) AS max_pkts
         WHERE r.SourceAS = b.SourceAS;
    )"},
    {"above_average_pairs", R"(
      BASE SELECT DISTINCT SourceAS, DestAS FROM flow;
      MD USING flow
         COMPUTE COUNT(*) AS cnt1, SUM(NumBytes) AS sum1
         WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS;
      MD USING flow
         COMPUTE COUNT(*) AS cnt2
         WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS
           AND r.NumBytes >= b.sum1 / b.cnt1;
    )"},
    {"web_vs_total_blocks", R"(
      BASE SELECT DISTINCT SourceAS FROM flow;
      MD USING flow
         COMPUTE COUNT(*) AS web
         WHERE r.SourceAS = b.SourceAS
           AND (r.DestPort = 80 OR r.DestPort = 443)
         COMPUTE COUNT(*) AS total, AVG(NumBytes) AS avg_bytes
         WHERE r.SourceAS = b.SourceAS;
    )"},
    {"filtered_base", R"(
      BASE SELECT DISTINCT DestAS FROM flow WHERE NumPackets > 100;
      MD USING flow
         COMPUTE COUNT(*) AS big_flows, MIN(NumBytes) AS smallest
         WHERE r.DestAS = b.DestAS AND r.NumPackets > 100;
    )"},
    {"three_round_chain", R"(
      BASE SELECT DISTINCT SourceAS FROM flow;
      MD USING flow
         COMPUTE MAX(NumBytes) AS biggest
         WHERE r.SourceAS = b.SourceAS;
      MD USING flow
         COMPUTE COUNT(*) AS at_max
         WHERE r.SourceAS = b.SourceAS AND r.NumBytes = b.biggest;
      MD USING flow
         COMPUTE SUM(NumPackets) AS pkts_at_max
         WHERE r.SourceAS = b.SourceAS AND r.NumBytes = b.biggest;
    )"},
    {"empty_result", R"(
      BASE SELECT DISTINCT SourceAS FROM flow WHERE SourceAS < 0;
      MD USING flow
         COMPUTE COUNT(*) AS c WHERE r.SourceAS = b.SourceAS;
    )"},
    {"non_equi_only", R"(
      BASE SELECT DISTINCT SourcePort FROM flow WHERE SourcePort < 1100;
      MD USING flow
         COMPUTE COUNT(*) AS lower_ports
         WHERE r.SourcePort < b.SourcePort;
    )"},
};

const QueryCase kTpcrQueries[] = {
    {"clerk_low_cardinality", R"(
      BASE SELECT DISTINCT Clerk FROM tpcr;
      MD USING tpcr
         COMPUTE COUNT(*) AS lines, AVG(ExtendedPrice) AS avg_price
         WHERE r.Clerk = b.Clerk;
      MD USING tpcr
         COMPUTE COUNT(*) AS pricey
         WHERE r.Clerk = b.Clerk AND r.ExtendedPrice >= b.avg_price;
    )"},
    {"customer_quantities", R"(
      BASE SELECT DISTINCT CustKey FROM tpcr;
      MD USING tpcr
         COMPUTE COUNT(Quantity) AS big_qty_lines, SUM(Quantity) AS total_qty
         WHERE r.CustKey = b.CustKey AND r.Quantity > 10
         COMPUTE MIN(ShipDate) AS first_ship
         WHERE r.CustKey = b.CustKey;
    )"},
    {"segment_rollup", R"(
      BASE SELECT DISTINCT MktSegment, OrderPriority FROM tpcr;
      MD USING tpcr
         COMPUTE COUNT(*) AS orders, AVG(Quantity) AS avg_qty
         WHERE r.MktSegment = b.MktSegment
           AND r.OrderPriority = b.OrderPriority;
    )"},
};

class QuerySuiteTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    FlowConfig flow_config;
    flow_config.num_flows = 4000;
    flow_config.num_routers = 5;
    flow_config.num_as = 30;
    TpcrConfig tpcr_config;
    tpcr_config.num_rows = 6000;
    tpcr_config.num_customers = 500;
    tpcr_config.num_clerks = 40;

    warehouse_ = new DistributedWarehouse(5);
    warehouse_
        ->AddTablePartitionedBy(
            "flow", GenerateFlows(flow_config), "RouterId",
            {"SourceAS", "DestAS", "DestPort", "SourcePort", "NumBytes",
             "NumPackets"})
        .Check();
    warehouse_
        ->AddTablePartitionedBy(
            "tpcr", GenerateTpcr(tpcr_config), "NationKey",
            {"CustKey", "CustName", "Clerk", "MktSegment", "OrderPriority",
             "Quantity", "ExtendedPrice"})
        .Check();

    // A second flow relation (a different collection window, say), used
    // to exercise queries whose detail relation changes across rounds —
    // Sect. 3.2 notes R_k may differ per GMDJ operator.
    FlowConfig recent_config = flow_config;
    recent_config.seed = 99;
    recent_config.num_flows = 2500;
    warehouse_
        ->AddTablePartitionedBy("flow_recent", GenerateFlows(recent_config),
                                "RouterId", {"SourceAS", "NumBytes"})
        .Check();
  }

  static void TearDownTestSuite() {
    delete warehouse_;
    warehouse_ = nullptr;
  }

  void CheckQuery(const QueryCase& q) {
    SCOPED_TRACE(q.name);
    auto parsed = ParseQuery(q.text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    Table expected = warehouse_->ExecuteCentralized(*parsed).ValueOrDie();
    for (const OptimizerOptions& opts :
         {OptimizerOptions::None(), OptimizerOptions::All()}) {
      ExecStats stats;
      auto result = warehouse_->Execute(*parsed, opts, &stats);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      // Relative tolerance covers float-sum association-order effects of
      // distributing AVG/SUM over double-typed measures.
      EXPECT_TRUE(result->ApproxSameRows(expected, 1e-9))
          << "opts=" << opts.ToString() << "\nexpected:\n"
          << expected.ToString(30) << "actual:\n"
          << result->ToString(30);
    }
  }

  static DistributedWarehouse* warehouse_;
};

DistributedWarehouse* QuerySuiteTest::warehouse_ = nullptr;

TEST_F(QuerySuiteTest, FlowQueries) {
  for (const QueryCase& q : kFlowQueries) CheckQuery(q);
}

TEST_F(QuerySuiteTest, TpcrQueries) {
  for (const QueryCase& q : kTpcrQueries) CheckQuery(q);
}

TEST_F(QuerySuiteTest, VarianceAndStdDevDistributeCorrectly) {
  // VAR/STDDEV decompose into (SUM, SUMSQ, COUNT) parts per Gray et
  // al.'s algebraic classification; the distributed merge must reproduce
  // centralized results, and centralized results the textbook formula.
  CheckQuery(QueryCase{"variance", R"(
    BASE SELECT DISTINCT SourceAS FROM flow;
    MD USING flow
       COMPUTE VAR(NumPackets) AS var_pkts,
               STDDEV(NumPackets) AS sd_pkts,
               AVG(NumPackets) AS avg_pkts,
               COUNT(*) AS n
       WHERE r.SourceAS = b.SourceAS;
  )"});

  // Spot-check the formula on one group against a manual pass.
  auto parsed = ParseQuery(R"(
    BASE SELECT DISTINCT SourceAS FROM flow;
    MD USING flow
       COMPUTE VAR(NumPackets) AS v WHERE r.SourceAS = b.SourceAS;
  )");
  Table result = warehouse_->Execute(*parsed, OptimizerOptions::All())
                     .ValueOrDie();
  const Table* flow =
      warehouse_->central_catalog().Get("flow").ValueOrDie();
  size_t sas = static_cast<size_t>(flow->schema()->IndexOf("SourceAS"));
  size_t pkts =
      static_cast<size_t>(flow->schema()->IndexOf("NumPackets"));
  result.SortRowsBy({0});
  int64_t group = result.at(0, 0).int64();
  double sum = 0;
  double sumsq = 0;
  double n = 0;
  for (size_t r = 0; r < flow->num_rows(); ++r) {
    if (flow->at(r, sas).int64() != group) continue;
    double v = flow->at(r, pkts).AsDouble();
    sum += v;
    sumsq += v * v;
    n += 1;
  }
  double expected = sumsq / n - (sum / n) * (sum / n);
  EXPECT_NEAR(result.at(0, 1).float64(), expected,
              1e-6 * std::max(1.0, expected));
}

TEST_F(QuerySuiteTest, DetailRelationMayChangeAcrossRounds) {
  // MD_1 aggregates over `flow`, MD_2 over `flow_recent`: per source AS,
  // the historical average and how many recent flows exceed it.
  CheckQuery(QueryCase{"cross_relation_chain", R"(
    BASE SELECT DISTINCT SourceAS FROM flow;
    MD USING flow
       COMPUTE COUNT(*) AS hist_flows, AVG(NumBytes) AS hist_avg
       WHERE r.SourceAS = b.SourceAS;
    MD USING flow_recent
       COMPUTE COUNT(*) AS recent_above
       WHERE r.SourceAS = b.SourceAS AND r.NumBytes >= b.hist_avg;
  )"});
}

TEST_F(QuerySuiteTest, QueryAgainstMissingColumnFailsCleanly) {
  auto parsed = ParseQuery(R"(
    BASE SELECT DISTINCT NoSuchColumn FROM flow;
    MD USING flow COMPUTE COUNT(*) AS c
       WHERE r.NoSuchColumn = b.NoSuchColumn;
  )");
  ASSERT_TRUE(parsed.ok());
  auto result = warehouse_->Execute(*parsed, OptimizerOptions::All());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(QuerySuiteTest, DuplicateOutputNameFailsCleanly) {
  auto parsed = ParseQuery(R"(
    BASE SELECT DISTINCT SourceAS FROM flow;
    MD USING flow
       COMPUTE COUNT(*) AS c WHERE r.SourceAS = b.SourceAS
       COMPUTE COUNT(*) AS c WHERE r.SourceAS = b.SourceAS;
  )");
  ASSERT_TRUE(parsed.ok());
  auto result = warehouse_->Execute(*parsed, OptimizerOptions::None());
  ASSERT_FALSE(result.ok());
}

}  // namespace
}  // namespace skalla
