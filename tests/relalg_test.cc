#include "relalg/operators.h"

#include <gtest/gtest.h>

#include "expr/builder.h"

namespace skalla {
namespace {

Table SampleTable() {
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"h", ValueType::kString},
                                   {"v", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  t.AppendUnchecked({Value(1), Value("a"), Value(10)});
  t.AppendUnchecked({Value(1), Value("a"), Value(20)});
  t.AppendUnchecked({Value(2), Value("b"), Value(30)});
  t.AppendUnchecked({Value(2), Value("a"), Value::Null()});
  return t;
}

TEST(RelalgTest, ProjectKeepsDuplicatesWithoutDistinct) {
  Table t = SampleTable();
  Table p = Project(t, {"g"}, /*distinct=*/false).ValueOrDie();
  EXPECT_EQ(p.num_rows(), 4u);
  EXPECT_EQ(p.num_columns(), 1u);
}

TEST(RelalgTest, ProjectDistinct) {
  Table t = SampleTable();
  Table p = Project(t, {"g", "h"}, /*distinct=*/true).ValueOrDie();
  EXPECT_EQ(p.num_rows(), 3u);  // (1,a), (2,b), (2,a).
}

TEST(RelalgTest, ProjectReordersColumns) {
  Table t = SampleTable();
  Table p = Project(t, {"v", "g"}, false).ValueOrDie();
  EXPECT_EQ(p.schema()->field(0).name, "v");
  EXPECT_EQ(p.at(0, 0).int64(), 10);
  EXPECT_EQ(p.at(0, 1).int64(), 1);
}

TEST(RelalgTest, ProjectUnknownColumnFails) {
  Table t = SampleTable();
  EXPECT_TRUE(Project(t, {"nope"}, false).status().IsNotFound());
}

TEST(RelalgTest, SelectFiltersWithNullSemantics) {
  Table t = SampleTable();
  Table s = Select(t, Ge(RCol("v"), Lit(Value(20)))).ValueOrDie();
  EXPECT_EQ(s.num_rows(), 2u);  // NULL v row excluded.
}

TEST(RelalgTest, UnionAllChecksArity) {
  Table t = SampleTable();
  Table p = Project(t, {"g"}, false).ValueOrDie();
  EXPECT_TRUE(UnionAll(t, p).status().IsInvalidArgument());
  Table u = UnionAll(t, t).ValueOrDie();
  EXPECT_EQ(u.num_rows(), 8u);
}

TEST(RelalgTest, DistinctGroupsNulls) {
  SchemaPtr schema = Schema::Make({{"x", ValueType::kInt64}}).ValueOrDie();
  Table t(schema);
  t.AppendUnchecked({Value::Null()});
  t.AppendUnchecked({Value::Null()});
  t.AppendUnchecked({Value(1)});
  Table d = Distinct(t);
  EXPECT_EQ(d.num_rows(), 2u);
}

TEST(RelalgTest, SortBy) {
  Table t = SampleTable();
  Table s = SortBy(t, {"v"}).ValueOrDie();
  // NULL sorts first.
  EXPECT_TRUE(s.at(0, 2).is_null());
  EXPECT_EQ(s.at(1, 2).int64(), 10);
  EXPECT_EQ(s.at(3, 2).int64(), 30);
}

TEST(RelalgTest, TopKDescendingAndAscending) {
  SchemaPtr schema = Schema::Make({{"name", ValueType::kString},
                                   {"bytes", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  t.AppendUnchecked({Value("a"), Value(30)});
  t.AppendUnchecked({Value("b"), Value(10)});
  t.AppendUnchecked({Value("c"), Value(50)});
  t.AppendUnchecked({Value("d"), Value(20)});
  t.AppendUnchecked({Value("e"), Value(50)});

  Table top2 = TopK(t, "bytes", 2).ValueOrDie();
  ASSERT_EQ(top2.num_rows(), 2u);
  EXPECT_EQ(top2.at(0, 1).int64(), 50);
  EXPECT_EQ(top2.at(1, 1).int64(), 50);
  // Tie broken deterministically ("c" < "e").
  EXPECT_EQ(top2.at(0, 0).str(), "c");

  Table bottom1 = TopK(t, "bytes", 1, /*descending=*/false).ValueOrDie();
  ASSERT_EQ(bottom1.num_rows(), 1u);
  EXPECT_EQ(bottom1.at(0, 0).str(), "b");

  // k larger than the table returns everything, ordered.
  Table all = TopK(t, "bytes", 99).ValueOrDie();
  EXPECT_EQ(all.num_rows(), 5u);
  EXPECT_EQ(all.at(4, 1).int64(), 10);

  EXPECT_TRUE(TopK(t, "nope", 2).status().IsNotFound());
}

TEST(RelalgTest, BaseQueryExecuteWithWhere) {
  Catalog catalog;
  catalog.Register("t", SampleTable());
  BaseQuery q{"t", {"g"}, true, Eq(RCol("h"), Lit(Value("a")))};
  Table result = q.Execute(catalog).ValueOrDie();
  EXPECT_EQ(result.num_rows(), 2u);  // g in {1, 2} among h='a' rows.
  EXPECT_EQ(q.ToString(),
            "SELECT DISTINCT g FROM t WHERE (r.h = 'a')");
}

TEST(RelalgTest, BaseQueryUnknownTableFails) {
  Catalog catalog;
  BaseQuery q{"missing", {"g"}, true, nullptr};
  EXPECT_TRUE(q.Execute(catalog).status().IsNotFound());
}

TEST(RelalgTest, BaseQueryOutputSchema) {
  Table t = SampleTable();
  BaseQuery q{"t", {"h", "g"}, true, nullptr};
  SchemaPtr s = q.OutputSchema(*t.schema()).ValueOrDie();
  ASSERT_EQ(s->num_fields(), 2u);
  EXPECT_EQ(s->field(0).name, "h");
  EXPECT_EQ(s->field(0).type, ValueType::kString);
  EXPECT_EQ(s->field(1).name, "g");
}

TEST(RelalgTest, EmptyProjectionYieldsSingleEmptyRowUnderDistinct) {
  // The grand-total cuboid relies on this: distinct over zero columns is
  // one empty row for a non-empty input, zero rows for an empty input.
  Table t = SampleTable();
  Table p = Project(t, {}, true).ValueOrDie();
  EXPECT_EQ(p.num_rows(), 1u);
  EXPECT_EQ(p.num_columns(), 0u);

  Table empty(t.schema());
  Table pe = Project(empty, {}, true).ValueOrDie();
  EXPECT_EQ(pe.num_rows(), 0u);
}

}  // namespace
}  // namespace skalla
