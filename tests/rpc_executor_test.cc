// RpcExecutor over the in-process transport versus DistributedExecutor:
// the full query battery must come back row-for-row identical with
// identical bytes_to_sites / bytes_to_coord accounting, under both
// extreme optimizer configurations. Every exchange round-trips through
// the framed wire encoding, so this pins the whole protocol stack short
// of the sockets.

#include "rpc/rpc_executor.h"

#include <gtest/gtest.h>

#include <memory>

#include "data/flow_gen.h"
#include "data/tpcr_gen.h"
#include "dist/async_exec.h"
#include "dist/exec.h"
#include "dist/warehouse.h"
#include "net/serde.h"
#include "rpc/plan_serde.h"
#include "rpc/transport.h"
#include "sql/parser.h"
#include "storage/partition.h"
#include "types/row.h"

namespace skalla {
namespace {

using rpc::InProcessTransport;
using rpc::RpcExecutor;

constexpr size_t kSites = 4;

struct QueryCase {
  const char* name;
  const char* text;
};

// The query_suite battery (flow + tpcr), verbatim.
const QueryCase kQueries[] = {
    {"per_source_totals", R"(
      BASE SELECT DISTINCT SourceAS FROM flow;
      MD USING flow
         COMPUTE COUNT(*) AS flows, SUM(NumBytes) AS bytes,
                 MAX(NumPackets) AS max_pkts
         WHERE r.SourceAS = b.SourceAS;
    )"},
    {"above_average_pairs", R"(
      BASE SELECT DISTINCT SourceAS, DestAS FROM flow;
      MD USING flow
         COMPUTE COUNT(*) AS cnt1, SUM(NumBytes) AS sum1
         WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS;
      MD USING flow
         COMPUTE COUNT(*) AS cnt2
         WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS
           AND r.NumBytes >= b.sum1 / b.cnt1;
    )"},
    {"web_vs_total_blocks", R"(
      BASE SELECT DISTINCT SourceAS FROM flow;
      MD USING flow
         COMPUTE COUNT(*) AS web
         WHERE r.SourceAS = b.SourceAS
           AND (r.DestPort = 80 OR r.DestPort = 443)
         COMPUTE COUNT(*) AS total, AVG(NumBytes) AS avg_bytes
         WHERE r.SourceAS = b.SourceAS;
    )"},
    {"filtered_base", R"(
      BASE SELECT DISTINCT DestAS FROM flow WHERE NumPackets > 100;
      MD USING flow
         COMPUTE COUNT(*) AS big_flows, MIN(NumBytes) AS smallest
         WHERE r.DestAS = b.DestAS AND r.NumPackets > 100;
    )"},
    {"three_round_chain", R"(
      BASE SELECT DISTINCT SourceAS FROM flow;
      MD USING flow
         COMPUTE MAX(NumBytes) AS biggest
         WHERE r.SourceAS = b.SourceAS;
      MD USING flow
         COMPUTE COUNT(*) AS at_max
         WHERE r.SourceAS = b.SourceAS AND r.NumBytes = b.biggest;
      MD USING flow
         COMPUTE SUM(NumPackets) AS pkts_at_max
         WHERE r.SourceAS = b.SourceAS AND r.NumBytes = b.biggest;
    )"},
    {"empty_result", R"(
      BASE SELECT DISTINCT SourceAS FROM flow WHERE SourceAS < 0;
      MD USING flow
         COMPUTE COUNT(*) AS c WHERE r.SourceAS = b.SourceAS;
    )"},
    {"non_equi_only", R"(
      BASE SELECT DISTINCT SourcePort FROM flow WHERE SourcePort < 1100;
      MD USING flow
         COMPUTE COUNT(*) AS lower_ports
         WHERE r.SourcePort < b.SourcePort;
    )"},
    {"clerk_low_cardinality", R"(
      BASE SELECT DISTINCT Clerk FROM tpcr;
      MD USING tpcr
         COMPUTE COUNT(*) AS lines, AVG(ExtendedPrice) AS avg_price
         WHERE r.Clerk = b.Clerk;
      MD USING tpcr
         COMPUTE COUNT(*) AS pricey
         WHERE r.Clerk = b.Clerk AND r.ExtendedPrice >= b.avg_price;
    )"},
    {"customer_quantities", R"(
      BASE SELECT DISTINCT CustKey FROM tpcr;
      MD USING tpcr
         COMPUTE COUNT(Quantity) AS big_qty_lines, SUM(Quantity) AS total_qty
         WHERE r.CustKey = b.CustKey AND r.Quantity > 10
         COMPUTE MIN(ShipDate) AS first_ship
         WHERE r.CustKey = b.CustKey;
    )"},
    {"cross_relation_chain", R"(
      BASE SELECT DISTINCT SourceAS FROM flow;
      MD USING flow
         COMPUTE COUNT(*) AS hist_flows, AVG(NumBytes) AS hist_avg
         WHERE r.SourceAS = b.SourceAS;
      MD USING flow_recent
         COMPUTE COUNT(*) AS recent_above
         WHERE r.SourceAS = b.SourceAS AND r.NumBytes >= b.hist_avg;
    )"},
};

bool ExactlyEqual(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    if (!RowEquals(a.row(r), b.row(r))) return false;
  }
  return true;
}

class RpcExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    FlowConfig flow_config;
    flow_config.num_flows = 1500;
    flow_config.num_routers = kSites;
    flow_config.num_as = 20;
    TpcrConfig tpcr_config;
    tpcr_config.num_rows = 2000;
    tpcr_config.num_customers = 200;
    tpcr_config.num_clerks = 30;
    FlowConfig recent_config = flow_config;
    recent_config.seed = 99;
    recent_config.num_flows = 1000;

    flow_parts_ = new std::vector<Table>(
        PartitionByValue(GenerateFlows(flow_config), "RouterId", kSites)
            .ValueOrDie());
    tpcr_parts_ = new std::vector<Table>(
        PartitionByValue(GenerateTpcr(tpcr_config), "NationKey", kSites)
            .ValueOrDie());
    recent_parts_ = new std::vector<Table>(
        PartitionByValue(GenerateFlows(recent_config), "RouterId", kSites)
            .ValueOrDie());

    warehouse_ = new DistributedWarehouse(kSites);
    warehouse_
        ->AddPartitionedTable(
            "flow", *flow_parts_,
            {"RouterId", "SourceAS", "DestAS", "DestPort", "SourcePort",
             "NumBytes", "NumPackets"})
        .Check();
    warehouse_
        ->AddPartitionedTable(
            "tpcr", *tpcr_parts_,
            {"NationKey", "CustKey", "CustName", "Clerk", "MktSegment",
             "OrderPriority", "Quantity", "ExtendedPrice"})
        .Check();
    warehouse_
        ->AddPartitionedTable("flow_recent", *recent_parts_,
                              {"RouterId", "SourceAS", "NumBytes"})
        .Check();
  }

  static void TearDownTestSuite() {
    delete warehouse_;
    delete flow_parts_;
    delete tpcr_parts_;
    delete recent_parts_;
    warehouse_ = nullptr;
    flow_parts_ = tpcr_parts_ = recent_parts_ = nullptr;
  }

  static std::vector<Site> MakeSites() {
    std::vector<Site> sites;
    for (size_t i = 0; i < kSites; ++i) {
      Catalog catalog;
      catalog.Register("flow", (*flow_parts_)[i]);
      catalog.Register("tpcr", (*tpcr_parts_)[i]);
      catalog.Register("flow_recent", (*recent_parts_)[i]);
      sites.emplace_back(static_cast<int>(i), std::move(catalog));
    }
    return sites;
  }

  static DistributedWarehouse* warehouse_;
  static std::vector<Table>* flow_parts_;
  static std::vector<Table>* tpcr_parts_;
  static std::vector<Table>* recent_parts_;
};

DistributedWarehouse* RpcExecutorTest::warehouse_ = nullptr;
std::vector<Table>* RpcExecutorTest::flow_parts_ = nullptr;
std::vector<Table>* RpcExecutorTest::tpcr_parts_ = nullptr;
std::vector<Table>* RpcExecutorTest::recent_parts_ = nullptr;

TEST_F(RpcExecutorTest, MatchesDistributedExecutorByteForByte) {
  for (const QueryCase& q : kQueries) {
    SCOPED_TRACE(q.name);
    GmdjExpr expr = ParseQuery(q.text).ValueOrDie();
    Table reference = warehouse_->ExecuteCentralized(expr).ValueOrDie();
    for (const OptimizerOptions& opts :
         {OptimizerOptions::None(), OptimizerOptions::All()}) {
      SCOPED_TRACE(opts.ToString());
      DistributedPlan plan = warehouse_->Plan(expr, opts).ValueOrDie();

      DistributedExecutor star(MakeSites(), NetworkConfig{}, {});
      ExecStats star_stats;
      Table star_result = star.Execute(plan, &star_stats).ValueOrDie();
      ASSERT_TRUE(star_result.ApproxSameRows(reference, 1e-9));

      RpcExecutor rpc(std::make_unique<InProcessTransport>(MakeSites()), {});
      ExecStats rpc_stats;
      auto rpc_result = rpc.Execute(plan, &rpc_stats);
      ASSERT_TRUE(rpc_result.ok()) << rpc_result.status().ToString();

      // Byte-for-byte: the merge orders are identical, so even row order
      // must match the star engine exactly.
      EXPECT_TRUE(ExactlyEqual(*rpc_result, star_result))
          << "expected:\n"
          << star_result.ToString(30) << "actual:\n"
          << rpc_result->ToString(30);

      // And the accounting, round by round.
      ASSERT_EQ(rpc_stats.rounds.size(), star_stats.rounds.size());
      for (size_t r = 0; r < rpc_stats.rounds.size(); ++r) {
        const RoundStats& a = rpc_stats.rounds[r];
        const RoundStats& b = star_stats.rounds[r];
        SCOPED_TRACE(b.label);
        EXPECT_EQ(a.label, b.label);
        EXPECT_EQ(a.synchronized, b.synchronized);
        EXPECT_EQ(a.bytes_to_sites, b.bytes_to_sites);
        EXPECT_EQ(a.bytes_to_coord, b.bytes_to_coord);
        EXPECT_EQ(a.tuples_to_sites, b.tuples_to_sites);
        EXPECT_EQ(a.tuples_to_coord, b.tuples_to_coord);
        EXPECT_EQ(a.sites_skipped, b.sites_skipped);
      }
    }
  }
}

TEST_F(RpcExecutorTest, WireBytesExceedAccountedPayloadBytes) {
  // Frame headers, handshakes, and request envelopes are transport
  // overhead: visible in wire_bytes(), absent from the ExecStats byte
  // accounting (which counts table payloads only, like the simulated
  // engines).
  GmdjExpr expr = ParseQuery(kQueries[0].text).ValueOrDie();
  DistributedPlan plan =
      warehouse_->Plan(expr, OptimizerOptions::None()).ValueOrDie();
  RpcExecutor rpc(std::make_unique<InProcessTransport>(MakeSites()), {});
  ExecStats stats;
  rpc.Execute(plan, &stats).ValueOrDie();
  EXPECT_GT(rpc.wire_bytes(), stats.TotalBytes());
}

TEST_F(RpcExecutorTest, RoundProfilesReconcileWithRoundStats) {
  // Every round response embeds the site's RoundProfile; summed over the
  // sites these must reconcile byte-for-byte and row-for-row with the
  // coordinator-observed RoundStats, and the per-round wire accounting
  // must tile the execution total exactly.
  for (const QueryCase& q : kQueries) {
    SCOPED_TRACE(q.name);
    GmdjExpr expr = ParseQuery(q.text).ValueOrDie();
    DistributedPlan plan =
        warehouse_->Plan(expr, OptimizerOptions::All()).ValueOrDie();
    RpcExecutor rpc(std::make_unique<InProcessTransport>(MakeSites()), {});
    ExecStats stats;
    auto result = rpc.Execute(plan, &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(stats.query_id, 0u);
    uint64_t round_wire = 0;
    for (const RoundStats& rs : stats.rounds) {
      SCOPED_TRACE(rs.label);
      round_wire += rs.wire_bytes;
      if (rs.site_profiles.empty()) {
        // Only possible when the RNG filter skipped every site.
        EXPECT_GT(rs.sites_skipped, 0u);
        continue;
      }
      uint64_t bytes_in = 0;
      uint64_t bytes_out = 0;
      uint64_t result_rows = 0;
      for (const SiteRoundProfile& p : rs.site_profiles) {
        bytes_in += p.bytes_in;
        bytes_out += p.bytes_out;
        result_rows += p.result_rows;
      }
      EXPECT_EQ(bytes_in, rs.bytes_to_sites);
      if (rs.synchronized) {
        EXPECT_EQ(bytes_out, rs.bytes_to_coord);
        EXPECT_EQ(result_rows, rs.tuples_to_coord);
      }
      // Frames wrap the accounted payloads, so each round's wire traffic
      // strictly dominates its payload traffic.
      EXPECT_GT(rs.wire_bytes, rs.bytes_to_sites + rs.bytes_to_coord);
    }
    EXPECT_EQ(stats.total_wire_bytes, round_wire + stats.setup_wire_bytes);
    // The connection-level counter additionally covers the hello/catalog
    // handshake, which total_wire_bytes (per-execution) excludes.
    EXPECT_LT(stats.total_wire_bytes, rpc.wire_bytes());
  }
}

TEST_F(RpcExecutorTest, ProfilesMatchAcrossEngines) {
  // The same plan through star, async, and rpc engines must agree on the
  // reconciliation-relevant profile columns (bytes shipped per site,
  // result rows) — the engines differ only in transport.
  GmdjExpr expr = ParseQuery(kQueries[1].text).ValueOrDie();
  DistributedPlan plan =
      warehouse_->Plan(expr, OptimizerOptions::None()).ValueOrDie();

  DistributedExecutor star(MakeSites(), NetworkConfig{}, {});
  ExecStats star_stats;
  ASSERT_TRUE(star.Execute(plan, &star_stats).ok());

  AsyncExecutor async(MakeSites(), NetworkConfig{}, {});
  ExecStats async_stats;
  ASSERT_TRUE(async.Execute(plan, &async_stats).ok());

  RpcExecutor rpc(std::make_unique<InProcessTransport>(MakeSites()), {});
  ExecStats rpc_stats;
  ASSERT_TRUE(rpc.Execute(plan, &rpc_stats).ok());

  ASSERT_EQ(star_stats.rounds.size(), rpc_stats.rounds.size());
  ASSERT_EQ(async_stats.rounds.size(), rpc_stats.rounds.size());
  for (size_t r = 0; r < rpc_stats.rounds.size(); ++r) {
    SCOPED_TRACE(rpc_stats.rounds[r].label);
    const std::vector<SiteRoundProfile>& a =
        star_stats.rounds[r].site_profiles;
    const std::vector<SiteRoundProfile>& b =
        async_stats.rounds[r].site_profiles;
    const std::vector<SiteRoundProfile>& c =
        rpc_stats.rounds[r].site_profiles;
    ASSERT_EQ(a.size(), c.size());
    ASSERT_EQ(b.size(), c.size());
    for (size_t i = 0; i < c.size(); ++i) {
      SCOPED_TRACE(c[i].site_id);
      EXPECT_EQ(a[i].site_id, c[i].site_id);
      EXPECT_EQ(b[i].site_id, c[i].site_id);
      EXPECT_EQ(a[i].bytes_in, c[i].bytes_in);
      EXPECT_EQ(b[i].bytes_in, c[i].bytes_in);
      EXPECT_EQ(a[i].bytes_out, c[i].bytes_out);
      EXPECT_EQ(b[i].bytes_out, c[i].bytes_out);
      EXPECT_EQ(a[i].result_rows, c[i].result_rows);
      EXPECT_EQ(b[i].result_rows, c[i].result_rows);
    }
  }
}

TEST_F(RpcExecutorTest, SiteStatsReturnsMetricsJson) {
  GmdjExpr expr = ParseQuery(kQueries[0].text).ValueOrDie();
  DistributedPlan plan =
      warehouse_->Plan(expr, OptimizerOptions::None()).ValueOrDie();
  RpcExecutor rpc(std::make_unique<InProcessTransport>(MakeSites()), {});
  ASSERT_TRUE(rpc.Execute(plan, nullptr).ok());
  for (size_t e = 0; e < kSites; ++e) {
    auto stats = rpc.SiteStats(e);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->site_id, static_cast<int>(e));
    EXPECT_FALSE(stats->metrics_json.empty());
    EXPECT_EQ(stats->metrics_json.front(), '{');
  }
  EXPECT_FALSE(rpc.SiteStats(kSites + 7).ok());
}

TEST_F(RpcExecutorTest, ColumnarKnobForwardsToSites) {
  GmdjExpr expr = ParseQuery(kQueries[0].text).ValueOrDie();
  DistributedPlan plan =
      warehouse_->Plan(expr, OptimizerOptions::None()).ValueOrDie();

  DistributedExecutor star(MakeSites(), NetworkConfig{}, {});
  Table expected = star.Execute(plan, nullptr).ValueOrDie();

  ExecutorOptions options;
  options.columnar_sites = true;
  auto transport = std::make_unique<InProcessTransport>(MakeSites());
  InProcessTransport* raw = transport.get();
  RpcExecutor rpc(std::move(transport), options);
  Table result = rpc.Execute(plan, nullptr).ValueOrDie();
  EXPECT_TRUE(ExactlyEqual(result, expected));
  for (size_t i = 0; i < kSites; ++i) {
    EXPECT_TRUE(raw->service(i)->site().columnar_enabled()) << "site " << i;
  }
}

TEST_F(RpcExecutorTest, EvalThreadsForwardsAndPreservesResults) {
  // eval_threads ships to every site in BeginPlan; parallel intra-site
  // evaluation must leave results byte-identical to the star engine's
  // sequential evaluation, for both optimizer presets.
  for (const OptimizerOptions& opts :
       {OptimizerOptions::None(), OptimizerOptions::All()}) {
    for (const QueryCase& q : kQueries) {
      GmdjExpr expr = ParseQuery(q.text).ValueOrDie();
      DistributedPlan plan = warehouse_->Plan(expr, opts).ValueOrDie();

      DistributedExecutor star(MakeSites(), NetworkConfig{}, {});
      Table expected = star.Execute(plan, nullptr).ValueOrDie();

      ExecutorOptions options;
      options.eval_threads = 4;
      RpcExecutor rpc(std::make_unique<InProcessTransport>(MakeSites()),
                      options);
      Table result = rpc.Execute(plan, nullptr).ValueOrDie();
      EXPECT_TRUE(ExactlyEqual(result, expected)) << q.name;
    }
  }
}

TEST_F(RpcExecutorTest, SiteErrorCodeSurvivesTheWire) {
  // Site 2's catalog is missing the detail relation. Its NotFound must
  // surface at the coordinator as NotFound — not as a generic transport
  // error — including when retries were attempted and exhausted.
  auto make_broken_sites = [] {
    std::vector<Site> sites;
    for (size_t i = 0; i < kSites; ++i) {
      Catalog catalog;
      if (i != 2) catalog.Register("flow", (*flow_parts_)[i]);
      sites.emplace_back(static_cast<int>(i), std::move(catalog));
    }
    return sites;
  };
  GmdjExpr expr = ParseQuery(kQueries[0].text).ValueOrDie();
  DistributedPlan plan =
      warehouse_->Plan(expr, OptimizerOptions::None()).ValueOrDie();

  for (size_t retries : {size_t{0}, size_t{3}}) {
    ExecutorOptions options;
    options.max_site_retries = retries;
    RpcExecutor rpc(
        std::make_unique<InProcessTransport>(make_broken_sites()), options);
    auto result = rpc.Execute(plan, nullptr);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsNotFound())
        << "retries=" << retries << ": " << result.status().ToString();
  }
}

TEST_F(RpcExecutorTest, ResentRoundIsIdempotent) {
  // A coordinator retry re-sends a round the site may have already
  // evaluated (response lost in flight). For rounds that consume the
  // site's carried-over structure, the service must re-evaluate from the
  // saved input — not apply the operator to its own output.
  std::vector<Site> sites = MakeSites();
  rpc::SiteService service(std::move(sites[0]));

  GmdjExpr expr = ParseQuery(kQueries[0].text).ValueOrDie();

  rpc::Frame begin;
  begin.type = rpc::MessageType::kBeginPlan;
  begin.payload = rpc::EncodeBeginPlanRequest({});
  ASSERT_TRUE(service.Handle(begin).ValueOrDie().type ==
              rpc::MessageType::kAck);

  rpc::BaseRoundRequest base_request;
  base_request.query = expr.base;
  base_request.ship_result = false;  // keep the base at the site
  rpc::Frame base_frame;
  base_frame.type = rpc::MessageType::kBaseRound;
  base_frame.payload = rpc::EncodeBaseRoundRequest(base_request);
  ASSERT_TRUE(service.Handle(base_frame).ValueOrDie().type ==
              rpc::MessageType::kRoundResult);

  rpc::GmdjRoundRequest round;
  round.op = expr.ops[0];
  round.label = "md1";
  round.sub_aggregates = true;
  round.ship_result = true;
  round.has_base = false;  // consumes the carried structure
  rpc::Frame round_frame;
  round_frame.type = rpc::MessageType::kGmdjRound;
  round_frame.payload = rpc::EncodeGmdjRoundRequest(round, {});

  rpc::Frame first = service.Handle(round_frame).ValueOrDie();
  ASSERT_EQ(first.type, rpc::MessageType::kRoundResult);
  rpc::Frame again = service.Handle(round_frame).ValueOrDie();
  ASSERT_EQ(again.type, rpc::MessageType::kRoundResult);
  // Since protocol v4 a round response embeds a wall-clock RoundProfile,
  // so raw payloads differ between identical calls; idempotency means
  // the shipped *table* is byte-identical.
  rpc::RoundResult first_result =
      rpc::DecodeRoundResult(first.payload).ValueOrDie();
  rpc::RoundResult again_result =
      rpc::DecodeRoundResult(again.payload).ValueOrDie();
  ASSERT_TRUE(first_result.has_table);
  ASSERT_TRUE(again_result.has_table);
  EXPECT_EQ(first_result.table_bytes, again_result.table_bytes);
  std::vector<uint8_t> first_bytes;
  std::vector<uint8_t> again_bytes;
  WriteTable(first_result.table, &first_bytes);
  WriteTable(again_result.table, &again_bytes);
  EXPECT_EQ(first_bytes, again_bytes);
  // The duplicate delivery is visible in the site's profile.
  EXPECT_EQ(first_result.profile.duplicate_rounds, 0u);
  EXPECT_EQ(again_result.profile.duplicate_rounds, 1u);
}

TEST_F(RpcExecutorTest, ShutdownReachesEverySite) {
  auto transport = std::make_unique<InProcessTransport>(MakeSites());
  InProcessTransport* raw = transport.get();
  RpcExecutor rpc(std::move(transport), {});
  ASSERT_TRUE(rpc.Shutdown().ok());
  for (size_t i = 0; i < kSites; ++i) {
    EXPECT_TRUE(raw->service(i)->shutdown_requested()) << "site " << i;
  }
}

}  // namespace
}  // namespace skalla
