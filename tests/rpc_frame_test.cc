// The rpc wire frame: CRC known answers, encode/decode round trips, and
// rejection of every malformed-header class — wrong magic, foreign
// protocol version (typed kVersionMismatch, satellite of the versioned
// frame header work), unknown message type, truncation, and payload
// corruption caught by the checksum.

#include "rpc/frame.h"

#include <gtest/gtest.h>

#include <cstring>

namespace skalla {
namespace rpc {
namespace {

TEST(Crc32Test, KnownAnswers) {
  // The ISO-HDLC check value every CRC-32 implementation must hit.
  const char* check = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(check), 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
  const uint8_t zero = 0;
  EXPECT_EQ(Crc32(&zero, 1), 0xD202EF8Du);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const uint8_t* data = reinterpret_cast<const uint8_t*>("123456789");
  // Split the check input at every boundary: the incremental form must
  // agree with the one-shot CRC regardless of buffer segmentation.
  for (size_t split = 0; split <= 9; ++split) {
    uint32_t state = Crc32Init();
    state = Crc32Update(state, data, split);
    state = Crc32Update(state, data + split, 9 - split);
    EXPECT_EQ(Crc32Final(state), 0xCBF43926u) << "split at " << split;
  }
}

TEST(FrameTest, RoundTripPreservesTypeAndPayload) {
  std::vector<uint8_t> payload = {1, 2, 3, 250, 0, 42};
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kGmdjRound, payload);
  ASSERT_EQ(wire.size(), kFrameHeaderSize + payload.size());

  Result<Frame> decoded = DecodeFrame(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, MessageType::kGmdjRound);
  EXPECT_EQ(decoded->payload, payload);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kAck, {});
  ASSERT_EQ(wire.size(), kFrameHeaderSize);
  Result<Frame> decoded = DecodeFrame(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, MessageType::kAck);
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(FrameTest, HeaderLayoutIsPinned) {
  // The layout is a wire contract: magic little-endian at 0, version at
  // 4, type at 5, reserved zero at 6..7, payload length at 8.
  std::vector<uint8_t> payload = {9, 9, 9};
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kHello, payload);
  EXPECT_EQ(wire[0], 'S');
  EXPECT_EQ(wire[1], 'K');
  EXPECT_EQ(wire[2], 'L');
  EXPECT_EQ(wire[3], 'A');
  EXPECT_EQ(wire[4], kProtocolVersion);
  EXPECT_EQ(wire[5], static_cast<uint8_t>(MessageType::kHello));
  EXPECT_EQ(wire[6], 0);
  EXPECT_EQ(wire[7], 0);
  uint32_t len;
  std::memcpy(&len, wire.data() + 8, 4);
  EXPECT_EQ(len, 3u);
}

TEST(FrameTest, DecodeHeaderReturnsTypeAndCrc) {
  std::vector<uint8_t> payload = {7, 7};
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kBaseRound, payload);
  MessageType type;
  uint32_t crc;
  Result<uint32_t> len =
      DecodeFrameHeader(wire.data(), kFrameHeaderSize, &type, &crc);
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(*len, 2u);
  EXPECT_EQ(type, MessageType::kBaseRound);
  // Since v3 the checksum covers the first 12 header bytes + payload.
  EXPECT_EQ(crc, FrameCrc(wire.data(), payload.data(), payload.size()));
}

TEST(FrameTest, WrongMagicIsIOError) {
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kAck, {1});
  wire[0] = 'X';
  Result<Frame> decoded = DecodeFrame(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsIOError());
}

TEST(FrameTest, ForeignVersionIsTypedVersionMismatch) {
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kBaseRound, {1, 2});
  wire[4] = kProtocolVersion + 1;
  Result<Frame> decoded = DecodeFrame(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsVersionMismatch())
      << decoded.status().ToString();
}

TEST(FrameTest, ProtocolVersionIsV6) {
  // v6: BeginPlan carries the plan's EvalContext::engine and
  // RoundProfile reports the engines a round actually used
  // (docs/RPC.md). The version byte is the wire contract for all of
  // that, so pin it explicitly.
  EXPECT_EQ(kProtocolVersion, 6);
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kBaseRound, {});
  EXPECT_EQ(wire[4], 6);
}

TEST(FrameTest, V3PeerRejectedWithVersionMismatch) {
  // A pre-trace-context (v3) peer must get the typed version-mismatch
  // status, not a generic IO error — coordinators surface it verbatim.
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kBaseRound, {1, 2});
  wire[4] = 3;
  Result<Frame> decoded = DecodeFrame(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsVersionMismatch())
      << decoded.status().ToString();
}

TEST(FrameTest, V4AndV5MessageTypesRoundTrip) {
  for (MessageType type :
       {MessageType::kGetStats, MessageType::kStatsResult,
        MessageType::kRoundResult, MessageType::kEndPlan}) {
    std::vector<uint8_t> wire = EncodeFrame(type, {42});
    Result<Frame> decoded = DecodeFrame(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->type, type);
  }
  EXPECT_EQ(kMaxMessageType, static_cast<uint8_t>(MessageType::kEndPlan));
}

TEST(FrameTest, UnknownMessageTypeRejected) {
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kAck, {});
  wire[5] = kMaxMessageType + 1;
  Result<Frame> decoded = DecodeFrame(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsIOError());
}

TEST(FrameTest, TruncationRejected) {
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kTableResult,
                                          {1, 2, 3, 4});
  // Shorter than a header.
  EXPECT_FALSE(DecodeFrame(wire.data(), kFrameHeaderSize - 1).ok());
  // Header fine, payload cut short.
  EXPECT_FALSE(DecodeFrame(wire.data(), wire.size() - 2).ok());
}

TEST(FrameTest, PayloadCorruptionCaughtByChecksum) {
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kTableResult,
                                          {10, 20, 30, 40, 50});
  wire[kFrameHeaderSize + 2] ^= 0xFF;
  Result<Frame> decoded = DecodeFrame(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsIOError());
  EXPECT_NE(decoded.status().message().find("checksum"), std::string::npos)
      << decoded.status().ToString();
}

TEST(FrameTest, HeaderCorruptionCaughtByChecksum) {
  // A type byte flipped to another *valid* type decoded silently before
  // v3; the header-covering checksum must reject it now.
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kBaseRound, {1, 2, 3});
  wire[5] = static_cast<uint8_t>(MessageType::kGmdjRound);
  Result<Frame> decoded = DecodeFrame(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsIOError());
  EXPECT_NE(decoded.status().message().find("checksum"), std::string::npos)
      << decoded.status().ToString();
}

TEST(FrameTest, EveryBitFlipIsTypedRejectionNeverSilentAccept) {
  // Fuzz every single-bit corruption of a valid frame. Each flip must
  // produce a typed rejection — IOError (magic / type / reserved /
  // length / checksum) or VersionMismatch (version byte) — and never a
  // crash or a silently-accepted altered frame. Flipping payload-length
  // bits makes the buffer length disagree with the header, which
  // DecodeFrame reports before the checksum; both are IOError.
  const std::vector<uint8_t> payload = {0x10, 0x52, 0x00, 0xFF, 0x07};
  const std::vector<uint8_t> pristine =
      EncodeFrame(MessageType::kGmdjRound, payload);
  ASSERT_TRUE(DecodeFrame(pristine).ok());
  for (size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> wire = pristine;
      wire[byte] ^= static_cast<uint8_t>(1u << bit);
      Result<Frame> decoded = DecodeFrame(wire);
      ASSERT_FALSE(decoded.ok())
          << "bit " << bit << " of byte " << byte << " accepted silently";
      EXPECT_TRUE(decoded.status().IsIOError() ||
                  decoded.status().IsVersionMismatch())
          << "bit " << bit << " of byte " << byte << ": "
          << decoded.status().ToString();
    }
  }
}

TEST(FrameTest, EveryByteCorruptionIsRejected) {
  // Coarser fuzz: overwrite each byte with a handful of adversarial
  // values (all-ones, all-zeros, off-by-one). Skip writes that leave
  // the byte unchanged — those frames are genuinely valid.
  const std::vector<uint8_t> payload = {9, 8, 7, 6};
  const std::vector<uint8_t> pristine =
      EncodeFrame(MessageType::kTableResult, payload);
  for (size_t byte = 0; byte < pristine.size(); ++byte) {
    for (uint8_t value : {uint8_t{0x00}, uint8_t{0xFF},
                          static_cast<uint8_t>(pristine[byte] + 1)}) {
      if (value == pristine[byte]) continue;
      std::vector<uint8_t> wire = pristine;
      wire[byte] = value;
      Result<Frame> decoded = DecodeFrame(wire);
      ASSERT_FALSE(decoded.ok()) << "byte " << byte << " <- "
                                 << int{value} << " accepted silently";
      EXPECT_TRUE(decoded.status().IsIOError() ||
                  decoded.status().IsVersionMismatch())
          << decoded.status().ToString();
    }
  }
}

TEST(FrameTest, AppendingEncoderComposesFrames) {
  // EncodeFrame(type, payload, out) appends: two frames can share one
  // buffer and decode independently.
  std::vector<uint8_t> buffer;
  EncodeFrame(MessageType::kAck, {}, &buffer);
  size_t first_size = buffer.size();
  EncodeFrame(MessageType::kHello, {5}, &buffer);

  Result<Frame> first = DecodeFrame(buffer.data(), first_size);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->type, MessageType::kAck);
  Result<Frame> second = DecodeFrame(buffer.data() + first_size,
                                     buffer.size() - first_size);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->type, MessageType::kHello);
}

}  // namespace
}  // namespace rpc
}  // namespace skalla
