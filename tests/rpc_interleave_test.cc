// Protocol-v5 frame multiplexing: two different queries submitted
// concurrently through one RpcExecutor share its per-site TCP
// connections, so each site sees rounds of both queries interleaved on
// one socket, keyed by the BeginPlan query id. Results must be
// byte-identical to isolated sequential runs — with and without seeded
// transport chaos (drops, CRC corruption, mid-frame resets, delays)
// forcing reconnects and idempotent round retries mid-interleave.

#include "rpc/rpc_executor.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "dist/exec.h"
#include "dist/warehouse.h"
#include "expr/builder.h"
#include "net/serde.h"
#include "rpc/server.h"
#include "rpc/site_service.h"
#include "rpc/tcp.h"
#include "serve/session.h"
#include "storage/partition.h"

namespace skalla {
namespace {

constexpr size_t kSites = 3;

Table MakeFlow(size_t rows) {
  Random rng(83);
  SchemaPtr schema = Schema::Make({{"SAS", ValueType::kInt64},
                                   {"NB", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendUnchecked(
        {Value(rng.UniformInt(0, 11)), Value(rng.UniformInt(1, 300))});
  }
  return t;
}

// Two deliberately different shapes: distinct base keys, stage counts,
// and carried aggregates, so mixed-up rounds could not accidentally
// produce the right answer.
GmdjExpr QueryA() {
  GmdjExpr expr;
  expr.base = BaseQuery{"flow", {"SAS"}, true, nullptr};
  GmdjOp md1;
  md1.detail_table = "flow";
  md1.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c"}, {AggKind::kAvg, "NB", "a"}},
      Eq(RCol("SAS"), BCol("SAS"))});
  GmdjOp md2;
  md2.detail_table = "flow";
  md2.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c2"}},
      And(Eq(RCol("SAS"), BCol("SAS")), Ge(RCol("NB"), BCol("a")))});
  expr.ops = {md1, md2};
  return expr;
}

GmdjExpr QueryB() {
  GmdjExpr expr;
  expr.base = BaseQuery{"flow", {"NB"}, true, nullptr};
  GmdjOp md1;
  md1.detail_table = "flow";
  md1.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "n"}, {AggKind::kSum, "SAS", "s"}},
      Eq(RCol("NB"), BCol("NB"))});
  expr.ops = {md1};
  return expr;
}

std::vector<Site> MakeSites(const std::vector<Table>& parts) {
  std::vector<Site> sites;
  for (size_t i = 0; i < parts.size(); ++i) {
    Catalog catalog;
    catalog.Register("flow", parts[i]);
    sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  return sites;
}

std::vector<uint8_t> TableBytes(const Table& t) {
  std::vector<uint8_t> bytes;
  WriteTable(t, &bytes);
  return bytes;
}

/// Loopback site servers, optionally with seeded transport chaos.
class Cluster {
 public:
  Cluster(std::vector<Site> sites, uint64_t chaos_seed) {
    for (size_t i = 0; i < sites.size(); ++i) {
      services_.push_back(
          std::make_unique<rpc::SiteService>(std::move(sites[i])));
      rpc::SiteServerOptions options;
      options.accept_timeout_s = 0.05;
      options.io_timeout_s = 5.0;
      if (chaos_seed != 0) {
        options.chaos.seed = chaos_seed + i;
        options.chaos.drop_response_prob = 0.1;
        options.chaos.corrupt_crc_prob = 0.1;
        options.chaos.reset_midframe_prob = 0.05;
        options.chaos.delay_prob = 0.2;
        options.chaos.delay_ms = 2;
      }
      servers_.push_back(
          std::make_unique<rpc::SiteServer>(services_.back().get(), options));
      servers_.back()->Start().Check();
      threads_.emplace_back([this, i] { (void)servers_[i]->Serve(); });
    }
  }

  ~Cluster() {
    for (auto& server : servers_) server->Stop();
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  std::vector<rpc::SiteEndpoint> endpoints() const {
    std::vector<rpc::SiteEndpoint> out;
    for (const auto& server : servers_) {
      out.push_back({"127.0.0.1", server->port()});
    }
    return out;
  }

  int total_faults() const {
    int total = 0;
    for (const auto& server : servers_) {
      total += server->chaos_faults_injected();
    }
    return total;
  }

 private:
  std::vector<std::unique_ptr<rpc::SiteService>> services_;
  std::vector<std::unique_ptr<rpc::SiteServer>> servers_;
  std::vector<std::thread> threads_;
};

class RpcInterleaveTest : public ::testing::Test {
 protected:
  RpcInterleaveTest() : dw_(kSites) {
    parts_ = PartitionByValue(MakeFlow(600), "SAS", kSites).ValueOrDie();
    std::vector<Table> copy = parts_;
    dw_.AddPartitionedTable("flow", std::move(copy), {"SAS", "NB"}).Check();
    plan_a_ = dw_.Plan(QueryA(), OptimizerOptions::All()).ValueOrDie();
    plan_b_ = dw_.Plan(QueryB(), OptimizerOptions::None()).ValueOrDie();

    // Isolated baselines from the in-process star engine.
    DistributedExecutor star(MakeSites(parts_));
    expected_a_ = TableBytes(star.Execute(plan_a_, nullptr).ValueOrDie());
    expected_b_ = TableBytes(star.Execute(plan_b_, nullptr).ValueOrDie());
  }

  // Submits `rounds` copies of both plans concurrently through one
  // session over one RpcExecutor (one TCP connection per site, shared
  // by every query), and checks each result against its baseline.
  void RunInterleaved(const Cluster& cluster, size_t rounds,
                      size_t max_site_retries) {
    rpc::TcpOptions tcp;
    tcp.io_timeout_s = 5.0;
    tcp.backoff_initial_s = 0.005;
    tcp.backoff_max_s = 0.05;
    ExecutorOptions exec_options;
    exec_options.max_site_retries = max_site_retries;
    auto executor = std::make_unique<rpc::RpcExecutor>(
        std::make_unique<rpc::TcpTransport>(cluster.endpoints(), tcp),
        exec_options);

    serve::SessionOptions options;
    options.scheduler.max_concurrent_queries = 2 * rounds;
    options.scheduler.cache_max_bytes = 0;  // every submission evaluates
    serve::QuerySession session =
        serve::QuerySession::Wrap(std::move(executor), options);

    std::vector<serve::QueryScheduler::Submission> a_subs;
    std::vector<serve::QueryScheduler::Submission> b_subs;
    for (size_t i = 0; i < rounds; ++i) {
      a_subs.push_back(session.SubmitPlan(plan_a_));
      b_subs.push_back(session.SubmitPlan(plan_b_));
    }
    for (size_t i = 0; i < rounds; ++i) {
      auto a = a_subs[i].result.get();
      ASSERT_TRUE(a.ok()) << "query A #" << i << ": "
                          << a.status().ToString();
      EXPECT_EQ(TableBytes(a->table), expected_a_) << "query A #" << i;
      auto b = b_subs[i].result.get();
      ASSERT_TRUE(b.ok()) << "query B #" << i << ": "
                          << b.status().ToString();
      EXPECT_EQ(TableBytes(b->table), expected_b_) << "query B #" << i;
    }
  }

  DistributedWarehouse dw_;
  std::vector<Table> parts_;
  DistributedPlan plan_a_;
  DistributedPlan plan_b_;
  std::vector<uint8_t> expected_a_;
  std::vector<uint8_t> expected_b_;
};

TEST_F(RpcInterleaveTest, TwoQueriesShareConnectionsCleanly) {
  Cluster cluster(MakeSites(parts_), /*chaos_seed=*/0);
  RunInterleaved(cluster, /*rounds=*/3, /*max_site_retries=*/0);
}

TEST_F(RpcInterleaveTest, InterleavingSurvivesSeededChaos) {
  Cluster cluster(MakeSites(parts_), /*chaos_seed=*/47);
  RunInterleaved(cluster, /*rounds=*/3, /*max_site_retries=*/4);
  // The seed is chosen so the chaos hooks actually fire mid-interleave.
  EXPECT_GT(cluster.total_faults(), 0);
}

}  // namespace
}  // namespace skalla
