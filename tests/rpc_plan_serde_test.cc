// Round trips for the plan-shaped rpc payloads: expressions, schemas,
// statuses (error codes must survive the wire), base queries, GMDJ
// operators, and the request/response structs built from them.

#include "rpc/plan_serde.h"

#include <gtest/gtest.h>

#include "expr/builder.h"
#include "types/value.h"

namespace skalla {
namespace rpc {
namespace {

TEST(PlanSerdeTest, StringsRoundTrip) {
  std::vector<uint8_t> buffer;
  WriteString(&buffer, "flow");
  WriteString(&buffer, "");
  WriteString(&buffer, std::string("emb\0edded", 9));
  ByteReader reader(buffer.data(), buffer.size());
  EXPECT_EQ(ReadString(&reader).ValueOrDie(), "flow");
  EXPECT_EQ(ReadString(&reader).ValueOrDie(), "");
  EXPECT_EQ(ReadString(&reader).ValueOrDie(), std::string("emb\0edded", 9));
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(PlanSerdeTest, ExpressionsRoundTrip) {
  ExprPtr expr = And(Eq(RCol("SourceAS"), BCol("SourceAS")),
                     Ge(RCol("NumBytes"), Div(BCol("sum1"), BCol("cnt1"))));
  std::vector<uint8_t> buffer;
  WriteExpr(&buffer, expr);
  ByteReader reader(buffer.data(), buffer.size());
  ExprPtr decoded = ReadExpr(&reader).ValueOrDie();
  ASSERT_NE(decoded, nullptr);
  EXPECT_TRUE(decoded->Equals(*expr))
      << decoded->ToString() << " vs " << expr->ToString();
}

TEST(PlanSerdeTest, LiteralsSurviveEncoding) {
  ExprPtr expr = Or(Eq(RCol("DestPort"), Lit(Value(int64_t{443}))),
                    Gt(RCol("ratio"), Lit(Value(2.5))));
  std::vector<uint8_t> buffer;
  WriteExpr(&buffer, expr);
  ByteReader reader(buffer.data(), buffer.size());
  ExprPtr decoded = ReadExpr(&reader).ValueOrDie();
  EXPECT_TRUE(decoded->Equals(*expr));
}

TEST(PlanSerdeTest, NullExpressionRoundTrips) {
  std::vector<uint8_t> buffer;
  WriteExpr(&buffer, nullptr);
  ByteReader reader(buffer.data(), buffer.size());
  ExprPtr decoded = ReadExpr(&reader).ValueOrDie();
  EXPECT_EQ(decoded, nullptr);
}

TEST(PlanSerdeTest, SchemasRoundTrip) {
  SchemaPtr schema = Schema::Make({{"SourceAS", ValueType::kInt64},
                                   {"name", ValueType::kString},
                                   {"avg", ValueType::kFloat64}})
                         .ValueOrDie();
  std::vector<uint8_t> buffer;
  WriteSchema(&buffer, *schema);
  ByteReader reader(buffer.data(), buffer.size());
  SchemaPtr decoded = ReadSchema(&reader).ValueOrDie();
  EXPECT_TRUE(decoded->Equals(*schema));
}

TEST(PlanSerdeTest, StatusCodesSurviveTheWire) {
  // The kError payload must reproduce the site's exact code — this is
  // what lets a coordinator distinguish a site-side NotFound from a
  // transport failure.
  const Status statuses[] = {
      Status::InvalidArgument("bad arg"), Status::NotFound("no table"),
      Status::Internal("boom"),           Status::IOError("disk"),
      Status::TypeError("t"),             Status::VersionMismatch("v"),
      Status::DeadlineExceeded("round budget spent"),
  };
  for (const Status& status : statuses) {
    std::vector<uint8_t> payload;
    WriteStatusPayload(&payload, status);
    Status decoded = ReadStatusPayload(payload);
    EXPECT_EQ(decoded.code(), status.code()) << status.ToString();
    EXPECT_EQ(decoded.message(), status.message());
  }
}

TEST(PlanSerdeTest, MalformedStatusPayloadIsIOError) {
  EXPECT_TRUE(ReadStatusPayload({}).IsIOError());
  EXPECT_TRUE(ReadStatusPayload({0xFF, 0xFF, 0xFF}).IsIOError());
}

TEST(PlanSerdeTest, BaseQueriesRoundTrip) {
  BaseQuery query;
  query.table = "flow";
  query.columns = {"SourceAS", "DestAS"};
  query.distinct = true;
  query.where = Gt(RCol("NumPackets"), Lit(Value(int64_t{100})));

  std::vector<uint8_t> buffer;
  WriteBaseQuery(&buffer, query);
  ByteReader reader(buffer.data(), buffer.size());
  BaseQuery decoded = ReadBaseQuery(&reader).ValueOrDie();
  EXPECT_EQ(decoded.table, query.table);
  EXPECT_EQ(decoded.columns, query.columns);
  EXPECT_EQ(decoded.distinct, query.distinct);
  ASSERT_NE(decoded.where, nullptr);
  EXPECT_TRUE(decoded.where->Equals(*query.where));

  // And without a predicate.
  BaseQuery bare{"tpcr", {"Clerk"}, false, nullptr};
  buffer.clear();
  WriteBaseQuery(&buffer, bare);
  ByteReader bare_reader(buffer.data(), buffer.size());
  BaseQuery bare_decoded = ReadBaseQuery(&bare_reader).ValueOrDie();
  EXPECT_EQ(bare_decoded.table, "tpcr");
  EXPECT_FALSE(bare_decoded.distinct);
  EXPECT_EQ(bare_decoded.where, nullptr);
}

GmdjOp ExampleOp() {
  GmdjOp op;
  op.detail_table = "flow";
  op.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "cnt"}, {AggKind::kSum, "NumBytes", "sum"}},
      Eq(RCol("SourceAS"), BCol("SourceAS"))});
  op.blocks.push_back(GmdjBlock{
      {{AggKind::kAvg, "NumPackets", "avg_pkts"}},
      And(Eq(RCol("SourceAS"), BCol("SourceAS")),
          Ge(RCol("NumBytes"), BCol("sum")))});
  return op;
}

TEST(PlanSerdeTest, GmdjOpsRoundTrip) {
  GmdjOp op = ExampleOp();
  std::vector<uint8_t> buffer;
  WriteGmdjOp(&buffer, op);
  ByteReader reader(buffer.data(), buffer.size());
  GmdjOp decoded = ReadGmdjOp(&reader).ValueOrDie();
  EXPECT_EQ(decoded.detail_table, op.detail_table);
  ASSERT_EQ(decoded.blocks.size(), op.blocks.size());
  for (size_t b = 0; b < op.blocks.size(); ++b) {
    ASSERT_EQ(decoded.blocks[b].aggs.size(), op.blocks[b].aggs.size());
    for (size_t a = 0; a < op.blocks[b].aggs.size(); ++a) {
      EXPECT_EQ(decoded.blocks[b].aggs[a].kind, op.blocks[b].aggs[a].kind);
      EXPECT_EQ(decoded.blocks[b].aggs[a].input, op.blocks[b].aggs[a].input);
      EXPECT_EQ(decoded.blocks[b].aggs[a].output,
                op.blocks[b].aggs[a].output);
    }
    EXPECT_TRUE(decoded.blocks[b].theta->Equals(*op.blocks[b].theta));
  }
}

TEST(PlanSerdeTest, BeginPlanRequestRoundTrips) {
  for (bool columnar : {false, true}) {
    for (size_t eval_threads : {size_t{0}, size_t{1}, size_t{8}}) {
      for (uint64_t query_id : {uint64_t{0}, uint64_t{7}, uint64_t{1} << 40}) {
        for (EvalEngine engine :
             {EvalEngine::kAuto, EvalEngine::kRow, EvalEngine::kColumnar}) {
          BeginPlanRequest request;
          request.columnar_sites = columnar;
          request.eval_threads = eval_threads;
          request.query_id = query_id;
          request.engine = engine;
          BeginPlanRequest decoded =
              DecodeBeginPlanRequest(EncodeBeginPlanRequest(request))
                  .ValueOrDie();
          EXPECT_EQ(decoded.columnar_sites, columnar);
          EXPECT_EQ(decoded.eval_threads, eval_threads);
          EXPECT_EQ(decoded.query_id, query_id);
          EXPECT_EQ(decoded.engine, engine);
        }
      }
    }
  }
}

TEST(PlanSerdeTest, EndPlanRequestRoundTrips) {
  for (uint64_t query_id : {uint64_t{0}, uint64_t{42}, uint64_t{1} << 50}) {
    uint64_t decoded =
        DecodeEndPlanRequest(EncodeEndPlanRequest(query_id)).ValueOrDie();
    EXPECT_EQ(decoded, query_id);
  }
  EXPECT_FALSE(DecodeEndPlanRequest({}).ok());
}

TEST(PlanSerdeTest, BeginPlanRequestRejectsUnknownEngine) {
  // v6 appended the engine varint; values past kColumnar are foreign.
  BeginPlanRequest request;
  request.engine = EvalEngine::kColumnar;
  std::vector<uint8_t> wire = EncodeBeginPlanRequest(request);
  ASSERT_EQ(wire.back(), 2);  // kColumnar, single-byte varint.
  wire.back() = 7;
  EXPECT_FALSE(DecodeBeginPlanRequest(wire).ok());
}

TEST(PlanSerdeTest, BeginPlanRequestRejectsTruncatedPayload) {
  // A version-1 BeginPlan payload (flags byte only, no eval_threads
  // varint) must not decode silently.
  EXPECT_FALSE(DecodeBeginPlanRequest({0}).ok());
}

TEST(PlanSerdeTest, BaseRoundRequestRoundTrips) {
  BaseRoundRequest request;
  request.query = BaseQuery{"flow", {"SourceAS"}, true, nullptr};
  request.ship_result = false;
  BaseRoundRequest decoded =
      DecodeBaseRoundRequest(EncodeBaseRoundRequest(request)).ValueOrDie();
  EXPECT_EQ(decoded.query.table, "flow");
  EXPECT_EQ(decoded.query.columns, request.query.columns);
  EXPECT_FALSE(decoded.ship_result);
  EXPECT_EQ(decoded.deadline_ms, 0u);
}

TEST(PlanSerdeTest, RoundRequestDeadlinesSurviveTheWire) {
  // deadline_ms is how a coordinator's round/query budget reaches the
  // site-side cancellation token (protocol v3).
  for (uint64_t deadline : {uint64_t{1}, uint64_t{250}, uint64_t{1} << 40}) {
    BaseRoundRequest base;
    base.query = BaseQuery{"flow", {"SourceAS"}, true, nullptr};
    base.deadline_ms = deadline;
    BaseRoundRequest base_decoded =
        DecodeBaseRoundRequest(EncodeBaseRoundRequest(base)).ValueOrDie();
    EXPECT_EQ(base_decoded.deadline_ms, deadline);

    GmdjRoundRequest gmdj;
    gmdj.op = ExampleOp();
    gmdj.label = "md1";
    gmdj.deadline_ms = deadline;
    GmdjRoundRequest gmdj_decoded =
        DecodeGmdjRoundRequest(EncodeGmdjRoundRequest(gmdj, {}))
            .ValueOrDie();
    EXPECT_EQ(gmdj_decoded.deadline_ms, deadline);
  }
}

TEST(PlanSerdeTest, RoundRequestRejectsPayloadTruncatedAtDeadline) {
  // A flags byte with nothing after it (a version-2 BaseRound shape)
  // must not decode: the deadline varint is required in v3.
  EXPECT_FALSE(DecodeBaseRoundRequest({0}).ok());
  EXPECT_FALSE(DecodeGmdjRoundRequest({0}).ok());
}

TEST(PlanSerdeTest, GmdjRoundRequestRoundTripsWithBaseTable) {
  SchemaPtr schema = Schema::Make({{"SourceAS", ValueType::kInt64}})
                         .ValueOrDie();
  Table base(schema);
  base.AppendUnchecked({Value(int64_t{4})});
  base.AppendUnchecked({Value(int64_t{9})});
  std::vector<uint8_t> base_bytes;
  WriteTable(base, &base_bytes);

  GmdjRoundRequest request;
  request.op = ExampleOp();
  request.label = "md2";
  request.sub_aggregates = true;
  request.apply_rng = true;
  request.ship_result = true;
  request.has_base = true;
  GmdjRoundRequest decoded =
      DecodeGmdjRoundRequest(EncodeGmdjRoundRequest(request, base_bytes))
          .ValueOrDie();
  EXPECT_EQ(decoded.label, "md2");
  EXPECT_TRUE(decoded.sub_aggregates);
  EXPECT_TRUE(decoded.apply_rng);
  EXPECT_TRUE(decoded.ship_result);
  ASSERT_TRUE(decoded.has_base);
  ASSERT_EQ(decoded.base.num_rows(), 2u);
  EXPECT_EQ(decoded.base.at(1, 0).int64(), 9);
  EXPECT_EQ(decoded.op.detail_table, "flow");
}

TEST(PlanSerdeTest, GmdjRoundRequestWithoutBase) {
  GmdjRoundRequest request;
  request.op = ExampleOp();
  request.label = "md1";
  request.has_base = false;
  GmdjRoundRequest decoded =
      DecodeGmdjRoundRequest(EncodeGmdjRoundRequest(request, {}))
          .ValueOrDie();
  EXPECT_FALSE(decoded.has_base);
  EXPECT_EQ(decoded.base.num_rows(), 0u);
}

TEST(PlanSerdeTest, CatalogResponseRoundTrips) {
  std::vector<CatalogEntry> entries;
  entries.push_back(
      {"flow", Schema::Make({{"SourceAS", ValueType::kInt64},
                             {"NumBytes", ValueType::kInt64}})
                   .ValueOrDie()});
  entries.push_back(
      {"tpcr", Schema::Make({{"Clerk", ValueType::kString}}).ValueOrDie()});
  std::vector<CatalogEntry> decoded =
      DecodeCatalogResponse(EncodeCatalogResponse(entries)).ValueOrDie();
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].name, "flow");
  EXPECT_TRUE(decoded[0].schema->Equals(*entries[0].schema));
  EXPECT_EQ(decoded[1].name, "tpcr");
  EXPECT_TRUE(decoded[1].schema->Equals(*entries[1].schema));
}

TEST(PlanSerdeTest, HelloRoundTrips) {
  for (int site : {0, 3, 4096}) {
    EXPECT_EQ(DecodeHello(EncodeHello(site)).ValueOrDie(), site);
  }
}

TEST(PlanSerdeTest, TraceContextRidesEveryRoundRequest) {
  // v4: both round request shapes carry the trace context after the
  // deadline; zeros (the untraced default) round-trip too.
  for (uint64_t seed : {uint64_t{0}, uint64_t{7}}) {
    TraceContext trace;
    trace.trace_id = seed * 1000003;
    trace.parent_span_id = seed * 17;
    trace.query_id = seed * 3;

    BaseRoundRequest base;
    base.query = BaseQuery{"flow", {"SourceAS"}, true, nullptr};
    base.trace = trace;
    BaseRoundRequest base_decoded =
        DecodeBaseRoundRequest(EncodeBaseRoundRequest(base)).ValueOrDie();
    EXPECT_EQ(base_decoded.trace.trace_id, trace.trace_id);
    EXPECT_EQ(base_decoded.trace.parent_span_id, trace.parent_span_id);
    EXPECT_EQ(base_decoded.trace.query_id, trace.query_id);

    GmdjRoundRequest gmdj;
    gmdj.op = ExampleOp();
    gmdj.label = "md1";
    gmdj.trace = trace;
    GmdjRoundRequest gmdj_decoded =
        DecodeGmdjRoundRequest(EncodeGmdjRoundRequest(gmdj, {}))
            .ValueOrDie();
    EXPECT_EQ(gmdj_decoded.trace.trace_id, trace.trace_id);
    EXPECT_EQ(gmdj_decoded.trace.parent_span_id, trace.parent_span_id);
    EXPECT_EQ(gmdj_decoded.trace.query_id, trace.query_id);
  }
}

TEST(PlanSerdeTest, GmdjRoundRequestReportsBaseTableBytes) {
  SchemaPtr schema =
      Schema::Make({{"SourceAS", ValueType::kInt64}}).ValueOrDie();
  Table base(schema);
  base.AppendUnchecked({Value(int64_t{4})});
  std::vector<uint8_t> base_bytes;
  WriteTable(base, &base_bytes);

  GmdjRoundRequest request;
  request.op = ExampleOp();
  request.has_base = true;
  GmdjRoundRequest decoded =
      DecodeGmdjRoundRequest(EncodeGmdjRoundRequest(request, base_bytes))
          .ValueOrDie();
  // The decoder reports the table tail's size so the site can account
  // its inbound payload bytes without re-serializing.
  EXPECT_EQ(decoded.base_table_bytes, base_bytes.size());

  GmdjRoundRequest no_base;
  no_base.op = ExampleOp();
  no_base.has_base = false;
  EXPECT_EQ(DecodeGmdjRoundRequest(EncodeGmdjRoundRequest(no_base, {}))
                .ValueOrDie()
                .base_table_bytes,
            0u);
}

RoundProfile ExampleProfile() {
  RoundProfile profile;
  profile.site_id = 3;
  profile.wall_us = 1234;
  profile.eval_us = 1100;
  profile.morsel_us = 2048;
  profile.rows_scanned = 50000;
  profile.rows_matched = 1212;
  profile.index_hits = 47;
  profile.bytes_in = 888;
  profile.bytes_out = 999;
  profile.result_rows = 21;
  profile.duplicate_rounds = 1;
  profile.chaos_faults = 2;
  profile.engines_used = kEngineBitRow | kEngineBitColumnar;
  obs::TraceEvent span;
  span.name = "site.round:md1";
  span.category = "site";
  span.ts_us = 10;
  span.dur_us = 90;
  span.id = 77;
  span.parent_id = 0;
  span.tid = 5;
  span.attrs = {{"site", "3"}, {"label", "md1"}};
  profile.spans.push_back(span);
  obs::TraceEvent child = span;
  child.name = "morsel";
  child.id = 78;
  child.parent_id = 77;
  child.attrs.clear();
  profile.spans.push_back(child);
  return profile;
}

void ExpectProfileEq(const RoundProfile& a, const RoundProfile& b) {
  EXPECT_EQ(a.site_id, b.site_id);
  EXPECT_EQ(a.wall_us, b.wall_us);
  EXPECT_EQ(a.eval_us, b.eval_us);
  EXPECT_EQ(a.morsel_us, b.morsel_us);
  EXPECT_EQ(a.rows_scanned, b.rows_scanned);
  EXPECT_EQ(a.rows_matched, b.rows_matched);
  EXPECT_EQ(a.index_hits, b.index_hits);
  EXPECT_EQ(a.bytes_in, b.bytes_in);
  EXPECT_EQ(a.bytes_out, b.bytes_out);
  EXPECT_EQ(a.result_rows, b.result_rows);
  EXPECT_EQ(a.duplicate_rounds, b.duplicate_rounds);
  EXPECT_EQ(a.chaos_faults, b.chaos_faults);
  EXPECT_EQ(a.engines_used, b.engines_used);
  ASSERT_EQ(a.spans.size(), b.spans.size());
  for (size_t i = 0; i < a.spans.size(); ++i) {
    EXPECT_EQ(a.spans[i].name, b.spans[i].name);
    EXPECT_EQ(a.spans[i].category, b.spans[i].category);
    EXPECT_EQ(a.spans[i].ts_us, b.spans[i].ts_us);
    EXPECT_EQ(a.spans[i].dur_us, b.spans[i].dur_us);
    EXPECT_EQ(a.spans[i].id, b.spans[i].id);
    EXPECT_EQ(a.spans[i].parent_id, b.spans[i].parent_id);
    EXPECT_EQ(a.spans[i].tid, b.spans[i].tid);
    EXPECT_EQ(a.spans[i].attrs, b.spans[i].attrs);
  }
}

TEST(PlanSerdeTest, RoundProfileRoundTrips) {
  RoundProfile profile = ExampleProfile();
  std::vector<uint8_t> buffer;
  WriteRoundProfile(&buffer, profile);
  ByteReader reader(buffer.data(), buffer.size());
  RoundProfile decoded = ReadRoundProfile(&reader).ValueOrDie();
  EXPECT_EQ(reader.remaining(), 0u);
  ExpectProfileEq(decoded, profile);
}

TEST(PlanSerdeTest, RoundResultRoundTripsWithAndWithoutTable) {
  SchemaPtr schema =
      Schema::Make({{"SourceAS", ValueType::kInt64}}).ValueOrDie();
  Table table(schema);
  table.AppendUnchecked({Value(int64_t{4})});
  table.AppendUnchecked({Value(int64_t{9})});
  std::vector<uint8_t> table_bytes;
  WriteTable(table, &table_bytes);

  RoundProfile profile = ExampleProfile();
  RoundResult with_table =
      DecodeRoundResult(EncodeRoundResult(profile, &table_bytes))
          .ValueOrDie();
  ExpectProfileEq(with_table.profile, profile);
  ASSERT_TRUE(with_table.has_table);
  // The table tail must account byte-for-byte: this is what feeds
  // bytes_to_coord, pinned equal across all four engines.
  EXPECT_EQ(with_table.table_bytes, table_bytes.size());
  ASSERT_EQ(with_table.table.num_rows(), 2u);
  EXPECT_EQ(with_table.table.at(1, 0).int64(), 9);

  RoundResult without =
      DecodeRoundResult(EncodeRoundResult(profile, nullptr)).ValueOrDie();
  ExpectProfileEq(without.profile, profile);
  EXPECT_FALSE(without.has_table);
  EXPECT_EQ(without.table_bytes, 0u);
}

TEST(PlanSerdeTest, RoundResultRejectsTruncation) {
  RoundProfile profile = ExampleProfile();
  std::vector<uint8_t> payload = EncodeRoundResult(profile, nullptr);
  for (size_t cut : {size_t{0}, payload.size() / 2, payload.size() - 1}) {
    std::vector<uint8_t> truncated(payload.begin(),
                                   payload.begin() + cut);
    EXPECT_FALSE(DecodeRoundResult(truncated).ok()) << "cut at " << cut;
  }
}

TEST(PlanSerdeTest, StatsResultRoundTrips) {
  StatsResult stats;
  stats.site_id = 6;
  stats.metrics_json = "{\"counters\":{\"skalla.rpc.bytes.sent\":123}}";
  StatsResult decoded =
      DecodeStatsResult(EncodeStatsResult(stats)).ValueOrDie();
  EXPECT_EQ(decoded.site_id, 6);
  EXPECT_EQ(decoded.metrics_json, stats.metrics_json);
  EXPECT_FALSE(DecodeStatsResult({}).ok());
}

TEST(PlanSerdeTest, TruncatedPayloadsFailCleanly) {
  GmdjRoundRequest request;
  request.op = ExampleOp();
  std::vector<uint8_t> payload = EncodeGmdjRoundRequest(request, {});
  payload.resize(payload.size() / 2);
  EXPECT_FALSE(DecodeGmdjRoundRequest(payload).ok());
  EXPECT_FALSE(DecodeBeginPlanRequest({}).ok());
  EXPECT_FALSE(DecodeHello({}).ok());
}

}  // namespace
}  // namespace rpc
}  // namespace skalla
