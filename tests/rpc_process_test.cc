// End-to-end multi-process smoke: four real skalla-site processes are
// spawned over a saved warehouse, and the RpcExecutor drives the full
// query_suite battery through them over loopback TCP. Results must be
// byte-identical to the DistributedExecutor with identical
// bytes_to_sites / bytes_to_coord accounting, and an injected mid-round
// connection drop (a site hanging up via --drop-request) must be
// survived by reconnect + retry without changing the result.
//
// The skalla-site binary path comes from the SKALLA_SITE_BIN environment
// variable, falling back to the build-time target location; the test
// skips if neither resolves.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/flow_gen.h"
#include "data/tpcr_gen.h"
#include "dist/warehouse.h"
#include "obs/obs.h"
#include "rpc/rpc_executor.h"
#include "rpc/tcp.h"
#include "sql/parser.h"
#include "types/row.h"

namespace skalla {
namespace {

constexpr size_t kSites = 4;

struct QueryCase {
  const char* name;
  const char* text;
};

// The query_suite battery, verbatim.
const QueryCase kQueries[] = {
    {"per_source_totals", R"(
      BASE SELECT DISTINCT SourceAS FROM flow;
      MD USING flow
         COMPUTE COUNT(*) AS flows, SUM(NumBytes) AS bytes,
                 MAX(NumPackets) AS max_pkts
         WHERE r.SourceAS = b.SourceAS;
    )"},
    {"above_average_pairs", R"(
      BASE SELECT DISTINCT SourceAS, DestAS FROM flow;
      MD USING flow
         COMPUTE COUNT(*) AS cnt1, SUM(NumBytes) AS sum1
         WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS;
      MD USING flow
         COMPUTE COUNT(*) AS cnt2
         WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS
           AND r.NumBytes >= b.sum1 / b.cnt1;
    )"},
    {"web_vs_total_blocks", R"(
      BASE SELECT DISTINCT SourceAS FROM flow;
      MD USING flow
         COMPUTE COUNT(*) AS web
         WHERE r.SourceAS = b.SourceAS
           AND (r.DestPort = 80 OR r.DestPort = 443)
         COMPUTE COUNT(*) AS total, AVG(NumBytes) AS avg_bytes
         WHERE r.SourceAS = b.SourceAS;
    )"},
    {"filtered_base", R"(
      BASE SELECT DISTINCT DestAS FROM flow WHERE NumPackets > 100;
      MD USING flow
         COMPUTE COUNT(*) AS big_flows, MIN(NumBytes) AS smallest
         WHERE r.DestAS = b.DestAS AND r.NumPackets > 100;
    )"},
    {"three_round_chain", R"(
      BASE SELECT DISTINCT SourceAS FROM flow;
      MD USING flow
         COMPUTE MAX(NumBytes) AS biggest
         WHERE r.SourceAS = b.SourceAS;
      MD USING flow
         COMPUTE COUNT(*) AS at_max
         WHERE r.SourceAS = b.SourceAS AND r.NumBytes = b.biggest;
      MD USING flow
         COMPUTE SUM(NumPackets) AS pkts_at_max
         WHERE r.SourceAS = b.SourceAS AND r.NumBytes = b.biggest;
    )"},
    {"empty_result", R"(
      BASE SELECT DISTINCT SourceAS FROM flow WHERE SourceAS < 0;
      MD USING flow
         COMPUTE COUNT(*) AS c WHERE r.SourceAS = b.SourceAS;
    )"},
    {"non_equi_only", R"(
      BASE SELECT DISTINCT SourcePort FROM flow WHERE SourcePort < 1100;
      MD USING flow
         COMPUTE COUNT(*) AS lower_ports
         WHERE r.SourcePort < b.SourcePort;
    )"},
    {"clerk_low_cardinality", R"(
      BASE SELECT DISTINCT Clerk FROM tpcr;
      MD USING tpcr
         COMPUTE COUNT(*) AS lines, AVG(ExtendedPrice) AS avg_price
         WHERE r.Clerk = b.Clerk;
      MD USING tpcr
         COMPUTE COUNT(*) AS pricey
         WHERE r.Clerk = b.Clerk AND r.ExtendedPrice >= b.avg_price;
    )"},
    {"customer_quantities", R"(
      BASE SELECT DISTINCT CustKey FROM tpcr;
      MD USING tpcr
         COMPUTE COUNT(Quantity) AS big_qty_lines, SUM(Quantity) AS total_qty
         WHERE r.CustKey = b.CustKey AND r.Quantity > 10
         COMPUTE MIN(ShipDate) AS first_ship
         WHERE r.CustKey = b.CustKey;
    )"},
    {"cross_relation_chain", R"(
      BASE SELECT DISTINCT SourceAS FROM flow;
      MD USING flow
         COMPUTE COUNT(*) AS hist_flows, AVG(NumBytes) AS hist_avg
         WHERE r.SourceAS = b.SourceAS;
      MD USING flow_recent
         COMPUTE COUNT(*) AS recent_above
         WHERE r.SourceAS = b.SourceAS AND r.NumBytes >= b.hist_avg;
    )"},
};

bool ExactlyEqual(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    if (!RowEquals(a.row(r), b.row(r))) return false;
  }
  return true;
}

std::string SiteBinary() {
  const char* env = std::getenv("SKALLA_SITE_BIN");
  if (env != nullptr && env[0] != '\0') return env;
#ifdef SKALLA_SITE_BIN_DEFAULT
  if (std::filesystem::exists(SKALLA_SITE_BIN_DEFAULT)) {
    return SKALLA_SITE_BIN_DEFAULT;
  }
#endif
  return "";
}

/// One spawned skalla-site process, its scraped port, and the pipe that
/// keeps its stdout alive.
struct SiteProcess {
  pid_t pid = -1;
  int port = 0;
  int stdout_fd = -1;
};

/// Spawns `skalla-site --data dir --site index` (plus --drop-request
/// when drop >= 0) and scrapes "LISTENING port=<p>" from its stdout.
SiteProcess SpawnSite(const std::string& binary, const std::string& data_dir,
                      size_t index, int drop = -1) {
  SiteProcess process;
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return process;

  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return process;
  }
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    std::string site_arg = std::to_string(index);
    if (drop >= 0) {
      std::string drop_arg = std::to_string(drop);
      ::execl(binary.c_str(), binary.c_str(), "--data", data_dir.c_str(),
              "--site", site_arg.c_str(), "--drop-request", drop_arg.c_str(),
              static_cast<char*>(nullptr));
    } else {
      ::execl(binary.c_str(), binary.c_str(), "--data", data_dir.c_str(),
              "--site", site_arg.c_str(), static_cast<char*>(nullptr));
    }
    ::_exit(127);
  }

  ::close(pipe_fds[1]);
  FILE* out = ::fdopen(pipe_fds[0], "r");
  char line[256];
  while (out != nullptr && std::fgets(line, sizeof line, out) != nullptr) {
    int port = 0;
    if (std::sscanf(line, "LISTENING port=%d", &port) == 1) {
      process.pid = pid;
      process.port = port;
      process.stdout_fd = pipe_fds[0];
      return process;
    }
  }
  // The child exited (or garbled its announcement) before listening.
  if (out != nullptr) std::fclose(out);
  ::waitpid(pid, nullptr, 0);
  return process;
}

/// Reaps every process, escalating to SIGKILL after a grace period.
void ReapAll(std::vector<SiteProcess>* processes) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(10);
  for (SiteProcess& process : *processes) {
    if (process.pid < 0) continue;
    for (;;) {
      int status = 0;
      pid_t done = ::waitpid(process.pid, &status, WNOHANG);
      if (done == process.pid || done < 0) break;
      if (std::chrono::steady_clock::now() > deadline) {
        ::kill(process.pid, SIGKILL);
        ::waitpid(process.pid, nullptr, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    process.pid = -1;
    if (process.stdout_fd >= 0) {
      ::close(process.stdout_fd);
      process.stdout_fd = -1;
    }
  }
}

class RpcProcessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    binary_ = new std::string(SiteBinary());
    if (binary_->empty()) return;

    char dir_template[] = "/tmp/skalla_rpc_test_XXXXXX";
    char* dir = ::mkdtemp(dir_template);
    ASSERT_NE(dir, nullptr);
    data_dir_ = new std::string(dir);

    // The query_suite data sets, partitioned over four sites.
    FlowConfig flow_config;
    flow_config.num_flows = 4000;
    flow_config.num_routers = 5;
    flow_config.num_as = 30;
    TpcrConfig tpcr_config;
    tpcr_config.num_rows = 6000;
    tpcr_config.num_customers = 500;
    tpcr_config.num_clerks = 40;
    FlowConfig recent_config = flow_config;
    recent_config.seed = 99;
    recent_config.num_flows = 2500;

    warehouse_ = new DistributedWarehouse(kSites);
    warehouse_
        ->AddTablePartitionedBy(
            "flow", GenerateFlows(flow_config), "RouterId",
            {"SourceAS", "DestAS", "DestPort", "SourcePort", "NumBytes",
             "NumPackets"})
        .Check();
    warehouse_
        ->AddTablePartitionedBy(
            "tpcr", GenerateTpcr(tpcr_config), "NationKey",
            {"CustKey", "CustName", "Clerk", "MktSegment", "OrderPriority",
             "Quantity", "ExtendedPrice"})
        .Check();
    warehouse_
        ->AddTablePartitionedBy("flow_recent", GenerateFlows(recent_config),
                                "RouterId", {"SourceAS", "NumBytes"})
        .Check();
    warehouse_->Save(*data_dir_).Check();
  }

  static void TearDownTestSuite() {
    delete warehouse_;
    warehouse_ = nullptr;
    if (data_dir_ != nullptr) {
      std::error_code ec;
      std::filesystem::remove_all(*data_dir_, ec);
    }
    delete data_dir_;
    data_dir_ = nullptr;
    delete binary_;
    binary_ = nullptr;
  }

  // Spawns the whole cluster; empty vector (after reap) means failure.
  static std::vector<SiteProcess> SpawnCluster(
      const std::vector<int>& drops = {}) {
    std::vector<SiteProcess> processes;
    for (size_t i = 0; i < kSites; ++i) {
      int drop = i < drops.size() ? drops[i] : -1;
      SiteProcess process = SpawnSite(*binary_, *data_dir_, i, drop);
      processes.push_back(process);
      if (process.pid < 0) {
        ReapAll(&processes);
        processes.clear();
        break;
      }
    }
    return processes;
  }

  static std::vector<rpc::SiteEndpoint> Endpoints(
      const std::vector<SiteProcess>& processes) {
    std::vector<rpc::SiteEndpoint> endpoints;
    for (const SiteProcess& process : processes) {
      endpoints.push_back({"127.0.0.1", process.port});
    }
    return endpoints;
  }

  static std::string* binary_;
  static std::string* data_dir_;
  static DistributedWarehouse* warehouse_;
};

std::string* RpcProcessTest::binary_ = nullptr;
std::string* RpcProcessTest::data_dir_ = nullptr;
DistributedWarehouse* RpcProcessTest::warehouse_ = nullptr;

TEST_F(RpcProcessTest, FullQuerySuiteIsByteIdenticalAcrossProcesses) {
  if (binary_->empty()) {
    GTEST_SKIP() << "skalla-site binary not found (set SKALLA_SITE_BIN)";
  }
  std::vector<SiteProcess> processes = SpawnCluster();
  ASSERT_EQ(processes.size(), kSites) << "failed to spawn site processes";

  {
    rpc::RpcExecutor executor(
        std::make_unique<rpc::TcpTransport>(Endpoints(processes)),
        ExecutorOptions{});
    for (const QueryCase& q : kQueries) {
      SCOPED_TRACE(q.name);
      GmdjExpr expr = ParseQuery(q.text).ValueOrDie();
      for (const OptimizerOptions& opts :
           {OptimizerOptions::None(), OptimizerOptions::All()}) {
        SCOPED_TRACE(opts.ToString());
        DistributedPlan plan = warehouse_->Plan(expr, opts).ValueOrDie();

        ExecStats star_stats;
        Table expected =
            warehouse_->ExecutePlan(plan, &star_stats).ValueOrDie();

        ExecStats stats;
        auto result = executor.Execute(plan, &stats);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_TRUE(ExactlyEqual(*result, expected))
            << "expected:\n"
            << expected.ToString(30) << "actual:\n"
            << result->ToString(30);

        ASSERT_EQ(stats.rounds.size(), star_stats.rounds.size());
        for (size_t r = 0; r < stats.rounds.size(); ++r) {
          SCOPED_TRACE(star_stats.rounds[r].label);
          EXPECT_EQ(stats.rounds[r].bytes_to_sites,
                    star_stats.rounds[r].bytes_to_sites);
          EXPECT_EQ(stats.rounds[r].bytes_to_coord,
                    star_stats.rounds[r].bytes_to_coord);
          EXPECT_EQ(stats.rounds[r].tuples_to_sites,
                    star_stats.rounds[r].tuples_to_sites);
          EXPECT_EQ(stats.rounds[r].tuples_to_coord,
                    star_stats.rounds[r].tuples_to_coord);
          EXPECT_EQ(stats.rounds[r].sites_skipped,
                    star_stats.rounds[r].sites_skipped);
        }
      }
    }
    EXPECT_TRUE(executor.Shutdown().ok());
  }
  ReapAll(&processes);
}

TEST_F(RpcProcessTest, TraceAndProfilesSpanTheProcessBoundary) {
  // The tentpole end-to-end check: a query against real site processes
  // yields (a) RoundProfiles whose byte/row totals reconcile exactly
  // with the coordinator-observed RoundStats, and (b) — in tracing
  // builds — one merged trace where every site-origin span lives in its
  // own process lane and site.round spans are parented under the
  // coordinator rpc.round spans that issued them.
  if (binary_->empty()) {
    GTEST_SKIP() << "skalla-site binary not found (set SKALLA_SITE_BIN)";
  }
  GmdjExpr expr = ParseQuery(kQueries[1].text).ValueOrDie();
  DistributedPlan plan =
      warehouse_->Plan(expr, OptimizerOptions::None()).ValueOrDie();

  std::vector<SiteProcess> processes = SpawnCluster();
  ASSERT_EQ(processes.size(), kSites) << "failed to spawn site processes";

  const bool tracing = obs::TracingCompiledIn();
  if (tracing) {
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().set_enabled(true);
  }
  {
    rpc::RpcExecutor executor(
        std::make_unique<rpc::TcpTransport>(Endpoints(processes)),
        ExecutorOptions{});
    ExecStats stats;
    auto result = executor.Execute(plan, &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    // (a) Profile totals vs RoundStats, byte-for-byte and row-for-row.
    EXPECT_GT(stats.query_id, 0u);
    uint64_t round_wire = 0;
    for (const RoundStats& rs : stats.rounds) {
      SCOPED_TRACE(rs.label);
      round_wire += rs.wire_bytes;
      ASSERT_EQ(rs.site_profiles.size(), kSites);
      uint64_t bytes_in = 0;
      uint64_t bytes_out = 0;
      uint64_t result_rows = 0;
      for (const SiteRoundProfile& p : rs.site_profiles) {
        bytes_in += p.bytes_in;
        bytes_out += p.bytes_out;
        result_rows += p.result_rows;
      }
      EXPECT_EQ(bytes_in, rs.bytes_to_sites);
      if (rs.synchronized) {
        EXPECT_EQ(bytes_out, rs.bytes_to_coord);
        EXPECT_EQ(result_rows, rs.tuples_to_coord);
      }
      EXPECT_GT(rs.wire_bytes, rs.bytes_to_sites + rs.bytes_to_coord);
    }
    EXPECT_EQ(stats.total_wire_bytes, round_wire + stats.setup_wire_bytes);

    // (b) The merged trace crosses the process boundary.
    if (tracing) {
      std::vector<obs::TraceEvent> events = obs::Tracer::Global().Snapshot();
      std::set<uint64_t> local_ids;
      std::set<uint64_t> rpc_round_ids;
      std::set<uint32_t> pids;
      for (const obs::TraceEvent& e : events) {
        if (e.id != 0) local_ids.insert(e.id);
        pids.insert(e.pid);
        if (e.pid == 1 && e.name == "rpc.round") rpc_round_ids.insert(e.id);
      }
      EXPECT_GE(pids.size(), 1 + kSites)
          << "expected a coordinator lane plus one lane per site";
      ASSERT_FALSE(rpc_round_ids.empty());
      size_t site_rounds = 0;
      for (const obs::TraceEvent& e : events) {
        if (e.pid == 1) continue;
        // No unparented remote spans: every import either grafts to the
        // issuing rpc.round or hangs off another imported span.
        ASSERT_NE(e.parent_id, 0u) << e.name;
        EXPECT_TRUE(local_ids.count(e.parent_id) > 0) << e.name;
        if (e.name.rfind("site.round:", 0) == 0) {
          ++site_rounds;
          EXPECT_TRUE(rpc_round_ids.count(e.parent_id) > 0)
              << e.name << " not parented under a coordinator rpc.round";
        }
      }
      // One site.round per site per round (base + two GMDJ stages).
      EXPECT_EQ(site_rounds, kSites * stats.rounds.size());
    }
    EXPECT_TRUE(executor.Shutdown().ok());
  }
  if (tracing) {
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().set_enabled(false);
  }
  ReapAll(&processes);
}

TEST_F(RpcProcessTest, MidRoundDropIsSurvivedAcrossProcesses) {
  if (binary_->empty()) {
    GTEST_SKIP() << "skalla-site binary not found (set SKALLA_SITE_BIN)";
  }
  GmdjExpr expr = ParseQuery(kQueries[1].text).ValueOrDie();
  DistributedPlan plan =
      warehouse_->Plan(expr, OptimizerOptions::None()).ValueOrDie();
  Table expected = warehouse_->ExecutePlan(plan, nullptr).ValueOrDie();

  // Site 2 hangs up instead of answering its 4th request — the first
  // GMDJ round, after catalog probe, begin-plan, and base round.
  std::vector<int> drops(kSites, -1);
  drops[2] = 3;
  std::vector<SiteProcess> processes = SpawnCluster(drops);
  ASSERT_EQ(processes.size(), kSites) << "failed to spawn site processes";

  {
    ExecutorOptions options;
    options.max_site_retries = 2;
    rpc::RpcExecutor executor(
        std::make_unique<rpc::TcpTransport>(Endpoints(processes)), options);
    ExecStats stats;
    auto result = executor.Execute(plan, &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(ExactlyEqual(*result, expected));
    size_t total_retries = 0;
    for (const RoundStats& r : stats.rounds) {
      total_retries += r.site_retries;
    }
    EXPECT_EQ(total_retries, 1u);
    EXPECT_TRUE(executor.Shutdown().ok());
  }
  ReapAll(&processes);
}

}  // namespace
}  // namespace skalla
