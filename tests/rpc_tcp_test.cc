// The TCP transport against real loopback sockets: in-process SiteServer
// threads serve SiteServices, the RpcExecutor dials them, and the
// results (and table-payload byte accounting) must match the
// DistributedExecutor exactly. Also covers the recovery story — an
// injected mid-round connection drop survived via reconnect + retry —
// and the typed rejection of foreign protocol versions.

#include "rpc/tcp.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "dist/exec.h"
#include "dist/fault.h"
#include "dist/warehouse.h"
#include "expr/builder.h"
#include "rpc/plan_serde.h"
#include "rpc/rpc_executor.h"
#include "rpc/server.h"
#include "rpc/site_service.h"
#include "storage/partition.h"
#include "types/row.h"

namespace skalla {
namespace rpc {
namespace {

constexpr size_t kSites = 4;

Table MakeFlow(size_t rows) {
  Random rng(67);
  SchemaPtr schema = Schema::Make({{"SAS", ValueType::kInt64},
                                   {"NB", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendUnchecked(
        {Value(rng.UniformInt(0, 11)), Value(rng.UniformInt(1, 300))});
  }
  return t;
}

GmdjExpr SimpleQuery() {
  GmdjExpr expr;
  expr.base = BaseQuery{"flow", {"SAS"}, true, nullptr};
  GmdjOp md1;
  md1.detail_table = "flow";
  md1.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c"}, {AggKind::kAvg, "NB", "a"}},
      Eq(RCol("SAS"), BCol("SAS"))});
  GmdjOp md2;
  md2.detail_table = "flow";
  md2.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "c2"}},
      And(Eq(RCol("SAS"), BCol("SAS")), Ge(RCol("NB"), BCol("a")))});
  expr.ops = {md1, md2};
  return expr;
}

std::vector<Site> MakeSites(const std::vector<Table>& parts) {
  std::vector<Site> sites;
  for (size_t i = 0; i < parts.size(); ++i) {
    Catalog catalog;
    catalog.Register("flow", parts[i]);
    sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  return sites;
}

bool ExactlyEqual(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    if (!RowEquals(a.row(r), b.row(r))) return false;
  }
  return true;
}

/// N site servers on loopback, each in its own thread.
class Cluster {
 public:
  explicit Cluster(std::vector<Site> sites,
                   std::vector<int> drop_request_index = {}) {
    for (size_t i = 0; i < sites.size(); ++i) {
      services_.push_back(
          std::make_unique<SiteService>(std::move(sites[i])));
      SiteServerOptions options;
      options.accept_timeout_s = 0.05;
      options.io_timeout_s = 5.0;
      if (i < drop_request_index.size()) {
        options.drop_request_index = drop_request_index[i];
      }
      servers_.push_back(
          std::make_unique<SiteServer>(services_.back().get(), options));
      servers_.back()->Start().Check();
      serve_status_.push_back(Status::OK());
      threads_.emplace_back([this, i] {
        serve_status_[i] = servers_[i]->Serve();
      });
    }
  }

  ~Cluster() { Stop(); }

  void Stop() {
    for (auto& server : servers_) server->Stop();
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  std::vector<SiteEndpoint> endpoints() const {
    std::vector<SiteEndpoint> out;
    for (const auto& server : servers_) {
      out.push_back({"127.0.0.1", server->port()});
    }
    return out;
  }

  const Status& serve_status(size_t i) const { return serve_status_[i]; }

 private:
  std::vector<std::unique_ptr<SiteService>> services_;
  std::vector<std::unique_ptr<SiteServer>> servers_;
  std::vector<Status> serve_status_;
  std::vector<std::thread> threads_;
};

TcpOptions FastTcpOptions() {
  TcpOptions options;
  options.connect_timeout_s = 5.0;
  options.io_timeout_s = 5.0;
  options.backoff_initial_s = 0.005;
  options.backoff_max_s = 0.05;  // dead-endpoint tests probe repeatedly
  return options;
}

TEST(RpcTcpTest, MatchesDistributedExecutorOverLoopback) {
  Table flow = MakeFlow(500);
  std::vector<Table> parts = PartitionByValue(flow, "SAS", kSites)
                                 .ValueOrDie();
  DistributedWarehouse dw(kSites);
  {
    std::vector<Table> copy = parts;
    dw.AddPartitionedTable("flow", std::move(copy), {"SAS", "NB"}).Check();
  }

  for (const OptimizerOptions& opts :
       {OptimizerOptions::None(), OptimizerOptions::All()}) {
    SCOPED_TRACE(opts.ToString());
    DistributedPlan plan = dw.Plan(SimpleQuery(), opts).ValueOrDie();

    DistributedExecutor star(MakeSites(parts), NetworkConfig{}, {});
    ExecStats star_stats;
    Table expected = star.Execute(plan, &star_stats).ValueOrDie();

    Cluster cluster(MakeSites(parts));
    RpcExecutor executor(
        std::make_unique<TcpTransport>(cluster.endpoints(),
                                       FastTcpOptions()),
        ExecutorOptions{});
    ExecStats stats;
    auto result = executor.Execute(plan, &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(ExactlyEqual(*result, expected));
    EXPECT_EQ(stats.TotalBytesToSites(), star_stats.TotalBytesToSites());
    EXPECT_EQ(stats.TotalBytesToCoord(), star_stats.TotalBytesToCoord());
    EXPECT_EQ(stats.TotalTuplesTransferred(),
              star_stats.TotalTuplesTransferred());
    // Real sockets moved more than the accounted table payloads.
    EXPECT_GT(executor.wire_bytes(), stats.TotalBytes());
  }
}

TEST(RpcTcpTest, MidRoundConnectionDropRecoversViaRetry) {
  Table flow = MakeFlow(400);
  std::vector<Table> parts = PartitionByValue(flow, "SAS", kSites)
                                 .ValueOrDie();
  DistributedWarehouse dw(kSites);
  {
    std::vector<Table> copy = parts;
    dw.AddPartitionedTable("flow", std::move(copy), {"SAS", "NB"}).Check();
  }
  DistributedPlan plan =
      dw.Plan(SimpleQuery(), OptimizerOptions::None()).ValueOrDie();
  DistributedExecutor star(MakeSites(parts), NetworkConfig{}, {});
  Table expected = star.Execute(plan, nullptr).ValueOrDie();

  // Site 1 hangs up instead of answering its 4th request — the first
  // GMDJ round (after catalog probe, begin-plan, and base round). The
  // coordinator must reconnect and retry without changing the result.
  std::vector<int> drops(kSites, -1);
  drops[1] = 3;
  Cluster cluster(MakeSites(parts), drops);

  ExecutorOptions options;
  options.max_site_retries = 2;
  RpcExecutor executor(
      std::make_unique<TcpTransport>(cluster.endpoints(), FastTcpOptions()),
      options);
  ExecStats stats;
  auto result = executor.Execute(plan, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ExactlyEqual(*result, expected));
  size_t total_retries = 0;
  for (const RoundStats& r : stats.rounds) total_retries += r.site_retries;
  EXPECT_EQ(total_retries, 1u);
}

TEST(RpcTcpTest, DropWithoutRetriesSurfacesTheFailure) {
  Table flow = MakeFlow(200);
  std::vector<Table> parts = PartitionByValue(flow, "SAS", kSites)
                                 .ValueOrDie();
  DistributedWarehouse dw(kSites);
  {
    std::vector<Table> copy = parts;
    dw.AddPartitionedTable("flow", std::move(copy), {"SAS", "NB"}).Check();
  }
  DistributedPlan plan =
      dw.Plan(SimpleQuery(), OptimizerOptions::None()).ValueOrDie();

  std::vector<int> drops(kSites, -1);
  drops[2] = 3;
  Cluster cluster(MakeSites(parts), drops);
  RpcExecutor executor(
      std::make_unique<TcpTransport>(cluster.endpoints(), FastTcpOptions()),
      ExecutorOptions{});  // max_site_retries = 0
  auto result = executor.Execute(plan, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError()) << result.status().ToString();
}

TEST(RpcTcpTest, ForeignVersionFrameGetsTypedRejection) {
  Table flow = MakeFlow(50);
  std::vector<Table> parts = PartitionByValue(flow, "SAS", 1).ValueOrDie();
  Cluster cluster(MakeSites(parts));
  int port = cluster.endpoints()[0].port;

  TcpSocket socket =
      TcpSocket::ConnectTo("127.0.0.1", port, 5.0).ValueOrDie();
  std::vector<uint8_t> wire = EncodeFrame(MessageType::kCatalogRequest, {});
  wire[4] = kProtocolVersion + 1;  // a future coordinator
  ASSERT_TRUE(socket.SendAll(wire.data(), wire.size(), 5.0).ok());

  Result<Frame> response = RecvFrame(&socket, 5.0, nullptr);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->type, MessageType::kError);
  Status rejection = ReadStatusPayload(response->payload);
  EXPECT_TRUE(rejection.IsVersionMismatch()) << rejection.ToString();
}

// A port that was bound a moment ago but has no listener now: connects
// are refused immediately, modelling a site that is down before the
// query starts.
int DeadPort() {
  TcpListener listener = TcpListener::Bind("127.0.0.1", 0).ValueOrDie();
  int port = listener.port();
  listener.Close();
  return port;
}

TEST(RpcTcpTest, DeadPrimaryEndpointFailsOverToReplica) {
  Table flow = MakeFlow(400);
  std::vector<Table> parts = PartitionByValue(flow, "SAS", kSites)
                                 .ValueOrDie();
  DistributedWarehouse dw(kSites);
  {
    std::vector<Table> copy = parts;
    dw.AddPartitionedTable("flow", std::move(copy), {"SAS", "NB"}).Check();
  }
  DistributedPlan plan =
      dw.Plan(SimpleQuery(), OptimizerOptions::None()).ValueOrDie();
  DistributedExecutor star(MakeSites(parts), NetworkConfig{}, {});
  Table expected = star.Execute(plan, nullptr).ValueOrDie();

  // Live servers for sites 0, 1, 3, and a replica of partition 2 under
  // site id 4. Endpoint 2 points at a closed port: the primary for
  // partition 2 is down before the coordinator ever dials it, so the
  // catalog probe and BeginPlan there fail and every round must fail
  // over to endpoint 4.
  std::vector<Site> sites;
  for (int id : {0, 1, 3, 4}) {
    Catalog catalog;
    catalog.Register("flow", parts[id == 4 ? 2 : id]);
    sites.emplace_back(id, std::move(catalog));
  }
  Cluster cluster(std::move(sites));
  std::vector<SiteEndpoint> live = cluster.endpoints();
  std::vector<SiteEndpoint> endpoints = {
      live[0], live[1], {"127.0.0.1", DeadPort()}, live[2], live[3]};

  ExecutorOptions options;
  options.max_site_retries = 1;
  RpcExecutor executor(
      std::make_unique<TcpTransport>(std::move(endpoints), FastTcpOptions()),
      options);
  executor.AddReplica(2, 4);
  ASSERT_EQ(executor.num_sites(), kSites);
  ExecStats stats;
  auto result = executor.Execute(plan, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ExactlyEqual(*result, expected));
  EXPECT_GT(stats.TotalSiteFailovers(), 0u);
  EXPECT_TRUE(stats.complete());
}

TEST(RpcTcpTest, DeadUnreplicatedEndpointDegradesWhenAllowed) {
  Table flow = MakeFlow(400);
  std::vector<Table> parts = PartitionByValue(flow, "SAS", kSites)
                                 .ValueOrDie();
  DistributedWarehouse dw(kSites);
  {
    std::vector<Table> copy = parts;
    dw.AddPartitionedTable("flow", std::move(copy), {"SAS", "NB"}).Check();
  }
  DistributedPlan plan =
      dw.Plan(SimpleQuery(), OptimizerOptions::None()).ValueOrDie();

  // The degraded ground truth: the star engine losing site 2 the same
  // way (permanently, no replica) under kDegrade.
  PermanentSiteFailure down(2);
  ExecutorOptions degrade;
  degrade.fault_injector = &down;
  degrade.on_site_loss = OnSiteLoss::kDegrade;
  DistributedExecutor star(MakeSites(parts), NetworkConfig{}, degrade);
  ExecStats star_stats;
  Table expected = star.Execute(plan, &star_stats).ValueOrDie();
  ASSERT_EQ(star_stats.lost_sites, (std::vector<int>{2}));

  std::vector<Site> sites;
  for (int id : {0, 1, 3}) {
    Catalog catalog;
    catalog.Register("flow", parts[id]);
    sites.emplace_back(id, std::move(catalog));
  }
  Cluster cluster(std::move(sites));
  std::vector<SiteEndpoint> live = cluster.endpoints();
  std::vector<SiteEndpoint> endpoints = {
      live[0], live[1], {"127.0.0.1", DeadPort()}, live[2]};

  ExecutorOptions options;
  options.on_site_loss = OnSiteLoss::kDegrade;
  RpcExecutor executor(
      std::make_unique<TcpTransport>(std::move(endpoints), FastTcpOptions()),
      options);
  ExecStats stats;
  auto result = executor.Execute(plan, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ExactlyEqual(*result, expected));
  EXPECT_EQ(stats.lost_sites, (std::vector<int>{2}));
  EXPECT_FALSE(stats.complete());
}

TEST(RpcTcpTest, ShutdownStopsTheServers) {
  Table flow = MakeFlow(100);
  std::vector<Table> parts = PartitionByValue(flow, "SAS", 2).ValueOrDie();
  Cluster cluster(MakeSites(parts));
  RpcExecutor executor(
      std::make_unique<TcpTransport>(cluster.endpoints(), FastTcpOptions()),
      ExecutorOptions{});
  ASSERT_TRUE(executor.Shutdown().ok());
  // Serve loops exit on their own — Stop() here only joins.
  cluster.Stop();
  EXPECT_TRUE(cluster.serve_status(0).ok());
  EXPECT_TRUE(cluster.serve_status(1).ok());
}

}  // namespace
}  // namespace rpc
}  // namespace skalla
