#include <gtest/gtest.h>

#include "types/row.h"
#include "types/schema.h"

namespace skalla {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make({{"a", ValueType::kInt64},
                       {"b", ValueType::kString},
                       {"c", ValueType::kFloat64}})
      .ValueOrDie();
}

TEST(SchemaTest, BasicLookup) {
  SchemaPtr s = TestSchema();
  EXPECT_EQ(s->num_fields(), 3u);
  EXPECT_EQ(s->IndexOf("a"), 0);
  EXPECT_EQ(s->IndexOf("c"), 2);
  EXPECT_EQ(s->IndexOf("missing"), -1);
  EXPECT_TRUE(s->Contains("b"));
  EXPECT_FALSE(s->Contains("B"));  // Case sensitive.
}

TEST(SchemaTest, RequireIndexError) {
  SchemaPtr s = TestSchema();
  auto r = s->RequireIndex("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_NE(r.status().message().find("nope"), std::string::npos);
}

TEST(SchemaTest, DuplicateNamesRejected) {
  auto r = Schema::Make({{"x", ValueType::kInt64}, {"x", ValueType::kInt64}});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SchemaTest, AddFieldRejectsDuplicates) {
  SchemaPtr s = TestSchema();
  auto ok = s->AddField({"d", ValueType::kInt64});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->num_fields(), 4u);
  auto bad = s->AddField({"a", ValueType::kInt64});
  EXPECT_TRUE(bad.status().IsAlreadyExists());
}

TEST(SchemaTest, Project) {
  SchemaPtr s = TestSchema();
  SchemaPtr p = s->Project({2, 0});
  ASSERT_EQ(p->num_fields(), 2u);
  EXPECT_EQ(p->field(0).name, "c");
  EXPECT_EQ(p->field(1).name, "a");
}

TEST(RowTest, KeyHashAndEquality) {
  Row r1 = {Value(1), Value("x"), Value(2.0)};
  Row r2 = {Value(9), Value("x"), Value(2)};
  // Keys on columns {1,2} agree (cross-type numeric equality).
  EXPECT_TRUE(RowKeyEquals(r1, {1, 2}, r2, {1, 2}));
  EXPECT_EQ(HashRowKey(r1, {1, 2}), HashRowKey(r2, {1, 2}));
  EXPECT_FALSE(RowKeyEquals(r1, {0}, r2, {0}));
}

TEST(RowTest, KeyEqualityAcrossDifferentPositions) {
  Row a = {Value(5), Value("k")};
  Row b = {Value("k"), Value(5)};
  EXPECT_TRUE(RowKeyEquals(a, {0, 1}, b, {1, 0}));
}

TEST(RowTest, CompareRowKeyLexicographic) {
  Row a = {Value(1), Value(5)};
  Row b = {Value(1), Value(7)};
  EXPECT_LT(CompareRowKey(a, b, {0, 1}), 0);
  EXPECT_EQ(CompareRowKey(a, b, {0}), 0);
  EXPECT_GT(CompareRowKey(b, a, {1}), 0);
}

TEST(RowTest, ProjectRow) {
  Row r = {Value(1), Value(2), Value(3)};
  Row p = ProjectRow(r, {2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].int64(), 3);
  EXPECT_EQ(p[1].int64(), 1);
}

}  // namespace
}  // namespace skalla
