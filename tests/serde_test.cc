// Serialization round-trips, exact size accounting, and corrupted-input
// handling.

#include "net/serde.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/tpcr_gen.h"

namespace skalla {
namespace {

Table SampleTable() {
  SchemaPtr schema = Schema::Make({{"id", ValueType::kInt64},
                                   {"name", ValueType::kString},
                                   {"score", ValueType::kFloat64}})
                         .ValueOrDie();
  Table t(schema);
  t.Append({Value(1), Value("alpha"), Value(1.5)}).Check();
  t.Append({Value(-42), Value(""), Value::Null()}).Check();
  t.Append({Value::Null(), Value("beta"), Value(-0.25)}).Check();
  return t;
}

TEST(SerdeTest, ZigzagRoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{1} << 40,
                    -(int64_t{1} << 40), INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
  // Zigzag keeps small magnitudes small.
  EXPECT_LT(ZigzagEncode(-1), 2u);
  EXPECT_LT(ZigzagEncode(1), 3u);
}

TEST(SerdeTest, TableRoundTrip) {
  Table original = SampleTable();
  std::vector<uint8_t> buffer;
  WriteTable(original, &buffer);
  Table decoded = ReadTable(buffer.data(), buffer.size()).ValueOrDie();
  EXPECT_TRUE(decoded.SameRows(original));
  EXPECT_TRUE(decoded.schema()->Equals(*original.schema()));
}

TEST(SerdeTest, EmptyTableRoundTrip) {
  Table empty(SampleTable().schema());
  std::vector<uint8_t> buffer;
  WriteTable(empty, &buffer);
  Table decoded = ReadTable(buffer.data(), buffer.size()).ValueOrDie();
  EXPECT_EQ(decoded.num_rows(), 0u);
  EXPECT_EQ(decoded.num_columns(), 3u);
}

TEST(SerdeTest, SerializedTableSizeIsExact) {
  Table t = SampleTable();
  std::vector<uint8_t> buffer;
  WriteTable(t, &buffer);
  EXPECT_EQ(SerializedTableSize(t), buffer.size());

  TpcrConfig config;
  config.num_rows = 500;
  Table tpcr = GenerateTpcr(config);
  buffer.clear();
  WriteTable(tpcr, &buffer);
  EXPECT_EQ(SerializedTableSize(tpcr), buffer.size());
}

TEST(SerdeTest, TruncatedBufferFails) {
  Table t = SampleTable();
  std::vector<uint8_t> buffer;
  WriteTable(t, &buffer);
  for (size_t cut : {buffer.size() - 1, buffer.size() / 2, size_t{1},
                     size_t{0}}) {
    auto decoded = ReadTable(buffer.data(), cut);
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_TRUE(decoded.status().IsIOError()) << "cut=" << cut;
  }
}

TEST(SerdeTest, TrailingGarbageFails) {
  Table t = SampleTable();
  std::vector<uint8_t> buffer;
  WriteTable(t, &buffer);
  buffer.push_back(0x00);
  auto decoded = ReadTable(buffer.data(), buffer.size());
  EXPECT_FALSE(decoded.ok());
}

TEST(SerdeTest, BadTypeTagFails) {
  Table t = SampleTable();
  std::vector<uint8_t> buffer;
  WriteTable(t, &buffer);
  // Find the first cell type tag after the header and corrupt it. The
  // header is: nfields varint, then per field name-len + name + type. We
  // instead corrupt every byte in turn and require "no crash, and either
  // failure or a decode" — a light fuzz.
  int failures = 0;
  for (size_t i = 0; i < buffer.size(); ++i) {
    std::vector<uint8_t> corrupted = buffer;
    corrupted[i] = 0xff;
    auto decoded = ReadTable(corrupted.data(), corrupted.size());
    if (!decoded.ok()) ++failures;
  }
  EXPECT_GT(failures, 0);
}

TEST(SerdeTest, RandomTablesRoundTrip) {
  Random rng(99);
  for (int iter = 0; iter < 10; ++iter) {
    size_t cols = 1 + rng.Uniform(5);
    std::vector<Field> fields;
    for (size_t c = 0; c < cols; ++c) {
      ValueType t = static_cast<ValueType>(1 + rng.Uniform(3));
      fields.push_back(Field{std::string(1, static_cast<char>('a' + c)), t});
    }
    Table table(Schema::Make(std::move(fields)).ValueOrDie());
    size_t rows = rng.Uniform(60);
    for (size_t r = 0; r < rows; ++r) {
      Row row;
      for (size_t c = 0; c < cols; ++c) {
        if (rng.Bernoulli(0.15)) {
          row.push_back(Value::Null());
          continue;
        }
        switch (table.schema()->field(c).type) {
          case ValueType::kInt64:
            row.push_back(Value(static_cast<int64_t>(rng.Next())));
            break;
          case ValueType::kFloat64:
            row.push_back(Value(rng.NextDouble() * 1e6 - 5e5));
            break;
          default:
            row.push_back(Value(rng.NextString(rng.Uniform(20))));
            break;
        }
      }
      table.AppendUnchecked(std::move(row));
    }
    std::vector<uint8_t> buffer;
    WriteTable(table, &buffer);
    EXPECT_EQ(buffer.size(), SerializedTableSize(table));
    Table decoded = ReadTable(buffer.data(), buffer.size()).ValueOrDie();
    // NB: SameRows treats INT64/FLOAT64 holding the same value as equal,
    // which is fine — serialization preserves the exact representation,
    // checked via schema equality.
    EXPECT_TRUE(decoded.SameRows(table));
    EXPECT_TRUE(decoded.schema()->Equals(*table.schema()));
  }
}

}  // namespace
}  // namespace skalla
