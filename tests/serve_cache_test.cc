// SubAggregateCache correctness through the serving layer: a repeated
// query is answered from the cache byte-identically with zero
// evaluation rounds (and says so in EXPLAIN ANALYZE); bumping the
// partition epoch invalidates; per-query opt-out works; fingerprints
// distinguish distinct plans and match re-built identical ones.

#include "serve/cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "dist/warehouse.h"
#include "net/serde.h"
#include "obs/stats_report.h"
#include "serve/session.h"
#include "sql/parser.h"
#include "storage/partition.h"
#include "types/row.h"

namespace skalla {
namespace {

constexpr size_t kSites = 4;

Table MakeData() {
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"v", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (int i = 0; i < 800; ++i) {
    t.AppendUnchecked({Value(int64_t{i % 16}), Value(int64_t{i * 7 % 501})});
  }
  return t;
}

GmdjExpr Query() {
  return ParseQuery(R"(
    BASE SELECT DISTINCT g FROM d;
    MD USING d COMPUTE COUNT(*) AS c, SUM(v) AS s WHERE r.g = b.g;
    MD USING d COMPUTE COUNT(*) AS c2
       WHERE r.g = b.g AND r.v >= b.s / b.c;
  )").ValueOrDie();
}

std::vector<uint8_t> TableBytes(const Table& t) {
  std::vector<uint8_t> bytes;
  WriteTable(t, &bytes);
  return bytes;
}

class ServeCacheTest : public ::testing::Test {
 protected:
  ServeCacheTest() : dw_(kSites) {
    std::vector<Table> parts =
        PartitionByValue(MakeData(), "g", kSites).ValueOrDie();
    dw_.AddPartitionedTable("d", std::move(parts), {"g", "v"}).Check();
  }

  serve::QueryResult Run(serve::QuerySession& session,
                         serve::QueryOptions options = {}) {
    auto submission = session.Submit(Query(), options);
    EXPECT_TRUE(submission.ok()) << submission.status().ToString();
    auto answer = submission->result.get();
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    return std::move(*answer);
  }

  DistributedWarehouse dw_;
};

TEST_F(ServeCacheTest, RepeatHitsAndIsByteIdentical) {
  auto session = serve::QuerySession::Open(&dw_).ValueOrDie();

  serve::QueryResult first = Run(session);
  EXPECT_FALSE(first.stats.from_cache);
  EXPECT_FALSE(first.stats.rounds.empty());

  serve::QueryResult second = Run(session);
  EXPECT_TRUE(second.stats.from_cache);
  EXPECT_TRUE(second.stats.rounds.empty());  // zero evaluation rounds
  EXPECT_EQ(second.stats.TotalBytes(), 0u);
  EXPECT_EQ(TableBytes(second.table), TableBytes(first.table));

  const serve::CacheStats stats = session.scheduler().cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
}

TEST_F(ServeCacheTest, ExplainAnalyzeShowsTheHit) {
  auto session = serve::QuerySession::Open(&dw_).ValueOrDie();
  Run(session);
  serve::QueryResult hit = Run(session);
  ASSERT_TRUE(hit.stats.from_cache);

  DistributedPlan plan = session.Plan(Query()).ValueOrDie();
  const std::string report =
      obs::FormatStatsReport(plan, hit.stats, kSites);
  EXPECT_NE(report.find("cache: HIT"), std::string::npos) << report;
  EXPECT_NE(report.find("0 evaluation rounds"), std::string::npos) << report;
}

TEST_F(ServeCacheTest, EpochBumpInvalidates) {
  auto session = serve::QuerySession::Open(&dw_).ValueOrDie();
  serve::QueryResult first = Run(session);
  session.InvalidateCachedResults();

  // The stale entry is gone: the repeat evaluates again...
  serve::QueryResult after = Run(session);
  EXPECT_FALSE(after.stats.from_cache);
  EXPECT_FALSE(after.stats.rounds.empty());
  EXPECT_EQ(TableBytes(after.table), TableBytes(first.table));

  // ...and re-fills the cache under the new epoch.
  serve::QueryResult hit = Run(session);
  EXPECT_TRUE(hit.stats.from_cache);
  EXPECT_EQ(session.scheduler().cache().stats().entries, 1u);
}

TEST_F(ServeCacheTest, StorageDataEpochInvalidatesWithoutExplicitBump) {
  auto session = serve::QuerySession::Open(&dw_).ValueOrDie();
  serve::QueryResult first = Run(session);
  EXPECT_FALSE(first.stats.from_cache);
  const uint64_t epoch_before = session.scheduler().partition_epoch();

  // Replacing the table's storage bumps the warehouse data epoch;
  // QuerySession::Open wired it into the scheduler's partition epoch,
  // so the stale entry stops being served with no explicit
  // InvalidateCachedResults call.
  std::vector<Table> parts =
      PartitionByValue(MakeData(), "g", kSites).ValueOrDie();
  dw_.AddPartitionedTable("d", std::move(parts), {"g", "v"}).Check();
  EXPECT_EQ(dw_.data_epoch(), 1u);
  EXPECT_EQ(session.scheduler().partition_epoch(), epoch_before + 1);

  serve::QueryResult after = Run(session);
  EXPECT_FALSE(after.stats.from_cache);
  EXPECT_FALSE(after.stats.rounds.empty());

  // The refill lands under the new epoch and serves again.
  serve::QueryResult hit = Run(session);
  EXPECT_TRUE(hit.stats.from_cache);
}

TEST_F(ServeCacheTest, PerQueryOptOutSkipsLookupAndFill) {
  auto session = serve::QuerySession::Open(&dw_).ValueOrDie();
  serve::QueryOptions no_cache;
  no_cache.use_cache = false;
  EXPECT_FALSE(Run(session, no_cache).stats.from_cache);
  EXPECT_FALSE(Run(session, no_cache).stats.from_cache);
  const serve::CacheStats stats = session.scheduler().cache().stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.insertions, 0u);
}

TEST_F(ServeCacheTest, ZeroCapacityDisablesCaching) {
  serve::SessionOptions options;
  options.scheduler.cache_max_bytes = 0;
  auto session = serve::QuerySession::Open(&dw_, options).ValueOrDie();
  EXPECT_FALSE(Run(session).stats.from_cache);
  EXPECT_FALSE(Run(session).stats.from_cache);
  EXPECT_EQ(session.scheduler().cache().stats().entries, 0u);
}

TEST(PlanFingerprintTest, DistinguishesPlansAndIsStable) {
  DistributedWarehouse dw(kSites);
  std::vector<Table> parts =
      PartitionByValue(MakeData(), "g", kSites).ValueOrDie();
  dw.AddPartitionedTable("d", std::move(parts), {"g", "v"}).Check();

  DistributedPlan a1 = dw.Plan(Query(), OptimizerOptions::All()).ValueOrDie();
  DistributedPlan a2 = dw.Plan(Query(), OptimizerOptions::All()).ValueOrDie();
  DistributedPlan b = dw.Plan(Query(), OptimizerOptions::None()).ValueOrDie();

  EXPECT_EQ(serve::PlanFingerprint(a1), serve::PlanFingerprint(a2));
  if (b.stages.size() != a1.stages.size() || b.sync_base != a1.sync_base) {
    EXPECT_NE(serve::PlanFingerprint(a1), serve::PlanFingerprint(b));
  }

  // The fingerprint covers stage structure: drop a stage, it changes.
  DistributedPlan truncated = a1;
  truncated.stages.pop_back();
  EXPECT_NE(serve::PlanFingerprint(a1), serve::PlanFingerprint(truncated));
}

TEST(SubAggregateCacheTest, LruEvictsByBytesAndEpochEvictsByAge) {
  SchemaPtr schema = Schema::Make({{"k", ValueType::kInt64}}).ValueOrDie();
  Table small(schema);
  for (int i = 0; i < 8; ++i) small.AppendUnchecked({Value(int64_t{i})});
  const uint64_t entry_bytes = SerializedTableSize(small);

  serve::SubAggregateCache cache(entry_bytes * 2 + 8);
  cache.Insert(1, 1, small);
  cache.Insert(2, 1, small);
  EXPECT_TRUE(cache.Lookup(1, 1).has_value());  // 1 is now most-recent
  cache.Insert(3, 1, small);                    // evicts 2 (LRU)
  EXPECT_FALSE(cache.Lookup(2, 1).has_value());
  EXPECT_TRUE(cache.Lookup(1, 1).has_value());
  EXPECT_TRUE(cache.Lookup(3, 1).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);

  // Epoch mismatch is a miss even for a resident fingerprint.
  EXPECT_FALSE(cache.Lookup(1, 2).has_value());
  cache.EvictBefore(2);
  EXPECT_EQ(cache.stats().entries, 0u);
}

}  // namespace
}  // namespace skalla
