// QueryScheduler determinism: the same batch of queries submitted
// through a QuerySession at admission width 1 (strictly sequential) and
// width 8 (everything in flight at once, sites shared) must resolve to
// byte-identical per-query results, for every engine — star, async,
// tree, and rpc over real loopback sockets. Also covers admission
// bookkeeping, cancellation, and queue-expired deadlines.

#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "dist/async_exec.h"
#include "dist/tree.h"
#include "dist/warehouse.h"
#include "net/serde.h"
#include "rpc/rpc_executor.h"
#include "rpc/server.h"
#include "rpc/site_service.h"
#include "rpc/tcp.h"
#include "serve/session.h"
#include "sql/parser.h"
#include "storage/partition.h"

namespace skalla {
namespace {

constexpr size_t kSites = 4;

Table MakeData() {
  Random rng(131);
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"h", ValueType::kInt64},
                                   {"v", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (int i = 0; i < 1200; ++i) {
    t.AppendUnchecked({Value(rng.UniformInt(0, 23)),
                       Value(rng.UniformInt(0, 5)),
                       Value(rng.UniformInt(0, 999))});
  }
  return t;
}

std::vector<Site> MakeSites(const std::vector<Table>& parts) {
  std::vector<Site> sites;
  for (size_t i = 0; i < parts.size(); ++i) {
    Catalog catalog;
    catalog.Register("d", parts[i]);
    sites.emplace_back(static_cast<int>(i), std::move(catalog));
  }
  return sites;
}

std::vector<uint8_t> TableBytes(Table t) {
  t.SortRows();  // canonical order: async merges in arrival order
  std::vector<uint8_t> bytes;
  WriteTable(t, &bytes);
  return bytes;
}

// The submitted batch: four distinct plans, each submitted twice.
std::vector<DistributedPlan> PlanBatch(const DistributedWarehouse& dw) {
  GmdjExpr two_stage = ParseQuery(R"(
    BASE SELECT DISTINCT g FROM d;
    MD USING d COMPUTE COUNT(*) AS c1, MAX(v) AS m1 WHERE r.g = b.g;
    MD USING d COMPUTE COUNT(*) AS c2
       WHERE r.g = b.g AND r.v * 2 >= b.m1;
  )").ValueOrDie();
  GmdjExpr one_stage = ParseQuery(R"(
    BASE SELECT DISTINCT h FROM d;
    MD USING d COMPUTE COUNT(*) AS c, SUM(v) AS s WHERE r.h = b.h;
  )").ValueOrDie();

  std::vector<DistributedPlan> plans;
  for (const GmdjExpr& query : {two_stage, one_stage}) {
    for (const OptimizerOptions& opts :
         {OptimizerOptions::None(), OptimizerOptions::All()}) {
      plans.push_back(dw.Plan(query, opts).ValueOrDie());
    }
  }
  std::vector<DistributedPlan> batch = plans;
  batch.insert(batch.end(), plans.begin(), plans.end());
  return batch;
}

// Runs the batch through a session wrapping `executor` at the given
// admission width and returns each query's serialized result. Caching
// is off: every submission must actually evaluate.
std::vector<std::vector<uint8_t>> RunBatch(
    std::unique_ptr<Executor> executor,
    const std::vector<DistributedPlan>& batch, size_t width) {
  serve::SessionOptions options;
  options.scheduler.max_concurrent_queries = width;
  options.scheduler.cache_max_bytes = 0;
  serve::QuerySession session =
      serve::QuerySession::Wrap(std::move(executor), options);

  std::vector<serve::QueryScheduler::Submission> submissions;
  for (const DistributedPlan& plan : batch) {
    submissions.push_back(session.SubmitPlan(plan));
  }
  std::vector<std::vector<uint8_t>> results;
  for (auto& submission : submissions) {
    auto answer = submission.result.get();
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    if (!answer.ok()) {
      results.emplace_back();
      continue;
    }
    EXPECT_FALSE(answer->stats.from_cache);
    EXPECT_FALSE(answer->stats.rounds.empty());
    results.push_back(TableBytes(std::move(answer->table)));
  }
  return results;
}

struct EngineCase {
  const char* name;
  std::function<std::unique_ptr<Executor>(const std::vector<Table>&)> make;
};

TEST(ServeSchedulerTest, ConcurrencyIsByteInvariantAcrossEngines) {
  Table data = MakeData();
  std::vector<Table> parts = PartitionByValue(data, "g", kSites).ValueOrDie();
  DistributedWarehouse dw(kSites);
  {
    std::vector<Table> copy = parts;
    dw.AddPartitionedTable("d", std::move(copy), {"g", "h", "v"}).Check();
  }
  const std::vector<DistributedPlan> batch = PlanBatch(dw);

  // Loopback cluster for the rpc engine; every RunBatch dials it anew.
  std::vector<std::unique_ptr<rpc::SiteService>> services;
  std::vector<std::unique_ptr<rpc::SiteServer>> servers;
  std::vector<std::thread> server_threads;
  for (size_t i = 0; i < kSites; ++i) {
    Catalog catalog;
    catalog.Register("d", parts[i]);
    services.push_back(std::make_unique<rpc::SiteService>(
        Site(static_cast<int>(i), std::move(catalog))));
    rpc::SiteServerOptions options;
    options.accept_timeout_s = 0.05;
    options.io_timeout_s = 5.0;
    servers.push_back(
        std::make_unique<rpc::SiteServer>(services.back().get(), options));
    servers.back()->Start().Check();
    server_threads.emplace_back(
        [&servers, i] { (void)servers[i]->Serve(); });
  }
  std::vector<rpc::SiteEndpoint> endpoints;
  for (const auto& server : servers) {
    endpoints.push_back({"127.0.0.1", server->port()});
  }

  const EngineCase engines[] = {
      {"star",
       [&](const std::vector<Table>& p) -> std::unique_ptr<Executor> {
         return std::make_unique<DistributedExecutor>(MakeSites(p));
       }},
      {"async",
       [&](const std::vector<Table>& p) -> std::unique_ptr<Executor> {
         return std::make_unique<AsyncExecutor>(MakeSites(p));
       }},
      {"tree2",
       [&](const std::vector<Table>& p) -> std::unique_ptr<Executor> {
         return std::make_unique<TreeExecutor>(
             MakeSites(p), CoordinatorTree::Balanced(kSites, 2));
       }},
      {"rpc",
       [&](const std::vector<Table>&) -> std::unique_ptr<Executor> {
         rpc::TcpOptions tcp;
         tcp.io_timeout_s = 5.0;
         tcp.backoff_initial_s = 0.005;
         return std::make_unique<rpc::RpcExecutor>(
             std::make_unique<rpc::TcpTransport>(endpoints, tcp),
             ExecutorOptions{});
       }},
  };

  for (const EngineCase& engine : engines) {
    SCOPED_TRACE(engine.name);
    std::vector<std::vector<uint8_t>> sequential =
        RunBatch(engine.make(parts), batch, /*width=*/1);
    std::vector<std::vector<uint8_t>> concurrent =
        RunBatch(engine.make(parts), batch, /*width=*/8);
    ASSERT_EQ(sequential.size(), batch.size());
    ASSERT_EQ(concurrent.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(sequential[i], concurrent[i])
          << engine.name << " query " << i
          << ": concurrency changed the result bytes";
      EXPECT_FALSE(sequential[i].empty());
    }
  }

  for (auto& server : servers) server->Stop();
  for (std::thread& t : server_threads) t.join();
}

TEST(ServeSchedulerTest, CancelQueuedQueryResolvesCancelled) {
  Table data = MakeData();
  std::vector<Table> parts = PartitionByValue(data, "g", kSites).ValueOrDie();
  DistributedWarehouse dw(kSites);
  {
    std::vector<Table> copy = parts;
    dw.AddPartitionedTable("d", std::move(copy), {"g", "h", "v"}).Check();
  }
  auto session = serve::QuerySession::Open(&dw).ValueOrDie();
  DistributedPlan plan = PlanBatch(dw)[0];

  // Saturate the width-4 admission, then cancel the queued tail.
  std::vector<serve::QueryScheduler::Submission> running;
  for (int i = 0; i < 8; ++i) running.push_back(session.SubmitPlan(plan));
  auto queued = session.SubmitPlan(plan);
  EXPECT_TRUE(session.Cancel(queued.query_id));
  auto answer = queued.result.get();
  // Either it was still queued (cancelled cleanly) or it had already
  // been admitted and ran to completion before the cancel landed.
  if (!answer.ok()) {
    EXPECT_EQ(answer.status().code(), StatusCode::kCancelled)
        << answer.status().ToString();
  }
  EXPECT_FALSE(session.Cancel(99999999));  // unknown id
  for (auto& submission : running) {
    auto r = submission.result.get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
}

TEST(ServeSchedulerTest, DeadlineExpiresInQueue) {
  Table data = MakeData();
  std::vector<Table> parts = PartitionByValue(data, "g", kSites).ValueOrDie();
  DistributedWarehouse dw(kSites);
  {
    std::vector<Table> copy = parts;
    dw.AddPartitionedTable("d", std::move(copy), {"g", "h", "v"}).Check();
  }
  serve::SessionOptions options;
  options.scheduler.max_concurrent_queries = 1;
  options.scheduler.cache_max_bytes = 0;
  auto session = serve::QuerySession::Open(&dw, options).ValueOrDie();
  DistributedPlan plan = PlanBatch(dw)[0];

  // Hold the single admission slot with a stream of work, and submit a
  // query whose 1ms budget cannot survive the queue.
  std::vector<serve::QueryScheduler::Submission> head;
  for (int i = 0; i < 4; ++i) head.push_back(session.SubmitPlan(plan));
  serve::QueryOptions tight;
  tight.query_deadline_ms = 1;
  tight.use_cache = false;
  auto doomed = session.SubmitPlan(plan, tight);
  auto answer = doomed.result.get();
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded)
      << answer.status().ToString();
  for (auto& submission : head) {
    auto r = submission.result.get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
}

}  // namespace
}  // namespace skalla
