#include "sql/parser.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/local_eval.h"
#include "data/flow_gen.h"
#include "expr/builder.h"
#include "sql/lexer.h"

namespace skalla {
namespace {

constexpr char kExample1[] = R"(
  -- The paper's Example 1.
  BASE SELECT DISTINCT SourceAS, DestAS FROM flow;
  MD USING flow
     COMPUTE COUNT(*) AS cnt1, SUM(NumBytes) AS sum1
     WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS;
  MD USING flow
     COMPUTE COUNT(*) AS cnt2
     WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS
       AND r.NumBytes >= b.sum1 / b.cnt1;
)";

TEST(LexerTest, TokenizesOperatorsAndKeywords) {
  auto tokens = Tokenize("SELECT <= <> >= ( ) 3.5 42 'it''s' foo");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = *tokens;
  ASSERT_EQ(t.size(), 11u);  // Including kEnd.
  EXPECT_EQ(t[0].kind, TokenKind::kSelect);
  EXPECT_EQ(t[1].kind, TokenKind::kLe);
  EXPECT_EQ(t[2].kind, TokenKind::kNe);
  EXPECT_EQ(t[3].kind, TokenKind::kGe);
  EXPECT_EQ(t[4].kind, TokenKind::kLParen);
  EXPECT_EQ(t[5].kind, TokenKind::kRParen);
  EXPECT_EQ(t[6].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(t[6].float_value, 3.5);
  EXPECT_EQ(t[7].kind, TokenKind::kInteger);
  EXPECT_EQ(t[7].int_value, 42);
  EXPECT_EQ(t[8].kind, TokenKind::kString);
  EXPECT_EQ(t[8].text, "it's");
  EXPECT_EQ(t[9].kind, TokenKind::kIdentifier);
  EXPECT_EQ(t[10].kind, TokenKind::kEnd);
}

TEST(LexerTest, CommentsAndLineTracking) {
  auto tokens = Tokenize("a -- comment\n  b");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[1].line, 2u);
  EXPECT_EQ((*tokens)[1].column, 3u);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("select SeLeCt SELECT");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*tokens)[i].kind, TokenKind::kSelect);
  }
}

TEST(LexerTest, UnterminatedStringFails) {
  auto tokens = Tokenize("'oops");
  ASSERT_FALSE(tokens.ok());
  EXPECT_TRUE(tokens.status().IsParseError());
}

TEST(LexerTest, BadCharacterFails) {
  auto tokens = Tokenize("a @ b");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("'@'"), std::string::npos);
}

TEST(ParserTest, ParsesExample1Structure) {
  auto parsed = ParseQuery(kExample1);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const GmdjExpr& expr = *parsed;
  EXPECT_EQ(expr.base.table, "flow");
  ASSERT_EQ(expr.base.columns.size(), 2u);
  EXPECT_EQ(expr.base.columns[0], "SourceAS");
  EXPECT_TRUE(expr.base.distinct);
  ASSERT_EQ(expr.ops.size(), 2u);
  ASSERT_EQ(expr.ops[0].blocks.size(), 1u);
  ASSERT_EQ(expr.ops[0].blocks[0].aggs.size(), 2u);
  EXPECT_EQ(expr.ops[0].blocks[0].aggs[0].kind, AggKind::kCountStar);
  EXPECT_EQ(expr.ops[0].blocks[0].aggs[1].kind, AggKind::kSum);
  EXPECT_EQ(expr.ops[0].blocks[0].aggs[1].input, "NumBytes");
  EXPECT_EQ(expr.ops[0].blocks[0].aggs[1].output, "sum1");
  ASSERT_EQ(expr.ops[1].blocks.size(), 1u);
  EXPECT_EQ(expr.ops[1].blocks[0].aggs[0].output, "cnt2");
}

TEST(ParserTest, ParsedQueryEvaluatesLikeHandBuilt) {
  FlowConfig config;
  config.num_flows = 2000;
  config.num_as = 20;
  Table flow = GenerateFlows(config);
  Catalog catalog;
  catalog.Register("flow", flow);

  GmdjExpr parsed = ParseQuery(kExample1).ValueOrDie();

  GmdjExpr built;
  built.base = BaseQuery{"flow", {"SourceAS", "DestAS"}, true, nullptr};
  ExprPtr group = And(Eq(RCol("SourceAS"), BCol("SourceAS")),
                      Eq(RCol("DestAS"), BCol("DestAS")));
  GmdjOp md1;
  md1.detail_table = "flow";
  md1.blocks.push_back(GmdjBlock{{{AggKind::kCountStar, "", "cnt1"},
                                  {AggKind::kSum, "NumBytes", "sum1"}},
                                 group});
  GmdjOp md2;
  md2.detail_table = "flow";
  md2.blocks.push_back(GmdjBlock{
      {{AggKind::kCountStar, "", "cnt2"}},
      And(group, Ge(RCol("NumBytes"), Div(BCol("sum1"), BCol("cnt1"))))});
  built.ops = {md1, md2};

  Table from_parsed = EvalCentralized(parsed, catalog).ValueOrDie();
  Table from_built = EvalCentralized(built, catalog).ValueOrDie();
  EXPECT_TRUE(from_parsed.SameRows(from_built));
}

TEST(ParserTest, MultipleComputeBlocksPerMd) {
  auto parsed = ParseQuery(R"(
    BASE SELECT DISTINCT SourceAS FROM flow;
    MD USING flow
       COMPUTE COUNT(*) AS web WHERE r.SourceAS = b.SourceAS
                                 AND r.DestPort = 80
       COMPUTE COUNT(*) AS total WHERE r.SourceAS = b.SourceAS;
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->ops.size(), 1u);
  ASSERT_EQ(parsed->ops[0].blocks.size(), 2u);
  EXPECT_EQ(parsed->ops[0].blocks[0].aggs[0].output, "web");
  EXPECT_EQ(parsed->ops[0].blocks[1].aggs[0].output, "total");
}

TEST(ParserTest, BaseWhereUsesDetailSide) {
  auto parsed = ParseQuery(R"(
    BASE SELECT DISTINCT SourceAS FROM flow WHERE DestPort = 80;
    MD USING flow COMPUTE COUNT(*) AS c WHERE r.SourceAS = b.SourceAS;
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_NE(parsed->base.where, nullptr);
  EXPECT_TRUE(parsed->base.where->ReferencesSide(ExprSide::kDetail));
  EXPECT_FALSE(parsed->base.where->ReferencesSide(ExprSide::kBase));
}

TEST(ParserTest, BaseWhereRejectsBaseRefs) {
  auto parsed = ParseQuery(R"(
    BASE SELECT DISTINCT SourceAS FROM flow WHERE b.SourceAS = 1;
    MD USING flow COMPUTE COUNT(*) AS c WHERE r.SourceAS = b.SourceAS;
  )");
  ASSERT_FALSE(parsed.ok());
}

TEST(ParserTest, UnqualifiedRefInMdConditionFails) {
  auto parsed = ParseQuery(R"(
    BASE SELECT DISTINCT SourceAS FROM flow;
    MD USING flow COMPUTE COUNT(*) AS c WHERE SourceAS = b.SourceAS;
  )");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("unqualified"),
            std::string::npos);
}

TEST(ParserTest, PrecedenceAndParentheses) {
  ExprPtr e = ParseExpression("b.x + 2 * r.y >= 10").ValueOrDie();
  // Expect: (b.x + (2 * r.y)) >= 10.
  ExprPtr want = Ge(Add(BCol("x"), Mul(Lit(Value(2)), RCol("y"))),
                    Lit(Value(10)));
  EXPECT_TRUE(e->Equals(*want)) << e->ToString();

  ExprPtr p = ParseExpression("(b.x + 2) * r.y = 10").ValueOrDie();
  ExprPtr want_p =
      Eq(Mul(Add(BCol("x"), Lit(Value(2))), RCol("y")), Lit(Value(10)));
  EXPECT_TRUE(p->Equals(*want_p)) << p->ToString();
}

TEST(ParserTest, BooleanPrecedence) {
  ExprPtr e = ParseExpression(
                  "b.x = 1 OR b.y = 2 AND NOT r.z = 3")
                  .ValueOrDie();
  ExprPtr want = Or(Eq(BCol("x"), Lit(Value(1))),
                    And(Eq(BCol("y"), Lit(Value(2))),
                        Not(Eq(RCol("z"), Lit(Value(3))))));
  EXPECT_TRUE(e->Equals(*want)) << e->ToString();
}

TEST(ParserTest, UnaryMinusAndStrings) {
  ExprPtr e = ParseExpression("r.v > -5 AND r.name = 'web'").ValueOrDie();
  ExprPtr want = And(Gt(RCol("v"), Expr::Unary(UnaryOp::kNeg,
                                               Lit(Value(5)))),
                     Eq(RCol("name"), Lit(Value("web"))));
  EXPECT_TRUE(e->Equals(*want)) << e->ToString();
}

TEST(ParserTest, ErrorsCarryPosition) {
  auto parsed = ParseQuery("BASE SELECT FROM flow;");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 1"), std::string::npos);
}

TEST(ParserTest, MissingSemicolonFails) {
  auto parsed = ParseQuery(R"(
    BASE SELECT DISTINCT SourceAS FROM flow
    MD USING flow COMPUTE COUNT(*) AS c WHERE r.SourceAS = b.SourceAS;
  )");
  ASSERT_FALSE(parsed.ok());
}

TEST(ParserTest, QueryWithoutMdFails) {
  auto parsed = ParseQuery("BASE SELECT DISTINCT a FROM t;");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("MD clause"), std::string::npos);
}

// Property: Expr::ToString emits exactly the parser's expression syntax,
// so printing and reparsing a random expression is the identity.
class ExprRoundTripTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  ExprPtr RandomExpr(Random* rng, int depth) {
    if (depth <= 0 || rng->Bernoulli(0.3)) {
      switch (rng->Uniform(4)) {
        case 0:
          return BCol(std::string(1, static_cast<char>('a' + rng->Uniform(4))));
        case 1:
          return RCol(std::string(1, static_cast<char>('x' + rng->Uniform(3))));
        case 2:
          // Non-negative: a negative literal's canonical parse is unary
          // minus applied to the magnitude, not a negative literal node.
          return Lit(Value(rng->UniformInt(0, 100)));
        default:
          return Lit(Value(rng->NextString(3)));
      }
    }
    switch (rng->Uniform(6)) {
      case 0:
        return And(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
      case 1:
        return Or(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
      case 2:
        return Not(RandomExpr(rng, depth - 1));
      case 3: {
        BinaryOp cmp[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                          BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};
        return Expr::Binary(cmp[rng->Uniform(6)], RandomExpr(rng, depth - 1),
                            RandomExpr(rng, depth - 1));
      }
      case 4: {
        BinaryOp arith[] = {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul,
                            BinaryOp::kDiv, BinaryOp::kMod};
        return Expr::Binary(arith[rng->Uniform(5)],
                            RandomExpr(rng, depth - 1),
                            RandomExpr(rng, depth - 1));
      }
      default:
        return Expr::Unary(UnaryOp::kNeg, RandomExpr(rng, depth - 1));
    }
  }
};

TEST_P(ExprRoundTripTest, PrintThenParseIsIdentity) {
  Random rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    ExprPtr original = RandomExpr(&rng, 1 + static_cast<int>(rng.Uniform(4)));
    std::string text = original->ToString();
    auto reparsed = ParseExpression(text);
    ASSERT_TRUE(reparsed.ok()) << text << "\n"
                               << reparsed.status().ToString();
    EXPECT_TRUE((*reparsed)->Equals(*original))
        << "original: " << text
        << "\nreparsed: " << (*reparsed)->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprRoundTripTest,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

TEST(ParserTest, VarianceAggregates) {
  auto parsed = ParseQuery(R"(
    BASE SELECT DISTINCT g FROM t;
    MD USING t
       COMPUTE VAR(v) AS vv, STDDEV(v) AS sd WHERE r.g = b.g;
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<AggSpec>& aggs = parsed->ops[0].blocks[0].aggs;
  ASSERT_EQ(aggs.size(), 2u);
  EXPECT_EQ(aggs[0].kind, AggKind::kVarPop);
  EXPECT_EQ(aggs[1].kind, AggKind::kStdDevPop);
}

TEST(ParserTest, CountColumnAndAllAggKinds) {
  auto parsed = ParseQuery(R"(
    BASE SELECT DISTINCT g FROM t;
    MD USING t
       COMPUTE COUNT(v) AS c, SUM(v) AS s, AVG(v) AS a,
               MIN(v) AS lo, MAX(v) AS hi
       WHERE r.g = b.g;
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::vector<AggSpec>& aggs = parsed->ops[0].blocks[0].aggs;
  ASSERT_EQ(aggs.size(), 5u);
  EXPECT_EQ(aggs[0].kind, AggKind::kCount);
  EXPECT_EQ(aggs[1].kind, AggKind::kSum);
  EXPECT_EQ(aggs[2].kind, AggKind::kAvg);
  EXPECT_EQ(aggs[3].kind, AggKind::kMin);
  EXPECT_EQ(aggs[4].kind, AggKind::kMax);
}

}  // namespace
}  // namespace skalla
