#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"

namespace skalla {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad column");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_FALSE(s.IsNotFound());
  EXPECT_EQ(s.message(), "bad column");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad column");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
}

TEST(StatusTest, CopyAndMoveSemantics) {
  Status original = Status::Internal("boom");
  Status copy = original;
  EXPECT_TRUE(copy.IsInternal());
  EXPECT_TRUE(original.IsInternal());
  Status moved = std::move(original);
  EXPECT_TRUE(moved.IsInternal());
  copy = moved;
  EXPECT_EQ(copy.message(), "boom");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 1000u);
}

namespace helpers {

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Status UseMacros(int x, int* out) {
  SKALLA_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  SKALLA_RETURN_NOT_OK(Status::OK());
  *out = v * 2;
  return Status::OK();
}

}  // namespace helpers

TEST(MacroTest, AssignOrReturnPropagatesError) {
  int out = 0;
  Status s = helpers::UseMacros(-1, &out);
  EXPECT_TRUE(s.IsOutOfRange());
  EXPECT_EQ(out, 0);
}

TEST(MacroTest, AssignOrReturnBindsValue) {
  int out = 0;
  Status s = helpers::UseMacros(21, &out);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(out, 42);
}

}  // namespace
}  // namespace skalla
