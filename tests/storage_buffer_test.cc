// BufferManager: byte-budget LRU accounting (hit/miss/evict), pins
// blocking eviction and overcommit, owner invalidation, and the
// single-flight load guarantee under concurrency.

#include "storage/buffer_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "storage/chunk.h"
#include "storage/table.h"

namespace skalla {
namespace {

Table SomeRows(int64_t salt, size_t n = 64) {
  SchemaPtr schema = Schema::Make({{"k", ValueType::kInt64},
                                   {"name", ValueType::kString}})
                         .ValueOrDie();
  Table t(schema);
  for (size_t i = 0; i < n; ++i) {
    t.AppendUnchecked({Value(salt * 1000 + static_cast<int64_t>(i)),
                       Value("row-" + std::to_string(i))});
  }
  return t;
}

ChunkPtr SomeChunk(int64_t salt) {
  Table t = SomeRows(salt);
  return Chunk::Build(t, 0, t.num_rows()).ValueOrDie();
}

// A loader that counts its invocations.
class CountingLoader {
 public:
  explicit CountingLoader(int64_t salt) : salt_(salt) {}
  BufferManager::Loader fn() {
    return [this]() -> Result<ChunkPtr> {
      ++loads_;
      return SomeChunk(salt_);
    };
  }
  int loads() const { return loads_.load(); }

 private:
  int64_t salt_;
  std::atomic<int> loads_{0};
};

TEST(BufferManagerTest, MissLoadsOnceThenHits) {
  auto bm = std::make_shared<BufferManager>(0);  // unlimited
  const uint64_t owner = BufferManager::NextOwnerId();
  CountingLoader loader(1);

  { PinnedChunk pin = bm->Pin(owner, 0, loader.fn()).ValueOrDie(); }
  { PinnedChunk pin = bm->Pin(owner, 0, loader.fn()).ValueOrDie(); }

  EXPECT_EQ(loader.loads(), 1);
  BufferStats stats = bm->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.resident_chunks, 1u);
  EXPECT_EQ(stats.pinned_chunks, 0u);
  EXPECT_GT(stats.resident_bytes, 0u);
}

TEST(BufferManagerTest, EvictsLeastRecentlyUsedWithinBudget) {
  const uint64_t chunk_bytes = SomeChunk(0)->byte_size();
  // Room for two chunks, not three.
  auto bm = std::make_shared<BufferManager>(chunk_bytes * 2 + 1);
  const uint64_t owner = BufferManager::NextOwnerId();
  CountingLoader l0(0), l1(1), l2(2);

  { PinnedChunk p = bm->Pin(owner, 0, l0.fn()).ValueOrDie(); }
  { PinnedChunk p = bm->Pin(owner, 1, l1.fn()).ValueOrDie(); }
  // Touch 0 so 1 is the LRU victim.
  { PinnedChunk p = bm->Pin(owner, 0, l0.fn()).ValueOrDie(); }
  { PinnedChunk p = bm->Pin(owner, 2, l2.fn()).ValueOrDie(); }

  BufferStats stats = bm->stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.resident_bytes, bm->budget_bytes());
  EXPECT_EQ(stats.resident_chunks, 2u);

  // 0 survived (recently used), 1 was evicted and must reload.
  { PinnedChunk p = bm->Pin(owner, 0, l0.fn()).ValueOrDie(); }
  EXPECT_EQ(l0.loads(), 1);
  { PinnedChunk p = bm->Pin(owner, 1, l1.fn()).ValueOrDie(); }
  EXPECT_EQ(l1.loads(), 2);
}

TEST(BufferManagerTest, PinnedChunksOvercommitInsteadOfEvicting) {
  auto bm = std::make_shared<BufferManager>(1);  // everything over budget
  const uint64_t owner = BufferManager::NextOwnerId();
  CountingLoader l0(0), l1(1);

  PinnedChunk p0 = bm->Pin(owner, 0, l0.fn()).ValueOrDie();
  PinnedChunk p1 = bm->Pin(owner, 1, l1.fn()).ValueOrDie();

  // Both pinned: nothing evictable, the pool overcommits.
  BufferStats stats = bm->stats();
  EXPECT_EQ(stats.resident_chunks, 2u);
  EXPECT_EQ(stats.pinned_chunks, 2u);
  EXPECT_GT(stats.resident_bytes, bm->budget_bytes());
  EXPECT_EQ(p0->num_rows(), 64u);
  EXPECT_EQ(p1->num_rows(), 64u);

  // Releasing makes them evictable; the budget is enforced again.
  p0.Release();
  p1.Release();
  stats = bm->stats();
  EXPECT_LE(stats.resident_bytes, bm->budget_bytes());
  EXPECT_EQ(stats.resident_chunks, 0u);
  EXPECT_GE(stats.evictions, 2u);
}

TEST(BufferManagerTest, DropOwnerInvalidatesResidentAndPinned) {
  auto bm = std::make_shared<BufferManager>(0);
  const uint64_t a = BufferManager::NextOwnerId();
  const uint64_t b = BufferManager::NextOwnerId();
  CountingLoader la(1), lb(2);

  // Unpinned entry of `a` drops immediately; `b`'s survives.
  { PinnedChunk p = bm->Pin(a, 0, la.fn()).ValueOrDie(); }
  { PinnedChunk p = bm->Pin(b, 0, lb.fn()).ValueOrDie(); }
  bm->DropOwner(a);
  EXPECT_EQ(bm->stats().resident_chunks, 1u);
  { PinnedChunk p = bm->Pin(a, 0, la.fn()).ValueOrDie(); }
  EXPECT_EQ(la.loads(), 2);
  { PinnedChunk p = bm->Pin(b, 0, lb.fn()).ValueOrDie(); }
  EXPECT_EQ(lb.loads(), 1);

  // A pinned entry outlives the drop and is erased at last unpin.
  PinnedChunk held = bm->Pin(a, 0, la.fn()).ValueOrDie();
  bm->DropOwner(a);
  EXPECT_EQ(held->num_rows(), 64u);  // still readable while pinned
  held.Release();
  { PinnedChunk p = bm->Pin(a, 0, la.fn()).ValueOrDie(); }
  EXPECT_EQ(la.loads(), 3);
}

TEST(BufferManagerTest, ConcurrentPinsShareOneLoad) {
  auto bm = std::make_shared<BufferManager>(0);
  const uint64_t owner = BufferManager::NextOwnerId();
  std::atomic<int> loads{0};
  BufferManager::Loader slow = [&loads]() -> Result<ChunkPtr> {
    ++loads;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return SomeChunk(7);
  };

  constexpr int kThreads = 4;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      Result<PinnedChunk> pin = bm->Pin(owner, 0, slow);
      if (pin.ok() && (*pin)->num_rows() == 64u) ++ok;
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ok.load(), kThreads);
  EXPECT_EQ(loads.load(), 1);
  BufferStats stats = bm->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(BufferManagerTest, FailedLoadIsNotCached) {
  auto bm = std::make_shared<BufferManager>(0);
  const uint64_t owner = BufferManager::NextOwnerId();
  BufferManager::Loader failing = []() -> Result<ChunkPtr> {
    return Status::IOError("disk gone");
  };
  EXPECT_TRUE(bm->Pin(owner, 0, failing).status().IsIOError());
  EXPECT_EQ(bm->stats().resident_chunks, 0u);

  // The failed slot is free again: a working loader succeeds.
  CountingLoader working(3);
  PinnedChunk pin = bm->Pin(owner, 0, working.fn()).ValueOrDie();
  EXPECT_EQ(pin->num_rows(), 64u);
}

TEST(BufferManagerTest, HandleKeepsManagerAlive) {
  PinnedChunk pin;
  {
    auto bm = std::make_shared<BufferManager>(0);
    CountingLoader loader(9);
    pin = bm->Pin(BufferManager::NextOwnerId(), 0, loader.fn()).ValueOrDie();
  }
  // The manager's last external reference is gone; the handle still
  // reads and unpins safely.
  EXPECT_EQ(pin->num_rows(), 64u);
  pin.Release();
}

}  // namespace
}  // namespace skalla
