// Table, hash index, catalog, and partitioning (incl. PartitionInfo /
// Definition 2).

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/catalog.h"
#include "storage/hash_index.h"
#include "storage/partition.h"
#include "storage/table.h"

namespace skalla {
namespace {

Table SmallTable() {
  SchemaPtr schema = Schema::Make({{"k", ValueType::kInt64},
                                   {"v", ValueType::kString}})
                         .ValueOrDie();
  Table t(schema);
  t.Append({Value(1), Value("a")}).Check();
  t.Append({Value(2), Value("b")}).Check();
  t.Append({Value(1), Value("c")}).Check();
  return t;
}

TEST(TableTest, AppendValidatesArity) {
  Table t = SmallTable();
  Status s = t.Append({Value(1)});
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(TableTest, AppendValidatesTypes) {
  Table t = SmallTable();
  EXPECT_TRUE(t.Append({Value("oops"), Value("a")}).IsTypeError());
  // NULL is accepted anywhere; INT64/FLOAT64 interchange.
  EXPECT_TRUE(t.Append({Value::Null(), Value::Null()}).ok());
  SchemaPtr num = Schema::Make({{"x", ValueType::kFloat64}}).ValueOrDie();
  Table nt(num);
  EXPECT_TRUE(nt.Append({Value(1)}).ok());
}

TEST(TableTest, SameRowsIsOrderInsensitive) {
  Table a = SmallTable();
  SchemaPtr schema = a.schema();
  Table b(schema);
  b.AppendUnchecked({Value(1), Value("c")});
  b.AppendUnchecked({Value(2), Value("b")});
  b.AppendUnchecked({Value(1), Value("a")});
  EXPECT_TRUE(a.SameRows(b));
  b.AppendUnchecked({Value(9), Value("z")});
  EXPECT_FALSE(a.SameRows(b));
}

TEST(TableTest, SortRowsBy) {
  Table t = SmallTable();
  t.SortRowsBy({0, 1});
  EXPECT_EQ(t.at(0, 1).str(), "a");
  EXPECT_EQ(t.at(1, 1).str(), "c");
  EXPECT_EQ(t.at(2, 0).int64(), 2);
}

TEST(TableTest, ToStringTruncates) {
  Table t = SmallTable();
  std::string s = t.ToString(2);
  EXPECT_NE(s.find("k | v"), std::string::npos);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

TEST(HashIndexTest, LookupByDifferentProbeColumns) {
  Table t = SmallTable();
  HashIndex index = HashIndex::Build(t, {0});
  // Probe with a wider row whose key sits at position 2.
  Row probe = {Value("x"), Value("y"), Value(1)};
  const std::vector<uint32_t>* rows = index.Lookup(probe, {2});
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 2u);  // Rows 0 and 2 have k=1.
  EXPECT_EQ(index.num_keys(), 2u);
  probe[2] = Value(99);
  EXPECT_EQ(index.Lookup(probe, {2}), nullptr);
}

TEST(HashIndexTest, MultiColumnKeysAndNulls) {
  SchemaPtr schema = Schema::Make({{"a", ValueType::kInt64},
                                   {"b", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  t.AppendUnchecked({Value(1), Value(1)});
  t.AppendUnchecked({Value(1), Value::Null()});
  t.AppendUnchecked({Value(1), Value::Null()});
  HashIndex index = HashIndex::Build(t, {0, 1});
  EXPECT_EQ(index.num_keys(), 2u);
  Row probe = {Value(1), Value::Null()};
  const auto* rows = index.Lookup(probe, {0, 1});
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 2u);  // NULL groups together (GROUP BY style).
}

TEST(HashIndexTest, LargeRandomAgainstLinearScan) {
  Random rng(5);
  SchemaPtr schema = Schema::Make({{"k", ValueType::kInt64}}).ValueOrDie();
  Table t(schema);
  for (int i = 0; i < 5000; ++i) {
    t.AppendUnchecked({Value(rng.UniformInt(0, 99))});
  }
  HashIndex index = HashIndex::Build(t, {0});
  EXPECT_EQ(index.num_keys(), 100u);
  for (int64_t key = 0; key < 100; ++key) {
    Row probe = {Value(key)};
    const auto* rows = index.Lookup(probe, {0});
    size_t expected = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      if (t.at(r, 0).int64() == key) ++expected;
    }
    ASSERT_NE(rows, nullptr);
    EXPECT_EQ(rows->size(), expected);
  }
}

TEST(CatalogTest, RegisterGetAndReplace) {
  Catalog catalog;
  catalog.Register("t", SmallTable());
  ASSERT_TRUE(catalog.Contains("t"));
  const Table* t = catalog.Get("t").ValueOrDie();
  EXPECT_EQ(t->num_rows(), 3u);
  EXPECT_TRUE(catalog.Get("missing").status().IsNotFound());

  Table empty(t->schema());
  catalog.Register("t", empty);
  EXPECT_EQ(catalog.Get("t").ValueOrDie()->num_rows(), 0u);
  EXPECT_EQ(catalog.TableNames().size(), 1u);
}

TEST(PartitionTest, ByValueKeepsValuesTogether) {
  Random rng(7);
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64},
                                   {"v", ValueType::kInt64}})
                         .ValueOrDie();
  Table t(schema);
  for (int i = 0; i < 1000; ++i) {
    t.AppendUnchecked({Value(rng.UniformInt(0, 19)),
                       Value(rng.UniformInt(0, 9))});
  }
  auto parts = PartitionByValue(t, "g", 4).ValueOrDie();
  ASSERT_EQ(parts.size(), 4u);
  size_t total = 0;
  for (const Table& p : parts) total += p.num_rows();
  EXPECT_EQ(total, t.num_rows());

  // Each g value appears in exactly one partition.
  PartitionInfo info =
      PartitionInfo::ComputeFromPartitions(parts, {"g", "v"}).ValueOrDie();
  EXPECT_TRUE(info.IsPartitionAttribute("g"));
  EXPECT_FALSE(info.IsPartitionAttribute("v"));
}

TEST(PartitionTest, ByModuloIsEvenAndPartitionAttribute) {
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64}}).ValueOrDie();
  Table t(schema);
  for (int i = 0; i < 800; ++i) t.AppendUnchecked({Value(i % 25)});
  auto parts = PartitionByModulo(t, "g", 8).ValueOrDie();
  PartitionInfo info =
      PartitionInfo::ComputeFromPartitions(parts, {"g"}).ValueOrDie();
  EXPECT_TRUE(info.IsPartitionAttribute("g"));
  // 25 values over 8 sites: between 3 and 4 values per site -> sizes
  // within 2x of each other.
  size_t lo = t.num_rows();
  size_t hi = 0;
  for (const Table& p : parts) {
    lo = std::min(lo, p.num_rows());
    hi = std::max(hi, p.num_rows());
  }
  EXPECT_GE(lo * 2, hi);
}

TEST(PartitionTest, ByModuloRejectsNonIntColumns) {
  SchemaPtr schema = Schema::Make({{"s", ValueType::kString}}).ValueOrDie();
  Table t(schema);
  t.AppendUnchecked({Value("x")});
  EXPECT_TRUE(PartitionByModulo(t, "s", 2).status().IsTypeError());
}

TEST(PartitionTest, RoundRobinIsNotPartitionAttribute) {
  SchemaPtr schema = Schema::Make({{"g", ValueType::kInt64}}).ValueOrDie();
  Table t(schema);
  for (int i = 0; i < 100; ++i) t.AppendUnchecked({Value(i % 5)});
  auto parts = PartitionRoundRobin(t, 4).ValueOrDie();
  PartitionInfo info =
      PartitionInfo::ComputeFromPartitions(parts, {"g"}).ValueOrDie();
  EXPECT_FALSE(info.IsPartitionAttribute("g"));
}

TEST(PartitionTest, ZeroSitesRejected) {
  Table t = SmallTable();
  EXPECT_FALSE(PartitionByValue(t, "k", 0).ok());
  EXPECT_FALSE(PartitionRoundRobin(t, 0).ok());
}

TEST(PartitionInfoTest, ColumnDistributionMayContain) {
  ColumnDistribution dist;
  EXPECT_TRUE(dist.MayContain(Value(5)));  // Nothing known.
  dist.min = 0.0;
  dist.max = 10.0;
  EXPECT_TRUE(dist.MayContain(Value(5)));
  EXPECT_FALSE(dist.MayContain(Value(11)));
  EXPECT_FALSE(dist.MayContain(Value(-1)));
  EXPECT_TRUE(dist.MayContain(Value("str")));  // Ranges ignore non-numerics.
  dist.values.emplace();
  dist.values->Insert(Value(3));
  EXPECT_TRUE(dist.MayContain(Value(3)));
  EXPECT_FALSE(dist.MayContain(Value(5)));  // Exact set dominates.
}

TEST(PartitionInfoTest, HistogramRefinesMayContain) {
  ColumnDistribution dist;
  dist.min = 0.0;
  dist.max = 100.0;
  // 10 buckets of width 10; bucket 5 ([50,60)) is empty.
  dist.histogram = {5, 3, 9, 1, 2, 0, 4, 7, 8, 6};
  EXPECT_TRUE(dist.MayContain(Value(25)));
  EXPECT_FALSE(dist.MayContain(Value(55)));   // Empty bucket.
  EXPECT_TRUE(dist.MayContain(Value(100)));   // Last bucket is closed.
  EXPECT_FALSE(dist.MayContain(Value(101)));  // Out of range.
}

TEST(PartitionInfoTest, ComputeFromPartitionsBuildsHistograms) {
  SchemaPtr schema = Schema::Make({{"v", ValueType::kInt64}}).ValueOrDie();
  Table low(schema);
  Table high(schema);
  for (int i = 0; i < 50; ++i) {
    low.AppendUnchecked({Value(i)});         // [0, 49].
    high.AppendUnchecked({Value(100 + i)});  // [100, 149].
  }
  // One partition with a gap in the middle of its range.
  Table gappy(schema);
  for (int i = 0; i < 10; ++i) gappy.AppendUnchecked({Value(i)});
  for (int i = 90; i < 100; ++i) gappy.AppendUnchecked({Value(i)});

  // Cap the exact value sets at 5 distincts so MayContain exercises the
  // histogram fallback, as it would for high-cardinality columns.
  PartitionInfo info =
      PartitionInfo::ComputeFromPartitions({low, high, gappy}, {"v"},
                                           /*histogram_buckets=*/10,
                                           /*max_value_set_size=*/5)
          .ValueOrDie();
  const ColumnDistribution* g = info.GetDistribution(2, "v");
  ASSERT_NE(g, nullptr);
  EXPECT_FALSE(g->values.has_value());  // Dropped: 20 distincts > cap.
  ASSERT_EQ(g->histogram.size(), 10u);
  // gappy spans [0, 99]: middle buckets are empty.
  EXPECT_FALSE(g->MayContain(Value(50)));
  EXPECT_TRUE(g->MayContain(Value(5)));
  EXPECT_TRUE(g->MayContain(Value(95)));
  // With sets dropped, ranges alone cannot exclude cross-site overlap...
  const ColumnDistribution* l = info.GetDistribution(0, "v");
  ASSERT_NE(l, nullptr);
  EXPECT_FALSE(l->values.has_value());
  EXPECT_FALSE(l->MayContain(Value(75)));  // Above low's max of 49.
}

TEST(ValueSetTest, InsertContainsIntersects) {
  ValueSet a;
  a.Insert(Value(1));
  a.Insert(Value(1));
  a.Insert(Value("x"));
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.Contains(Value(1)));
  EXPECT_TRUE(a.Contains(Value(1.0)));  // Cross-type numeric equality.
  EXPECT_FALSE(a.Contains(Value(2)));
  ValueSet b;
  b.Insert(Value("x"));
  EXPECT_TRUE(a.Intersects(b));
  ValueSet c;
  c.Insert(Value(7));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(ValueSet().Intersects(a));
}

}  // namespace
}  // namespace skalla
