#include "data/table_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sys/stat.h>

#include "data/tpcr_gen.h"
#include "storage/partition.h"

namespace skalla {
namespace {

class TableIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/skalla_table_io_test";
    mkdir(dir_.c_str(), 0755);
  }

  std::string dir_;
};

TEST_F(TableIoTest, RoundTrip) {
  TpcrConfig config;
  config.num_rows = 300;
  Table original = GenerateTpcr(config);
  std::string path = dir_ + "/t.skt";
  WriteTableFile(original, path).Check();
  Table loaded = ReadTableFile(path).ValueOrDie();
  EXPECT_TRUE(loaded.SameRows(original));
  EXPECT_TRUE(loaded.schema()->Equals(*original.schema()));
  std::remove(path.c_str());
}

TEST_F(TableIoTest, RejectsNonSkallaFiles) {
  std::string path = dir_ + "/bogus.skt";
  std::ofstream(path) << "definitely not a table";
  auto loaded = ReadTableFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
  std::remove(path.c_str());
  EXPECT_TRUE(ReadTableFile(dir_ + "/missing.skt").status().IsIOError());
}

TEST_F(TableIoTest, PartitionSaveLoad) {
  TpcrConfig config;
  config.num_rows = 400;
  Table t = GenerateTpcr(config);
  std::vector<Table> partitions =
      PartitionByModulo(t, "NationKey", 3).ValueOrDie();
  SavePartitions(partitions, dir_, "tpcr").Check();
  std::vector<Table> loaded = LoadPartitions(dir_, "tpcr").ValueOrDie();
  ASSERT_EQ(loaded.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(loaded[i].SameRows(partitions[i])) << "partition " << i;
    std::remove((dir_ + "/tpcr.part" + std::to_string(i) + ".skt").c_str());
  }
  EXPECT_TRUE(LoadPartitions(dir_, "tpcr").status().IsNotFound());
}

}  // namespace
}  // namespace skalla
