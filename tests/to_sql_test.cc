#include "sql/to_sql.h"

#include <gtest/gtest.h>

#include "expr/builder.h"
#include "sql/parser.h"

namespace skalla {
namespace {

TEST(ToSqlTest, ExprRendering) {
  EXPECT_EQ(*ExprToSql(Eq(BCol("a"), RCol("b"))), "(b.a = r.b)");
  EXPECT_EQ(*ExprToSql(And(Lt(RCol("x"), Lit(Value(5))),
                           Ne(RCol("s"), Lit(Value("o'k"))))),
            "((r.x < 5) AND (r.s <> 'o''k'))");
  EXPECT_EQ(*ExprToSql(Not(Gt(RCol("x"), Lit(Value(1.5))))),
            "(NOT (r.x > 1.5))");
  EXPECT_EQ(*ExprToSql(Expr::Binary(BinaryOp::kMod, RCol("x"),
                                    Lit(Value(2)))),
            "MOD(r.x, 2)");
  EXPECT_EQ(*ExprToSql(Expr::Unary(UnaryOp::kNeg, RCol("x"))), "(-r.x)");
  EXPECT_EQ(*ExprToSql(Lit(Value::Null())), "NULL");
}

TEST(ToSqlTest, InSetHasNoSqlRendering) {
  auto set = std::make_shared<ValueSet>();
  set->Insert(Value(1));
  auto result = ExprToSql(Expr::InSet(BCol("a"), set));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotImplemented());
}

TEST(ToSqlTest, Example1Reduction) {
  GmdjExpr expr = ParseQuery(R"(
    BASE SELECT DISTINCT SourceAS, DestAS FROM flow;
    MD USING flow
       COMPUTE COUNT(*) AS cnt1, SUM(NumBytes) AS sum1
       WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS;
    MD USING flow
       COMPUTE COUNT(*) AS cnt2
       WHERE r.SourceAS = b.SourceAS AND r.DestAS = b.DestAS
         AND r.NumBytes >= b.sum1 / b.cnt1;
  )").ValueOrDie();

  std::string sql = GmdjToSql(expr).ValueOrDie();
  // Innermost base projection.
  EXPECT_NE(sql.find("SELECT DISTINCT r.SourceAS AS SourceAS, "
                     "r.DestAS AS DestAS FROM flow r"),
            std::string::npos);
  // Scalar subqueries for the first operator's aggregates.
  EXPECT_NE(sql.find("(SELECT COUNT(*) FROM flow r WHERE "
                     "((r.SourceAS = b.SourceAS) AND "
                     "(r.DestAS = b.DestAS))) AS cnt1"),
            std::string::npos);
  EXPECT_NE(sql.find("AS sum1"), std::string::npos);
  // The outer operator's correlated condition references the inner
  // aggregates through the b alias.
  EXPECT_NE(sql.find("(r.NumBytes >= (b.sum1 / b.cnt1)))) AS cnt2"),
            std::string::npos);
  // Two levels of nesting: the inner SELECT appears as FROM (...) b.
  EXPECT_EQ(static_cast<int>(std::string::npos) != 0, true);
  size_t first = sql.find("FROM (");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(sql.find("FROM (", first + 1), std::string::npos);
}

TEST(ToSqlTest, BaseWhereAndAggregateSpellings) {
  GmdjExpr expr = ParseQuery(R"(
    BASE SELECT DISTINCT g FROM t WHERE v > 3;
    MD USING t
       COMPUTE COUNT(v) AS c, AVG(v) AS a, MIN(v) AS lo, MAX(v) AS hi
       WHERE r.g = b.g;
  )").ValueOrDie();
  std::string sql = GmdjToSql(expr).ValueOrDie();
  EXPECT_NE(sql.find("FROM t r WHERE (r.v > 3)"), std::string::npos);
  EXPECT_NE(sql.find("COUNT(r.v)"), std::string::npos);
  EXPECT_NE(sql.find("AVG(r.v)"), std::string::npos);
  EXPECT_NE(sql.find("MIN(r.v)"), std::string::npos);
  EXPECT_NE(sql.find("MAX(r.v)"), std::string::npos);
}

TEST(ToSqlTest, RequiresBaseColumns) {
  GmdjExpr expr;
  expr.base = BaseQuery{"t", {}, true, nullptr};
  EXPECT_TRUE(GmdjToSql(expr).status().IsInvalidArgument());
}

}  // namespace
}  // namespace skalla
