#include "types/value.h"

#include <gtest/gtest.h>

namespace skalla {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, IntConstruction) {
  Value v(42);
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.int64(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, DoubleConstruction) {
  Value v(2.5);
  EXPECT_TRUE(v.is_float64());
  EXPECT_DOUBLE_EQ(v.float64(), 2.5);
}

TEST(ValueTest, StringConstruction) {
  Value v("hello");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.str(), "hello");
  EXPECT_EQ(v.ToString(), "'hello'");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value(3).Equals(Value(3.0)));
  EXPECT_FALSE(Value(3).Equals(Value(3.5)));
  EXPECT_TRUE(Value(3).Equals(Value(3)));
}

TEST(ValueTest, NullEqualsNullForGrouping) {
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value(0)));
  EXPECT_FALSE(Value("x").Equals(Value::Null()));
}

TEST(ValueTest, StringVsNumberNeverEqual) {
  EXPECT_FALSE(Value("3").Equals(Value(3)));
}

TEST(ValueTest, CompareTotalOrder) {
  // NULL < numeric < string.
  EXPECT_LT(Value::Null().Compare(Value(int64_t{-100})), 0);
  EXPECT_LT(Value(int64_t{1} << 40).Compare(Value("a")), 0);
  EXPECT_LT(Value(1).Compare(Value(2)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(2)), 0);
  EXPECT_EQ(Value(2.0).Compare(Value(2)), 0);
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
}

TEST(ValueTest, HashConsistentWithCrossTypeEquality) {
  EXPECT_EQ(Value(7).Hash(), Value(7.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value(std::string("abc")).Hash());
  EXPECT_NE(Value(7).Hash(), Value(8).Hash());
}

TEST(ValueTest, AsDoubleCoercion) {
  EXPECT_DOUBLE_EQ(Value(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Null().AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(Value("x").AsDouble(), 0.0);
}

TEST(ValueTest, LargeIntegersExact) {
  int64_t big = (int64_t{1} << 62) + 12345;
  Value v(big);
  EXPECT_EQ(v.int64(), big);
  EXPECT_TRUE(v.Equals(Value(big)));
  EXPECT_FALSE(v.Equals(Value(big + 1)));
}

}  // namespace
}  // namespace skalla
