// Warehouse persistence: Save/Load round-trips partitions, tracked
// distribution knowledge, and query behavior.

#include <gtest/gtest.h>

#include <cstdio>
#include <sys/stat.h>

#include "data/flow_gen.h"
#include "dist/warehouse.h"
#include "sql/parser.h"

namespace skalla {
namespace {

class WarehousePersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/skalla_warehouse_test";
    mkdir(dir_.c_str(), 0755);
  }

  void TearDown() override {
    // Best-effort cleanup of the files this test writes.
    std::remove((dir_ + "/MANIFEST").c_str());
    for (int i = 0; i < 8; ++i) {
      std::remove(
          (dir_ + "/flow.part" + std::to_string(i) + ".skt").c_str());
    }
  }

  std::string dir_;
};

TEST_F(WarehousePersistenceTest, SaveLoadRoundTrip) {
  FlowConfig config;
  config.num_flows = 3000;
  config.num_routers = 3;
  Table flow = GenerateFlows(config);

  DistributedWarehouse original(3);
  original
      .AddTablePartitionedBy("flow", flow, "RouterId",
                             {"SourceAS", "NumBytes"})
      .Check();
  original.Save(dir_).Check();

  DistributedWarehouse loaded =
      DistributedWarehouse::Load(dir_).ValueOrDie();
  EXPECT_EQ(loaded.num_sites(), 3u);

  // Distribution knowledge was recomputed from the manifest's tracked
  // columns, so the optimizer behaves identically.
  ASSERT_NE(loaded.partition_info("flow"), nullptr);
  EXPECT_TRUE(loaded.partition_info("flow")->IsPartitionAttribute(
      "SourceAS"));

  GmdjExpr query = ParseQuery(R"(
    BASE SELECT DISTINCT SourceAS FROM flow;
    MD USING flow
       COMPUTE COUNT(*) AS c, SUM(NumBytes) AS s
       WHERE r.SourceAS = b.SourceAS;
  )").ValueOrDie();

  ExecStats original_stats;
  ExecStats loaded_stats;
  Table original_result =
      original.Execute(query, OptimizerOptions::All(), &original_stats)
          .ValueOrDie();
  Table loaded_result =
      loaded.Execute(query, OptimizerOptions::All(), &loaded_stats)
          .ValueOrDie();
  EXPECT_TRUE(loaded_result.SameRows(original_result));
  EXPECT_EQ(loaded_stats.TotalBytes(), original_stats.TotalBytes());
  EXPECT_EQ(loaded_stats.NumSyncRounds(), original_stats.NumSyncRounds());
}

TEST_F(WarehousePersistenceTest, LoadErrors) {
  EXPECT_TRUE(DistributedWarehouse::Load("/tmp/definitely_missing_dir_x")
                  .status()
                  .IsIOError());
  // Corrupt manifest.
  std::string path = dir_ + "/MANIFEST";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not a manifest\n", f);
    std::fclose(f);
  }
  EXPECT_TRUE(DistributedWarehouse::Load(dir_).status().IsIOError());
}

}  // namespace
}  // namespace skalla
