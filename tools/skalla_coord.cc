// skalla-coord: the serving coordinator. Opens one QuerySession — over
// a saved warehouse directory (in-process sites) or over running
// skalla-site processes — and serves many concurrent clients against
// it: every connection submits through the same scheduler, shares the
// same pool of sites, and hits the same sub-aggregate cache.
//
//   skalla-coord (--data DIR | --endpoints H:P,H:P,...)
//                [--host 127.0.0.1] [--port 0]
//                [--optimize all|none] [--max-concurrent N]
//                [--deadline-ms MS] [--cache-bytes N]
//                [--shutdown-sites] [--trace-out=F] [--metrics-out=F]
//
// Announces "LISTENING port=<p>" on stdout once bound (port 0 picks an
// ephemeral port), like skalla-site.
//
// Line protocol, one client per connection, text lines ending in '\n':
//   client: query text in the Skalla query language; a blank line
//           submits it (exactly the shell's convention)
//   server: "OK <query_id> <rows>" + the result table + the transfer
//           stats, terminated by a line reading "END"
//           — or "ERR <message>" + "END"
//   client: ".cancel <query_id>"  -> "OK cancelled true|false" + "END"
//   client: ".shutdown"           -> "BYE" + "END"; the server stops
//           accepting, drains its clients, and exits (with
//           --shutdown-sites it also asks rpc-backed sites to exit)
//
// Plain enough to drive from netcat or a ten-line python client; see
// scripts/serve_smoke.sh and docs/SERVING.md.

#include <sys/socket.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "dist/warehouse.h"
#include "obs/session.h"
#include "rpc/tcp.h"
#include "serve/session.h"
#include "sql/parser.h"

namespace {

using skalla::rpc::TcpSocket;

skalla::serve::QuerySession* g_session = nullptr;
std::atomic<bool> g_stop{false};

// Live client fds, so .shutdown can unblock handler threads parked in a
// blocking read (::shutdown makes their RecvAll fail immediately).
std::mutex g_clients_mu;
std::vector<int> g_client_fds;

std::vector<skalla::rpc::SiteEndpoint> ParseEndpoints(
    const std::string& spec) {
  std::vector<skalla::rpc::SiteEndpoint> endpoints;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    size_t colon = item.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad endpoint '%s' (want host:port)\n",
                   item.c_str());
      std::exit(2);
    }
    skalla::rpc::SiteEndpoint endpoint;
    endpoint.host = item.substr(0, colon);
    endpoint.port = std::atoi(item.c_str() + colon + 1);
    endpoints.push_back(std::move(endpoint));
  }
  return endpoints;
}

// One text line, '\n'-terminated ('\r' stripped). Non-OK on disconnect.
skalla::Result<std::string> ReadLine(TcpSocket* socket) {
  std::string line;
  uint8_t byte = 0;
  while (true) {
    SKALLA_RETURN_NOT_OK(socket->RecvAll(&byte, 1, /*timeout_s=*/3600.0));
    if (byte == '\n') return line;
    if (byte != '\r') line.push_back(static_cast<char>(byte));
  }
}

void Reply(TcpSocket* socket, const std::string& text) {
  // A send failure means the client went away; the read loop notices.
  skalla::Status sent = socket->SendAll(
      reinterpret_cast<const uint8_t*>(text.data()), text.size(),
      /*timeout_s=*/30.0);
  (void)sent;
}

void RunQuery(TcpSocket* socket, const std::string& text) {
  auto parsed = skalla::ParseQuery(text);
  if (!parsed.ok()) {
    Reply(socket, skalla::StrCat("ERR ", parsed.status().ToString(),
                                 "\nEND\n"));
    return;
  }
  auto submission = g_session->Submit(*parsed);
  if (!submission.ok()) {
    Reply(socket, skalla::StrCat("ERR ", submission.status().ToString(),
                                 "\nEND\n"));
    return;
  }
  auto answer = submission->result.get();
  if (!answer.ok()) {
    Reply(socket, skalla::StrCat("ERR ", answer.status().ToString(),
                                 "\nEND\n"));
    return;
  }
  answer->table.SortRows();
  Reply(socket,
        skalla::StrCat("OK ", submission->query_id, " ",
                       answer->table.num_rows(), "\n",
                       answer->table.ToString(100),
                       answer->stats.ToString(), "END\n"));
}

void HandleClient(TcpSocket socket) {
  std::string pending;
  while (!g_stop.load()) {
    auto line = ReadLine(&socket);
    if (!line.ok()) break;  // client went away (or .shutdown unblocked us)
    std::string_view stripped = skalla::StripWhitespace(*line);
    if (pending.empty() && !stripped.empty() && stripped[0] == '.') {
      if (stripped == ".shutdown") {
        Reply(&socket, "BYE\nEND\n");
        g_stop.store(true);
        break;
      }
      if (stripped.rfind(".cancel ", 0) == 0) {
        const uint64_t query_id = static_cast<uint64_t>(
            std::atoll(std::string(stripped.substr(8)).c_str()));
        Reply(&socket,
              skalla::StrCat("OK cancelled ",
                             g_session->Cancel(query_id) ? "true" : "false",
                             "\nEND\n"));
        continue;
      }
      Reply(&socket, "ERR unknown command\nEND\n");
      continue;
    }
    if (!stripped.empty()) {
      pending += *line;
      pending += '\n';
      continue;
    }
    if (pending.empty()) continue;
    std::string text;
    std::swap(text, pending);
    RunQuery(&socket, text);
  }
  std::lock_guard<std::mutex> lock(g_clients_mu);
  for (size_t i = 0; i < g_client_fds.size(); ++i) {
    if (g_client_fds[i] == socket.fd()) {
      g_client_fds.erase(g_client_fds.begin() + static_cast<int64_t>(i));
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  skalla::obs::ObsSession obs_session(argc, argv);
  std::string data_dir;
  std::string endpoints_spec;
  std::string host = "127.0.0.1";
  int port = 0;
  std::string optimize = "all";
  bool shutdown_sites = false;
  skalla::serve::SessionOptions session_options;

  skalla::FlagSet flags;
  flags.String("--data", &data_dir, "saved warehouse dir (in-process sites)");
  flags.String("--endpoints", &endpoints_spec,
               "H:P,H:P,... running skalla-site processes");
  flags.String("--host", &host, "listen address");
  flags.Int("--port", &port, "listen port (0 = OS-assigned)");
  flags.String("--optimize", &optimize, "all|none (default all)");
  flags.SizeT("--max-concurrent",
              &session_options.scheduler.max_concurrent_queries,
              "admission width (concurrent queries)");
  flags.Uint64("--deadline-ms",
               &session_options.scheduler.default_query_deadline_ms,
               "default per-query deadline");
  flags.Uint64("--cache-bytes", &session_options.scheduler.cache_max_bytes,
               "sub-aggregate cache capacity (0 disables)");
  flags.Bool("--shutdown-sites", &shutdown_sites,
             "on exit, ask rpc-backed sites to exit too");
  flags.IgnorePrefix("--trace-out=");
  flags.IgnorePrefix("--metrics-out=");
  skalla::Status parsed_flags = flags.Parse(&argc, argv);
  if (!parsed_flags.ok() || (data_dir.empty() == endpoints_spec.empty())) {
    if (!parsed_flags.ok()) {
      std::fprintf(stderr, "%s\n", parsed_flags.ToString().c_str());
    } else {
      std::fprintf(stderr, "need exactly one of --data / --endpoints\n");
    }
    std::fputs(flags.Usage(argv[0]).c_str(), stderr);
    return 2;
  }
  session_options.optimize = optimize == "none"
                                 ? skalla::OptimizerOptions::None()
                                 : skalla::OptimizerOptions::All();

  std::optional<skalla::DistributedWarehouse> warehouse;
  std::optional<skalla::serve::QuerySession> session;
  if (!data_dir.empty()) {
    auto loaded = skalla::DistributedWarehouse::Load(data_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load error: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    warehouse.emplace(std::move(*loaded));
    auto opened = skalla::serve::QuerySession::Open(&*warehouse,
                                                    std::move(session_options));
    if (!opened.ok()) {
      std::fprintf(stderr, "open error: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    session.emplace(std::move(*opened));
  } else {
    auto opened = skalla::serve::QuerySession::Open(
        ParseEndpoints(endpoints_spec), std::move(session_options));
    if (!opened.ok()) {
      std::fprintf(stderr, "connect error: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    session.emplace(std::move(*opened));
  }
  g_session = &*session;

  auto listener = skalla::rpc::TcpListener::Bind(host, port);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind error: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }
  std::printf("LISTENING port=%d sites=%zu\n", listener->port(),
              session->num_sites());
  std::fflush(stdout);

  std::vector<std::thread> clients;
  while (!g_stop.load()) {
    auto accepted = listener->Accept(/*timeout_s=*/0.2);
    if (!accepted.ok()) break;
    if (!accepted->has_value()) continue;  // timeout: poll the stop flag
    TcpSocket socket = std::move(**accepted);
    {
      std::lock_guard<std::mutex> lock(g_clients_mu);
      g_client_fds.push_back(socket.fd());
    }
    clients.emplace_back(
        [](TcpSocket s) { HandleClient(std::move(s)); }, std::move(socket));
  }
  listener->Close();

  // Unblock handlers parked in a read so the drain below cannot hang on
  // an idle client.
  {
    std::lock_guard<std::mutex> lock(g_clients_mu);
    for (int fd : g_client_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : clients) t.join();

  if (shutdown_sites && session->rpc_executor() != nullptr) {
    skalla::Status s = session->rpc_executor()->Shutdown();
    if (!s.ok()) {
      std::fprintf(stderr, "site shutdown: %s\n", s.ToString().c_str());
    }
  }
  return 0;
}
