// skalla-dataset: generates the standard benchmark warehouse (the
// synthetic IP-flow and TPC-R style relations the tests and benches
// use) partitioned across N sites, and saves it with
// DistributedWarehouse::Save so skalla-site processes can serve it.
//
//   skalla-dataset --out DIR [--sites 4] [--flows 4000] [--tpcr-rows 6000]
//                  [--seed 7]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "data/flow_gen.h"
#include "data/tpcr_gen.h"
#include "dist/warehouse.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --out DIR [--sites N] [--flows N] [--tpcr-rows N] "
               "[--seed N]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  size_t sites = 4;
  skalla::FlowConfig flow_config;
  flow_config.num_flows = 4000;
  flow_config.num_routers = 5;
  flow_config.num_as = 30;
  skalla::TpcrConfig tpcr_config;
  tpcr_config.num_rows = 6000;
  tpcr_config.num_customers = 500;
  tpcr_config.num_clerks = 40;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      out_dir = next("--out");
    } else if (std::strcmp(argv[i], "--sites") == 0) {
      sites = static_cast<size_t>(std::atoll(next("--sites")));
    } else if (std::strcmp(argv[i], "--flows") == 0) {
      flow_config.num_flows =
          static_cast<size_t>(std::atoll(next("--flows")));
    } else if (std::strcmp(argv[i], "--tpcr-rows") == 0) {
      tpcr_config.num_rows =
          static_cast<size_t>(std::atoll(next("--tpcr-rows")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      flow_config.seed = static_cast<uint64_t>(std::atoll(next("--seed")));
      tpcr_config.seed = flow_config.seed + 1;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
    }
  }
  if (out_dir.empty() || sites == 0) Usage(argv[0]);

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  skalla::DistributedWarehouse warehouse(sites);
  warehouse
      .AddTablePartitionedBy(
          "flow", skalla::GenerateFlows(flow_config), "RouterId",
          {"SourceAS", "DestAS", "DestPort", "SourcePort", "NumBytes",
           "NumPackets"})
      .Check();
  warehouse
      .AddTablePartitionedBy(
          "tpcr", skalla::GenerateTpcr(tpcr_config), "NationKey",
          {"CustKey", "CustName", "Clerk", "MktSegment", "OrderPriority",
           "Quantity", "ExtendedPrice"})
      .Check();

  skalla::Status saved = warehouse.Save(out_dir);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("saved %zu-site warehouse under %s\n", sites,
              out_dir.c_str());
  return 0;
}
