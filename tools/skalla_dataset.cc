// skalla-dataset: generates the standard benchmark warehouse (the
// synthetic IP-flow and TPC-R style relations the tests and benches
// use) partitioned across N sites, and saves it with
// DistributedWarehouse::Save so skalla-site processes can serve it.
//
//   skalla-dataset --out DIR [--sites 4] [--flows 4000] [--tpcr-rows 6000]
//                  [--seed 7]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/flags.h"
#include "data/flow_gen.h"
#include "data/tpcr_gen.h"
#include "dist/warehouse.h"

int main(int argc, char** argv) {
  std::string out_dir;
  size_t sites = 4;
  uint64_t seed = 0;
  bool seed_set = false;
  skalla::FlowConfig flow_config;
  flow_config.num_flows = 4000;
  flow_config.num_routers = 5;
  flow_config.num_as = 30;
  skalla::TpcrConfig tpcr_config;
  tpcr_config.num_rows = 6000;
  tpcr_config.num_customers = 500;
  tpcr_config.num_clerks = 40;

  skalla::FlagSet flags;
  flags.String("--out", &out_dir, "output directory (created if missing)");
  flags.SizeT("--sites", &sites, "number of partitions");
  flags.Int64("--flows", &flow_config.num_flows, "flow relation rows");
  flags.Int64("--tpcr-rows", &tpcr_config.num_rows, "tpcr relation rows");
  flags.Func("--seed",
             [&seed, &seed_set](const std::string& v) -> skalla::Status {
               seed = static_cast<uint64_t>(std::atoll(v.c_str()));
               seed_set = true;
               return skalla::Status::OK();
             },
             "generator seed");
  skalla::Status parsed = flags.Parse(&argc, argv);
  if (!parsed.ok() || out_dir.empty() || sites == 0) {
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    }
    std::fputs(flags.Usage(argv[0]).c_str(), stderr);
    return 2;
  }
  if (seed_set) {
    flow_config.seed = seed;
    tpcr_config.seed = seed + 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  skalla::DistributedWarehouse warehouse(sites);
  warehouse
      .AddTablePartitionedBy(
          "flow", skalla::GenerateFlows(flow_config), "RouterId",
          {"SourceAS", "DestAS", "DestPort", "SourcePort", "NumBytes",
           "NumPackets"})
      .Check();
  warehouse
      .AddTablePartitionedBy(
          "tpcr", skalla::GenerateTpcr(tpcr_config), "NationKey",
          {"CustKey", "CustName", "Clerk", "MktSegment", "OrderPriority",
           "Quantity", "ExtendedPrice"})
      .Check();

  skalla::Status saved = warehouse.Save(out_dir);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("saved %zu-site warehouse under %s\n", sites,
              out_dir.c_str());
  return 0;
}
