// skalla-dataset: generates the standard benchmark warehouse (the
// synthetic IP-flow and TPC-R style relations the tests and benches
// use) partitioned across N sites, and saves it so skalla-site
// processes can serve it.
//
//   skalla-dataset --out DIR [--sites 4] [--flows 4000] [--tpcr-rows 6000]
//                  [--seed 7] [--chunked] [--chunk-rows K]
//
// Default mode builds the warehouse in memory and saves it eagerly
// (DistributedWarehouse::Save, version-1 row files). --chunked writes
// the version-2 chunked layout instead — and generates the tpcr
// relation *streamed*: rows flow from the generator straight into
// per-site chunk files (TpcrStream batches, routed by NationKey hash
// exactly like PartitionByValue) while distribution knowledge
// accumulates incrementally, so the paper-scale relation (6M tuples,
// --tpcr-rows 6000000) is never resident in this process. Sites then
// serve it through their buffer managers (skalla-site --buffer-bytes).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "data/flow_gen.h"
#include "data/tpcr_gen.h"
#include "dist/warehouse.h"
#include "storage/chunk_file.h"
#include "storage/partition.h"

namespace {

constexpr size_t kStreamBatchRows = 65536;

// Tracked columns mirror the eager path's AddTablePartitionedBy calls:
// the extra tracked columns plus the partition column last.
const std::vector<std::string> kFlowTracked = {
    "SourceAS", "DestAS",    "DestPort",  "SourcePort",
    "NumBytes", "NumPackets", "RouterId"};
const std::vector<std::string> kTpcrTracked = {
    "CustKey",  "CustName",      "Clerk",       "MktSegment",
    "OrderPriority", "Quantity", "ExtendedPrice", "NationKey"};

skalla::Status WriteChunkedDataset(const std::string& out_dir, size_t sites,
                                   size_t chunk_rows,
                                   const skalla::FlowConfig& flow_config,
                                   const skalla::TpcrConfig& tpcr_config) {
  std::map<std::string, skalla::PartitionInfo> stats;

  // flow is small at any configured scale: generate resident, partition
  // by router hash (same rule as the eager path), chunk out each part.
  {
    skalla::Table flow = skalla::GenerateFlows(flow_config);
    auto parts = skalla::PartitionByValue(flow, "RouterId", sites);
    if (!parts.ok()) return parts.status();
    for (size_t i = 0; i < sites; ++i) {
      skalla::Status written = skalla::WriteChunkFile(
          (*parts)[i], skalla::PartitionChunkPath(out_dir, "flow", i),
          chunk_rows);
      if (!written.ok()) return written;
    }
    auto info =
        skalla::PartitionInfo::ComputeFromPartitions(*parts, kFlowTracked);
    if (!info.ok()) return info.status();
    stats["flow"] = std::move(*info);
  }

  // tpcr is the paper-scale relation: stream it. Each batch's rows are
  // routed by NationKey hash — Value::Hash % sites, exactly
  // PartitionByValue's placement — into that site's ChunkFileWriter,
  // and every tracked cell feeds the site's DistributionBuilder.
  {
    skalla::TpcrStream stream(tpcr_config);
    const skalla::SchemaPtr& schema = stream.schema();
    auto nation_col = schema->RequireIndex("NationKey");
    if (!nation_col.ok()) return nation_col.status();
    std::vector<size_t> tracked_cols;
    for (const std::string& name : kTpcrTracked) {
      auto idx = schema->RequireIndex(name);
      if (!idx.ok()) return idx.status();
      tracked_cols.push_back(*idx);
    }

    std::vector<std::unique_ptr<skalla::ChunkFileWriter>> writers;
    std::vector<std::vector<skalla::DistributionBuilder>> builders(sites);
    for (size_t i = 0; i < sites; ++i) {
      writers.push_back(std::make_unique<skalla::ChunkFileWriter>(
          skalla::PartitionChunkPath(out_dir, "tpcr", i), schema,
          chunk_rows));
      builders[i].resize(kTpcrTracked.size());
    }

    while (stream.rows_remaining() > 0) {
      skalla::Table batch = stream.NextBatch(kStreamBatchRows);
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        size_t site = batch.at(r, *nation_col).Hash() % sites;
        skalla::Status appended = writers[site]->Append(batch.row(r));
        if (!appended.ok()) return appended;
        for (size_t c = 0; c < tracked_cols.size(); ++c) {
          builders[site][c].Add(batch.at(r, tracked_cols[c]));
        }
      }
    }

    skalla::PartitionInfo info(sites);
    for (size_t i = 0; i < sites; ++i) {
      skalla::Status finished = writers[i]->Finish();
      if (!finished.ok()) return finished;
      for (size_t c = 0; c < kTpcrTracked.size(); ++c) {
        info.SetDistribution(i, kTpcrTracked[c], builders[i][c].Finish());
      }
    }
    stats["tpcr"] = std::move(info);
  }

  std::vector<skalla::WarehouseManifest::TableEntry> tables = {
      {"flow", kFlowTracked}, {"tpcr", kTpcrTracked}};
  return skalla::WriteChunkedWarehouseMeta(out_dir, sites, tables, stats);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  size_t sites = 4;
  uint64_t seed = 0;
  bool seed_set = false;
  bool chunked = false;
  size_t chunk_rows = skalla::kDefaultChunkRows;
  skalla::FlowConfig flow_config;
  flow_config.num_flows = 4000;
  flow_config.num_routers = 5;
  flow_config.num_as = 30;
  skalla::TpcrConfig tpcr_config;
  tpcr_config.num_rows = 6000;
  tpcr_config.num_customers = 500;
  tpcr_config.num_clerks = 40;

  skalla::FlagSet flags;
  flags.String("--out", &out_dir, "output directory (created if missing)");
  flags.SizeT("--sites", &sites, "number of partitions");
  flags.Int64("--flows", &flow_config.num_flows, "flow relation rows");
  flags.Int64("--tpcr-rows", &tpcr_config.num_rows, "tpcr relation rows");
  flags.Int64("--tpcr-customers", &tpcr_config.num_customers,
              "distinct tpcr customers (paper full scale: 100000)");
  flags.Int64("--tpcr-clerks", &tpcr_config.num_clerks,
              "distinct tpcr clerks (paper full scale: 3000)");
  flags.Bool("--chunked", &chunked,
             "write the version-2 chunked layout, streaming tpcr");
  flags.SizeT("--chunk-rows", &chunk_rows, "rows per chunk (chunked mode)");
  flags.Func("--seed",
             [&seed, &seed_set](const std::string& v) -> skalla::Status {
               seed = static_cast<uint64_t>(std::atoll(v.c_str()));
               seed_set = true;
               return skalla::Status::OK();
             },
             "generator seed");
  skalla::Status parsed = flags.Parse(&argc, argv);
  if (!parsed.ok() || out_dir.empty() || sites == 0) {
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    }
    std::fputs(flags.Usage(argv[0]).c_str(), stderr);
    return 2;
  }
  if (seed_set) {
    flow_config.seed = seed;
    tpcr_config.seed = seed + 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  if (chunked) {
    skalla::Status written = WriteChunkedDataset(
        out_dir, sites, chunk_rows, flow_config, tpcr_config);
    if (!written.ok()) {
      std::fprintf(stderr, "chunked save failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("saved %zu-site chunked warehouse under %s\n", sites,
                out_dir.c_str());
    return 0;
  }

  skalla::DistributedWarehouse warehouse(sites);
  warehouse
      .AddTablePartitionedBy(
          "flow", skalla::GenerateFlows(flow_config), "RouterId",
          {"SourceAS", "DestAS", "DestPort", "SourcePort", "NumBytes",
           "NumPackets"})
      .Check();
  warehouse
      .AddTablePartitionedBy(
          "tpcr", skalla::GenerateTpcr(tpcr_config), "NationKey",
          {"CustKey", "CustName", "Clerk", "MktSegment", "OrderPriority",
           "Quantity", "ExtendedPrice"})
      .Check();

  skalla::Status saved = warehouse.Save(out_dir);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("saved %zu-site warehouse under %s\n", sites,
              out_dir.c_str());
  return 0;
}
