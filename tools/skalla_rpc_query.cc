// skalla-rpc-query: a coordinator-side client. Parses an OLAP query,
// plans it, and executes it through the RpcExecutor against running
// skalla-site processes — the coordinator never touches the data files.
//
//   skalla-rpc-query --endpoints 127.0.0.1:7001,127.0.0.1:7002,...
//                    [--query FILE] [--optimize all|none] [--shutdown]
//                    [--retries N] [--deadline-ms MS]
//                    [--round-deadline-ms MS] [--degrade]
//                    [--replica PARTITION:ENDPOINT]...
//                    [--explain] [--site-stats]
//                    [--trace-out=F] [--metrics-out=F]
//
// Without --query the query text is read from stdin. --shutdown asks the
// site processes to exit after the query (or immediately if no query ran).
//
// --explain prints the EXPLAIN ANALYZE report (per-round, per-site
// breakdown from the RoundProfiles the sites ship back). --site-stats
// pulls each endpoint's metrics registry (kGetStats) after the query and
// prints it as JSON. --trace-out=F writes the merged coordinator+site
// Chrome trace (obs/session.h) on exit; --metrics-out=F dumps the
// coordinator's own metrics.
//
// --replica P:E marks trailing endpoint E (0-based index into
// --endpoints) as a replica of partition P — typically a
// `skalla-site --partition P --site E` process — enabling the
// retry -> failover -> degrade ladder described in docs/FAULTS.md.
//
// Planned without distribution knowledge: the distribution-aware
// reductions (Theorem 4) need per-site statistics only a data-holding
// coordinator has, so `--optimize all` here applies the
// distribution-independent optimizations only.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/session.h"
#include "obs/stats_report.h"
#include "opt/optimizer.h"
#include "rpc/rpc_executor.h"
#include "rpc/tcp.h"
#include "sql/parser.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --endpoints H:P,H:P,... [--query FILE] "
               "[--optimize all|none] [--shutdown] [--retries N] "
               "[--deadline-ms MS] [--round-deadline-ms MS] [--degrade] "
               "[--replica PARTITION:ENDPOINT]... [--explain] "
               "[--site-stats] [--trace-out=F] [--metrics-out=F]\n",
               argv0);
  std::exit(2);
}

std::vector<skalla::rpc::SiteEndpoint> ParseEndpoints(
    const std::string& spec) {
  std::vector<skalla::rpc::SiteEndpoint> endpoints;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    size_t colon = item.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad endpoint '%s' (want host:port)\n",
                   item.c_str());
      std::exit(2);
    }
    skalla::rpc::SiteEndpoint endpoint;
    endpoint.host = item.substr(0, colon);
    endpoint.port = std::atoi(item.c_str() + colon + 1);
    endpoints.push_back(std::move(endpoint));
  }
  return endpoints;
}

}  // namespace

int main(int argc, char** argv) {
  skalla::obs::ObsSession obs_session(argc, argv);
  std::string endpoints_spec;
  std::string query_file;
  bool optimize_all = true;
  bool shutdown = false;
  bool explain = false;
  bool site_stats = false;
  skalla::ExecutorOptions exec_options;
  std::vector<std::pair<size_t, size_t>> replicas;

  for (int i = 1; i < argc; ++i) {
    if (skalla::obs::ObsSession::IsSessionFlag(argv[i])) continue;
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--endpoints") == 0) {
      endpoints_spec = next("--endpoints");
    } else if (std::strcmp(argv[i], "--query") == 0) {
      query_file = next("--query");
    } else if (std::strcmp(argv[i], "--optimize") == 0) {
      optimize_all = std::strcmp(next("--optimize"), "none") != 0;
    } else if (std::strcmp(argv[i], "--shutdown") == 0) {
      shutdown = true;
    } else if (std::strcmp(argv[i], "--retries") == 0) {
      exec_options.max_site_retries =
          static_cast<size_t>(std::atoi(next("--retries")));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      exec_options.query_deadline_ms = static_cast<uint64_t>(
          std::strtoull(next("--deadline-ms"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--round-deadline-ms") == 0) {
      exec_options.round_deadline_ms = static_cast<uint64_t>(
          std::strtoull(next("--round-deadline-ms"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--degrade") == 0) {
      exec_options.on_site_loss = skalla::OnSiteLoss::kDegrade;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--site-stats") == 0) {
      site_stats = true;
    } else if (std::strcmp(argv[i], "--replica") == 0) {
      const char* spec = next("--replica");
      const char* colon = std::strchr(spec, ':');
      if (colon == nullptr) {
        std::fprintf(stderr, "bad --replica '%s' (want PARTITION:ENDPOINT)\n",
                     spec);
        Usage(argv[0]);
      }
      replicas.emplace_back(static_cast<size_t>(std::atoi(spec)),
                            static_cast<size_t>(std::atoi(colon + 1)));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
    }
  }
  if (endpoints_spec.empty()) Usage(argv[0]);

  std::vector<skalla::rpc::SiteEndpoint> endpoints =
      ParseEndpoints(endpoints_spec);
  const size_t num_endpoints = endpoints.size();
  auto transport =
      std::make_unique<skalla::rpc::TcpTransport>(std::move(endpoints));
  skalla::rpc::RpcExecutor executor(std::move(transport), exec_options);
  for (const auto& [partition, endpoint] : replicas) {
    executor.AddReplica(partition, endpoint);
  }

  std::string query_text;
  if (!query_file.empty()) {
    std::ifstream in(query_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", query_file.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    query_text = buffer.str();
  } else if (!shutdown) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    query_text = buffer.str();
  }

  int exit_code = 0;
  if (!query_text.empty()) {
    auto parsed = skalla::ParseQuery(query_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    skalla::Egil optimizer(optimize_all ? skalla::OptimizerOptions::All()
                                        : skalla::OptimizerOptions::None(),
                           executor.num_sites());
    auto plan = optimizer.Optimize(*parsed);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan error: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    skalla::ExecStats stats;
    auto result = executor.Execute(*plan, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "execute error: %s\n",
                   result.status().ToString().c_str());
      exit_code = 1;
    } else {
      std::printf("%s\n%s", result->ToString(50).c_str(),
                  stats.ToString().c_str());
      if (explain) {
        std::printf("%s",
                    skalla::obs::FormatStatsReport(*plan, stats,
                                                   executor.num_sites())
                        .c_str());
      }
    }
  }

  if (site_stats) {
    for (size_t e = 0; e < num_endpoints; ++e) {
      auto stats_result = executor.SiteStats(e);
      if (!stats_result.ok()) {
        std::fprintf(stderr, "site stats %zu: %s\n", e,
                     stats_result.status().ToString().c_str());
        if (exit_code == 0) exit_code = 1;
        continue;
      }
      std::printf("SITE %d STATS %s\n", stats_result->site_id,
                  stats_result->metrics_json.c_str());
    }
  }

  if (shutdown) {
    skalla::Status s = executor.Shutdown();
    if (!s.ok()) {
      std::fprintf(stderr, "shutdown: %s\n", s.ToString().c_str());
      if (exit_code == 0) exit_code = 1;
    }
  }
  return exit_code;
}
