// skalla-rpc-query: a coordinator-side client. Parses an OLAP query and
// submits it through a serve::QuerySession opened over running
// skalla-site processes — the coordinator never touches the data files.
//
//   skalla-rpc-query --endpoints 127.0.0.1:7001,127.0.0.1:7002,...
//                    [--query FILE] [--optimize all|none] [--shutdown]
//                    [--retries N] [--deadline-ms MS]
//                    [--round-deadline-ms MS] [--degrade]
//                    [--replica PARTITION:ENDPOINT]...
//                    [--explain] [--site-stats]
//                    [--trace-out=F] [--metrics-out=F]
//
// Without --query the query text is read from stdin. --shutdown asks the
// site processes to exit after the query (or immediately if no query ran).
//
// --explain prints the EXPLAIN ANALYZE report (per-round, per-site
// breakdown from the RoundProfiles the sites ship back). --site-stats
// pulls each endpoint's metrics registry (kGetStats) after the query and
// prints it as JSON. --trace-out=F writes the merged coordinator+site
// Chrome trace (obs/session.h) on exit; --metrics-out=F dumps the
// coordinator's own metrics.
//
// --replica P:E marks trailing endpoint E (0-based index into
// --endpoints) as a replica of partition P — typically a
// `skalla-site --partition P --site E` process — enabling the
// retry -> failover -> degrade ladder described in docs/FAULTS.md.
//
// Planned without distribution knowledge: the distribution-aware
// reductions (Theorem 4) need per-site statistics only a data-holding
// coordinator has, so `--optimize all` here applies the
// distribution-independent optimizations only.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "obs/session.h"
#include "obs/stats_report.h"
#include "serve/session.h"
#include "sql/parser.h"

namespace {

std::vector<skalla::rpc::SiteEndpoint> ParseEndpoints(
    const std::string& spec) {
  std::vector<skalla::rpc::SiteEndpoint> endpoints;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    size_t colon = item.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad endpoint '%s' (want host:port)\n",
                   item.c_str());
      std::exit(2);
    }
    skalla::rpc::SiteEndpoint endpoint;
    endpoint.host = item.substr(0, colon);
    endpoint.port = std::atoi(item.c_str() + colon + 1);
    endpoints.push_back(std::move(endpoint));
  }
  return endpoints;
}

}  // namespace

int main(int argc, char** argv) {
  skalla::obs::ObsSession obs_session(argc, argv);
  std::string endpoints_spec;
  std::string query_file;
  std::string optimize = "all";
  bool shutdown = false;
  bool explain = false;
  bool site_stats = false;
  bool degrade = false;
  skalla::serve::SessionOptions session_options;

  skalla::FlagSet flags;
  flags.String("--endpoints", &endpoints_spec, "H:P,H:P,... site endpoints");
  flags.String("--query", &query_file, "query file (default: stdin)");
  flags.String("--optimize", &optimize, "all|none (default all)");
  flags.Bool("--shutdown", &shutdown, "ask the site processes to exit");
  flags.SizeT("--retries", &session_options.exec.max_site_retries,
              "per-site-round retry budget");
  flags.Uint64("--deadline-ms", &session_options.exec.query_deadline_ms,
               "whole-query deadline");
  flags.Uint64("--round-deadline-ms",
               &session_options.exec.round_deadline_ms,
               "per-round deadline");
  flags.Bool("--degrade", &degrade, "answer partially on permanent loss");
  flags.Bool("--explain", &explain, "print the EXPLAIN ANALYZE report");
  flags.Bool("--site-stats", &site_stats, "pull per-endpoint metrics");
  flags.Func("--replica",
             [&session_options](const std::string& spec) -> skalla::Status {
               size_t colon = spec.find(':');
               if (colon == std::string::npos) {
                 return skalla::Status::InvalidArgument(
                     "--replica wants PARTITION:ENDPOINT, got '" + spec +
                     "'");
               }
               session_options.replicas.emplace_back(
                   static_cast<size_t>(std::atoi(spec.c_str())),
                   static_cast<size_t>(std::atoi(spec.c_str() + colon + 1)));
               return skalla::Status::OK();
             },
             "PARTITION:ENDPOINT replica mapping (repeatable)");
  flags.IgnorePrefix("--trace-out=");
  flags.IgnorePrefix("--metrics-out=");
  skalla::Status parsed_flags = flags.Parse(&argc, argv);
  if (!parsed_flags.ok() || endpoints_spec.empty()) {
    if (!parsed_flags.ok()) {
      std::fprintf(stderr, "%s\n", parsed_flags.ToString().c_str());
    }
    std::fputs(flags.Usage(argv[0]).c_str(), stderr);
    return 2;
  }
  if (degrade) {
    session_options.exec.on_site_loss = skalla::OnSiteLoss::kDegrade;
  }
  session_options.optimize = optimize == "none"
                                 ? skalla::OptimizerOptions::None()
                                 : skalla::OptimizerOptions::All();

  auto session = skalla::serve::QuerySession::Open(
      ParseEndpoints(endpoints_spec), std::move(session_options));
  if (!session.ok()) {
    std::fprintf(stderr, "connect error: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  const size_t num_endpoints = ParseEndpoints(endpoints_spec).size();

  std::string query_text;
  if (!query_file.empty()) {
    std::ifstream in(query_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", query_file.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    query_text = buffer.str();
  } else if (!shutdown) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    query_text = buffer.str();
  }

  int exit_code = 0;
  if (!query_text.empty()) {
    auto parsed = skalla::ParseQuery(query_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    auto plan = session->Plan(*parsed);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan error: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    auto submission = session->SubmitPlan(*plan);
    auto answer = submission.result.get();
    if (!answer.ok()) {
      std::fprintf(stderr, "execute error: %s\n",
                   answer.status().ToString().c_str());
      exit_code = 1;
    } else {
      std::printf("%s\n%s", answer->table.ToString(50).c_str(),
                  answer->stats.ToString().c_str());
      if (explain) {
        std::printf("%s",
                    skalla::obs::FormatStatsReport(*plan, answer->stats,
                                                   session->num_sites())
                        .c_str());
      }
    }
  }

  if (site_stats) {
    for (size_t e = 0; e < num_endpoints; ++e) {
      auto stats_result = session->rpc_executor()->SiteStats(e);
      if (!stats_result.ok()) {
        std::fprintf(stderr, "site stats %zu: %s\n", e,
                     stats_result.status().ToString().c_str());
        if (exit_code == 0) exit_code = 1;
        continue;
      }
      std::printf("SITE %d STATS %s\n", stats_result->site_id,
                  stats_result->metrics_json.c_str());
    }
  }

  if (shutdown) {
    skalla::Status s = session->rpc_executor()->Shutdown();
    if (!s.ok()) {
      std::fprintf(stderr, "shutdown: %s\n", s.ToString().c_str());
      if (exit_code == 0) exit_code = 1;
    }
  }
  return exit_code;
}
