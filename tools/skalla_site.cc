// skalla-site: one Skalla site as a standalone process. Loads its
// partition of a saved warehouse (see skalla-dataset / docs/RPC.md) and
// answers coordinator round requests over TCP until it receives a
// shutdown request.
//
//   skalla-site --data DIR --site N [--partition P] [--buffer-bytes B]
//               [--host 127.0.0.1] [--port 0] [--drop-request K]
//               [--chaos-seed S] [--chaos-drop P] [--chaos-corrupt P]
//               [--chaos-reset P] [--chaos-delay P] [--trace-out=F]
//               [--metrics-out=F]
//
// With --port 0 (the default) the OS picks a free port; the chosen one
// is announced on stdout as "LISTENING port=<p>" so launchers (and the
// multi-process tests) can scrape it. --drop-request K makes the server
// hang up instead of answering its K-th request — a fault-injection
// hook for exercising coordinator reconnect/retry.
//
// --partition P serves partition P's data under site id N — how a
// replica process hosts another site's partition (docs/FAULTS.md).
// Without it the site serves its own partition (P = N). The --chaos-*
// flags enable seeded transport chaos (see SiteServerOptions): drop
// responses, corrupt frame checksums, reset connections mid-frame, or
// delay responses, each with the given probability.
//
// A chunked warehouse directory (skalla-dataset --chunked, or
// DistributedWarehouse::SaveChunked) loads lazily: the site registers
// paged providers and pages chunks through a BufferManager sized by
// --buffer-bytes (0 = unlimited), so it can serve a partition larger
// than memory. Version-1 directories load eagerly as before and ignore
// --buffer-bytes.
//
// --trace-out=F / --metrics-out=F (obs/session.h) dump this process's
// local trace / metrics on clean shutdown — in addition to the per-round
// profile the site already ships back in every kRoundResult
// (docs/OBSERVABILITY.md).

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "dist/site.h"
#include "dist/warehouse.h"
#include "obs/session.h"
#include "rpc/server.h"
#include "rpc/site_service.h"

int main(int argc, char** argv) {
  skalla::obs::ObsSession obs_session(argc, argv);
  std::string data_dir;
  int site_index = -1;
  int partition = -1;
  skalla::StorageOptions storage;
  skalla::rpc::SiteServerOptions options;

  skalla::FlagSet flags;
  flags.String("--data", &data_dir, "saved warehouse directory");
  flags.Int("--site", &site_index, "site id this process serves under");
  flags.Int("--partition", &partition,
            "partition to load (default: --site; a replica loads another "
            "site's)");
  flags.Uint64("--buffer-bytes", &storage.buffer_bytes,
               "chunk buffer budget for chunked warehouses (0 = unlimited)");
  flags.String("--host", &options.host, "listen address");
  flags.Int("--port", &options.port, "listen port (0 = OS-assigned)");
  flags.Int("--drop-request", &options.drop_request_index,
            "hang up instead of answering the K-th request");
  flags.Uint64("--chaos-seed", &options.chaos.seed,
               "seed for the transport chaos RNG");
  flags.Double("--chaos-drop", &options.chaos.drop_response_prob,
               "probability of dropping a response");
  flags.Double("--chaos-corrupt", &options.chaos.corrupt_crc_prob,
               "probability of corrupting a frame checksum");
  flags.Double("--chaos-reset", &options.chaos.reset_midframe_prob,
               "probability of resetting the connection mid-frame");
  flags.Double("--chaos-delay", &options.chaos.delay_prob,
               "probability of delaying a response");
  flags.IgnorePrefix("--trace-out=");
  flags.IgnorePrefix("--metrics-out=");
  skalla::Status parsed = flags.Parse(&argc, argv);
  if (!parsed.ok() || data_dir.empty() || site_index < 0) {
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    }
    std::fputs(flags.Usage(argv[0]).c_str(), stderr);
    return 2;
  }
  if (partition < 0) partition = site_index;

  auto catalog = skalla::LoadSiteCatalog(
      data_dir, static_cast<size_t>(partition), storage);
  if (!catalog.ok()) {
    std::fprintf(stderr, "cannot load partition %d from %s: %s\n", partition,
                 data_dir.c_str(), catalog.status().ToString().c_str());
    return 1;
  }

  skalla::rpc::SiteService service(
      skalla::Site(site_index, std::move(*catalog)));
  skalla::rpc::SiteServer server(&service, options);
  // Surface transport chaos injections in the RoundProfiles the site
  // ships back to the coordinator.
  service.set_chaos_faults_counter(server.chaos_faults_counter());
  skalla::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot listen on %s:%d: %s\n",
                 options.host.c_str(), options.port,
                 started.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING port=%d\n", server.port());
  std::fflush(stdout);

  skalla::Status served = server.Serve();
  if (!served.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", served.ToString().c_str());
    return 1;
  }
  return 0;
}
