// skalla-site: one Skalla site as a standalone process. Loads its
// partition of a saved warehouse (see skalla-dataset / docs/RPC.md) and
// answers coordinator round requests over TCP until it receives a
// shutdown request.
//
//   skalla-site --data DIR --site N [--partition P] [--host 127.0.0.1]
//               [--port 0] [--drop-request K] [--chaos-seed S]
//               [--chaos-drop P] [--chaos-corrupt P] [--chaos-reset P]
//               [--chaos-delay P] [--trace-out=F] [--metrics-out=F]
//
// With --port 0 (the default) the OS picks a free port; the chosen one
// is announced on stdout as "LISTENING port=<p>" so launchers (and the
// multi-process tests) can scrape it. --drop-request K makes the server
// hang up instead of answering its K-th request — a fault-injection
// hook for exercising coordinator reconnect/retry.
//
// --partition P serves partition P's data under site id N — how a
// replica process hosts another site's partition (docs/FAULTS.md).
// Without it the site serves its own partition (P = N). The --chaos-*
// flags enable seeded transport chaos (see SiteServerOptions): drop
// responses, corrupt frame checksums, reset connections mid-frame, or
// delay responses, each with the given probability.
//
// --trace-out=F / --metrics-out=F (obs/session.h) dump this process's
// local trace / metrics on clean shutdown — in addition to the per-round
// profile the site already ships back in every kRoundResult
// (docs/OBSERVABILITY.md).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dist/site.h"
#include "dist/warehouse.h"
#include "obs/session.h"
#include "rpc/server.h"
#include "rpc/site_service.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --data DIR --site N [--partition P] [--host H] "
               "[--port P] [--drop-request K] [--chaos-seed S] "
               "[--chaos-drop P] [--chaos-corrupt P] [--chaos-reset P] "
               "[--chaos-delay P] [--trace-out=F] [--metrics-out=F]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  skalla::obs::ObsSession obs_session(argc, argv);
  std::string data_dir;
  int site_index = -1;
  int partition = -1;
  skalla::rpc::SiteServerOptions options;

  for (int i = 1; i < argc; ++i) {
    if (skalla::obs::ObsSession::IsSessionFlag(argv[i])) continue;
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--data") == 0) {
      data_dir = next("--data");
    } else if (std::strcmp(argv[i], "--site") == 0) {
      site_index = std::atoi(next("--site"));
    } else if (std::strcmp(argv[i], "--host") == 0) {
      options.host = next("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      options.port = std::atoi(next("--port"));
    } else if (std::strcmp(argv[i], "--drop-request") == 0) {
      options.drop_request_index = std::atoi(next("--drop-request"));
    } else if (std::strcmp(argv[i], "--partition") == 0) {
      partition = std::atoi(next("--partition"));
    } else if (std::strcmp(argv[i], "--chaos-seed") == 0) {
      options.chaos.seed = static_cast<uint64_t>(
          std::strtoull(next("--chaos-seed"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--chaos-drop") == 0) {
      options.chaos.drop_response_prob = std::atof(next("--chaos-drop"));
    } else if (std::strcmp(argv[i], "--chaos-corrupt") == 0) {
      options.chaos.corrupt_crc_prob = std::atof(next("--chaos-corrupt"));
    } else if (std::strcmp(argv[i], "--chaos-reset") == 0) {
      options.chaos.reset_midframe_prob = std::atof(next("--chaos-reset"));
    } else if (std::strcmp(argv[i], "--chaos-delay") == 0) {
      options.chaos.delay_prob = std::atof(next("--chaos-delay"));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
    }
  }
  if (data_dir.empty() || site_index < 0) Usage(argv[0]);
  if (partition < 0) partition = site_index;

  auto catalog = skalla::LoadSiteCatalog(
      data_dir, static_cast<size_t>(partition));
  if (!catalog.ok()) {
    std::fprintf(stderr, "cannot load partition %d from %s: %s\n", partition,
                 data_dir.c_str(), catalog.status().ToString().c_str());
    return 1;
  }

  skalla::rpc::SiteService service(
      skalla::Site(site_index, std::move(*catalog)));
  skalla::rpc::SiteServer server(&service, options);
  // Surface transport chaos injections in the RoundProfiles the site
  // ships back to the coordinator.
  service.set_chaos_faults_counter(server.chaos_faults_counter());
  skalla::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot listen on %s:%d: %s\n",
                 options.host.c_str(), options.port,
                 started.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING port=%d\n", server.port());
  std::fflush(stdout);

  skalla::Status served = server.Serve();
  if (!served.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", served.ToString().c_str());
    return 1;
  }
  return 0;
}
